//! The paper's Fig. 2 example partitioning, reconstructed: five partitions
//! (P1–P5) on four chips, two memory blocks, multiple partitions sharing
//! chip 4, and *cyclic data flow between chips* (P2 on chip 2 feeds P4 on
//! chip 4, while P5 on chip 4 feeds back to P2's chip) — legal because no
//! two *partitions* are mutually dependent.
//!
//! Run with: `cargo run -p chop-core --example figure2_scenario`

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::grouping::Grouping;
use chop_dfg::{Dfg, DfgBuilder, MemoryRef, NodeId, Operation};
use chop_library::standard::{
    example_off_shelf_ram, example_on_chip_ram, table1_library, table2_packages,
};
use chop_library::{ChipId, ChipSet};
use chop_stat::units::{Bits, Nanos};

/// Builds the five-cluster DFG and the node→partition assignment.
fn figure2_spec() -> (Dfg, Vec<usize>) {
    let w = Bits::new(16);
    let mut b = DfgBuilder::new();
    let mut groups: Vec<usize> = Vec::new();
    // A small MAC cluster: two inputs (internal wires), returns its result.
    let cluster =
        |b: &mut DfgBuilder, groups: &mut Vec<usize>, g: usize, feeds: &[NodeId]| -> NodeId {
            let track = |groups: &mut Vec<usize>, id: NodeId| {
                while groups.len() <= id.index() {
                    groups.push(g);
                }
                groups[id.index()] = g;
                id
            };
            let a = match feeds.first() {
                Some(&f) => f,
                None => track(groups, b.node(Operation::Input, w)),
            };
            let c = match feeds.get(1) {
                Some(&f) => f,
                None => track(groups, b.node(Operation::Input, w)),
            };
            let m1 = track(groups, b.node(Operation::Mul, w));
            b.connect(a, m1).expect("valid");
            b.connect(c, m1).expect("valid");
            let m2 = track(groups, b.node(Operation::Mul, w));
            b.connect(a, m2).expect("valid");
            b.connect(m1, m2).expect("valid");
            let s = track(groups, b.node(Operation::Add, w));
            b.connect(m1, s).expect("valid");
            b.connect(m2, s).expect("valid");
            s
        };

    // P1 reads coefficients from M_A (memory block 0).
    let p1_out = {
        let g = 0;
        let addr = b.node(Operation::Input, w);
        groups.resize(addr.index() + 1, g);
        let rd = b.node(Operation::MemRead(MemoryRef::new(0)), w);
        groups.resize(rd.index() + 1, g);
        b.connect(addr, rd).expect("valid");
        cluster(&mut b, &mut groups, g, &[rd])
    };
    let p2_out = cluster(&mut b, &mut groups, 1, &[p1_out]);
    let p3_out = cluster(&mut b, &mut groups, 2, &[p1_out]);
    let p4_out = cluster(&mut b, &mut groups, 3, &[p2_out, p3_out]);
    // P5 consumes P3 and writes its state into off-the-shelf M_B (block 1);
    // its output feeds back toward P2's *chip* (but not P2 itself).
    let p5_out = {
        let g = 4;
        let s = cluster(&mut b, &mut groups, g, &[p3_out]);
        let wr = b.node(Operation::MemWrite(MemoryRef::new(1)), w);
        groups.resize(wr.index() + 1, g);
        b.connect(s, wr).expect("valid");
        b.connect(p3_out, wr).expect("valid");
        s
    };
    for (v, g) in [(p4_out, 3usize), (p5_out, 4)] {
        let o = b.node(Operation::Output, w);
        groups.resize(o.index() + 1, g);
        b.connect(v, o).expect("valid");
    }
    let dfg = b.build().expect("acyclic by construction");
    groups.resize(dfg.len(), 4);
    (dfg, groups)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dfg, groups) = figure2_spec();
    let grouping = Grouping::new(&dfg, 5, groups)?;

    // Four chips; P4 and P5 share chip 4 (index 3) exactly as in Fig. 2.
    let chips = ChipSet::uniform(table2_packages()[1].clone(), 4);
    let partitioning = PartitioningBuilder::new(dfg, chips)
        .with_grouping(grouping)
        .with_chip_assignment(vec![
            ChipId::new(0), // P1 → chip 1
            ChipId::new(1), // P2 → chip 2
            ChipId::new(2), // P3 → chip 3
            ChipId::new(3), // P4 → chip 4
            ChipId::new(3), // P5 → chip 4 (shared!)
        ])
        .with_memory(example_on_chip_ram(), MemoryAssignment::OnChip(ChipId::new(0)))
        .with_memory(example_off_shelf_ram(), MemoryAssignment::External)
        .build()?;

    println!("{}", report::task_graph_dot(&partitioning));

    let session = Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1)?,
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    );
    let outcome = session.explore(Heuristic::Iterative)?;
    println!(
        "5 partitions / 4 chips: {} trials, {} feasible",
        outcome.trials, outcome.feasible_trials
    );
    if let Some(best) = outcome.feasible.first() {
        println!("{}", report::guideline(&outcome, best, session.library()));
    }
    Ok(())
}
