//! CHOP as a system-level advisor (paper §4): check the effect of
//! system-level decisions — package choice, constraint tightening,
//! operation migration — in "real time", without synthesizing anything.
//!
//! Run with: `cargo run -p chop-core --example advisor`

use chop_core::prelude::*;
use chop_library::standard::table2_packages;
use chop_library::ChipSet;
use chop_stat::units::Nanos;
use experiments::{experiment1_session, Exp1Config};

fn summarize(label: &str, outcome: &SearchOutcome) {
    match outcome.feasible.iter().min_by_key(|f| f.system.initiation_interval.value()) {
        Some(best) => println!(
            "{label:<44} II={:>3} cycles, delay={:>3} cycles, clock={:>4.0} ns ({} feasible)",
            best.system.initiation_interval.value(),
            best.system.delay.value(),
            best.system.clock.likely(),
            outcome.feasible_trials,
        ),
        None => println!("{label:<44} INFEASIBLE ({} trials)", outcome.trials),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline: AR filter in two partitions on two 84-pin chips.
    let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 })?;
    summarize("baseline (2×84-pin, 30 µs)", &base.explore(Heuristic::Iterative)?);

    // Decision 1: can we ship the cheaper 64-pin package?
    let cheap =
        base.clone().try_with_chip_set(ChipSet::uniform(table2_packages()[0].clone(), 2))?;
    summarize("what if: 64-pin packages", &cheap.explore(Heuristic::Iterative)?);

    // Decision 2: marketing wants 2× the performance.
    let fast = base
        .clone()
        .try_with_constraints(Constraints::new(Nanos::new(15_000.0), Nanos::new(30_000.0)))?;
    summarize("what if: performance ≤ 15 µs", &fast.explore(Heuristic::Iterative)?);

    // Decision 3: both at once.
    let both = cheap
        .try_with_constraints(Constraints::new(Nanos::new(15_000.0), Nanos::new(30_000.0)))?;
    summarize("what if: 64-pin AND ≤ 15 µs", &both.explore(Heuristic::Iterative)?);

    // Decision 4: migrate one operation across the cut and see the effect
    // on the data-transfer requirement.
    let p = base.partitioning().clone();
    let before: u64 = p.inter_partition_cuts().iter().map(|c| c.bits.value()).sum();
    for node in p.grouping().members(0).into_iter().rev() {
        if let Ok(moved) = p.with_node_moved(node, PartitionId::new(1)) {
            let after: u64 = moved.inter_partition_cuts().iter().map(|c| c.bits.value()).sum();
            if after == before {
                continue; // pick a migration that actually moves the cut
            }
            println!(
                "\nmigrating one operation P1→P2 changes the cut from {before} to {after} bits"
            );
            let migrated = base.clone().try_with_partitioning(moved)?;
            summarize(
                "what if: migrate one operation",
                &migrated.explore(Heuristic::Iterative)?,
            );
            break;
        }
    }
    Ok(())
}
