//! Task creation for a custom-designed processor style — the abstract's
//! third application: slice a behavior into tasks sized for a fixed
//! datapath, then feed the tasks back into CHOP as partitions.
//!
//! Run with: `cargo run -p chop-core --example task_creation`

use chop_core::prelude::*;
use chop_dfg::{benchmarks, OpClass};
use chop_sched::{NodeSpec, ResourceMap};
use tasks::create_tasks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = benchmarks::dct8();
    println!("behavior: 8-point DCT ({})", dfg.op_histogram());

    // The custom processor: one adder, one multiplier (a tiny MAC engine).
    let processor: ResourceMap =
        [(OpClass::Addition, 1), (OpClass::Multiplication, 1)].into_iter().collect();
    let specs = NodeSpec::uniform(&dfg, 1);

    println!(
        "\n{:>12} | {:>5} | {:>12} | {:>12}",
        "budget (cyc)", "tasks", "total cycles", "per-task max"
    );
    for budget in [4u64, 8, 16, 32] {
        let tasks = create_tasks(&dfg, &specs, &processor, budget)?;
        println!(
            "{budget:>12} | {:>5} | {:>12} | {:>12}",
            tasks.len(),
            tasks.total_cycles(),
            tasks.task_cycles.iter().max().copied().unwrap_or(0)
        );
    }

    // The 8-cycle slicing, as a task list.
    let tasks = create_tasks(&dfg, &specs, &processor, 8)?;
    println!("\n8-cycle tasks (ops per task):");
    for (i, cycles) in tasks.task_cycles.iter().enumerate() {
        let ops = tasks
            .grouping
            .members(i)
            .into_iter()
            .filter(|&n| dfg.node(n).op().class().is_some())
            .count();
        println!("  task {i}: {ops} operations in {cycles} cycles");
    }
    Ok(())
}
