//! Partition the fifth-order elliptic wave filter — the classic HLS
//! benchmark — across one to three chips and compare what each chip count
//! buys.
//!
//! Run with: `cargo run -p chop-core --example ewf_multichip`

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::benchmarks;
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ewf = benchmarks::elliptic_wave_filter();
    println!(
        "elliptic wave filter: {} operations ({})",
        ewf.op_histogram().total(),
        ewf.op_histogram()
    );

    println!(
        "\n{:>6} | {:>9} | {:>8} | {:>11} | {:>9}",
        "chips", "II cycles", "delay", "clock ns", "trials"
    );
    for k in 1..=3usize {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let partitioning =
            PartitioningBuilder::new(ewf.clone(), chips).split_horizontal(k).build()?;
        let session = Session::new(
            partitioning,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1)?,
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(45_000.0)),
        );
        let outcome = session.explore(Heuristic::Iterative)?;
        match outcome.feasible.iter().min_by_key(|f| f.system.initiation_interval.value()) {
            Some(best) => println!(
                "{k:>6} | {:>9} | {:>8} | {:>11.0} | {:>9}",
                best.system.initiation_interval.value(),
                best.system.delay.value(),
                best.system.clock.likely(),
                outcome.trials
            ),
            None => println!(
                "{k:>6} | {:>9} | {:>8} | {:>11} | {:>9}",
                "-", "-", "-", outcome.trials
            ),
        }
    }
    println!(
        "\n(the EWF is addition-dominated, so extra chips buy less than for the AR filter)"
    );
    Ok(())
}
