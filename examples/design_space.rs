//! Design-space exploration in keep-all mode: reproduce a Figure-7-style
//! dump of every design CHOP considers, then show the Pareto front.
//!
//! Run with: `cargo run -p chop-core --example design_space`

use chop_core::prelude::*;
use experiments::{experiment1_session, Exp1Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut all_points: Vec<DesignPoint> = Vec::new();
    let mut total_trials = 0usize;

    for partitions in 1..=3 {
        let session = experiment1_session(&Exp1Config { partitions, package: 1 })?
            .with_pruning(false)
            .with_keep_all(true);
        let outcome = session.explore(Heuristic::Enumeration)?;
        println!(
            "{partitions} partition(s): {} designs considered ({} unique), {} feasible",
            outcome.points.len(),
            outcome.unique_points(),
            outcome.points.iter().filter(|p| p.feasible).count(),
        );
        total_trials += outcome.trials;
        all_points.extend(outcome.points);
    }

    let mut keys: Vec<_> = all_points.iter().map(DesignPoint::unique_key).collect();
    keys.sort_unstable();
    keys.dedup();
    println!(
        "\ntotal: {} designs considered across all partitionings ({} unique, {} trials)",
        all_points.len(),
        keys.len(),
        total_trials
    );

    // The Pareto front over (delay, area) — the lower-left frontier of the
    // Figure 7 scatter.
    let mut front: Vec<&DesignPoint> = Vec::new();
    for p in all_points.iter().filter(|p| p.feasible) {
        if front.iter().any(|q| q.delay_ns <= p.delay_ns && q.area <= p.area) {
            continue;
        }
        front.retain(|q| !(p.delay_ns <= q.delay_ns && p.area <= q.area));
        front.push(p);
    }
    front.sort_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).expect("finite"));
    println!("\nPareto front (delay ns, area mil², initiation ns):");
    for p in front {
        println!("  {:>9.0} {:>10.0} {:>9.0}", p.delay_ns, p.area, p.initiation_ns);
    }
    Ok(())
}
