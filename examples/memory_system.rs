//! Memory-aware partitioning: a workload that streams through a RAM,
//! partitioned onto two chips, with CHOP's advisor choosing the memory
//! placement (the interleaved memory/behavior partitioning the paper
//! names as future work).
//!
//! Run with: `cargo run -p chop-core --example memory_system`

use advise::best_memory_assignment;
use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::{DfgBuilder, MemoryRef, Operation};
use chop_library::standard::{example_on_chip_ram, table1_library, table2_packages};
use chop_library::{ChipId, ChipSet, MemoryId};
use chop_stat::units::{Bits, Nanos};

/// A coefficient-lookup multiply-accumulate kernel: read two coefficients
/// from M0, combine with streaming inputs, write the running state back.
fn mac_kernel() -> chop_dfg::Dfg {
    let mut b = DfgBuilder::new();
    let w = Bits::new(16);
    let m = MemoryRef::new(0);
    let addr = b.labeled_node(Operation::Input, w, "addr");
    let c0 = b.labeled_node(Operation::MemRead(m), w, "c0");
    let c1 = b.labeled_node(Operation::MemRead(m), w, "c1");
    b.connect(addr, c0).expect("valid");
    b.connect(addr, c1).expect("valid");
    let x0 = b.labeled_node(Operation::Input, w, "x0");
    let x1 = b.labeled_node(Operation::Input, w, "x1");
    let p0 = b.labeled_node(Operation::Mul, w, "p0");
    let p1 = b.labeled_node(Operation::Mul, w, "p1");
    b.connect(c0, p0).expect("valid");
    b.connect(x0, p0).expect("valid");
    b.connect(c1, p1).expect("valid");
    b.connect(x1, p1).expect("valid");
    let acc = b.labeled_node(Operation::Add, w, "acc");
    b.connect(p0, acc).expect("valid");
    b.connect(p1, acc).expect("valid");
    let scale = b.labeled_node(Operation::Mul, w, "scale");
    b.connect(acc, scale).expect("valid");
    b.connect(x0, scale).expect("valid");
    let wb = b.labeled_node(Operation::MemWrite(m), w, "writeback");
    b.connect(scale, wb).expect("valid");
    b.connect(addr, wb).expect("valid");
    let out = b.labeled_node(Operation::Output, w, "y");
    b.connect(scale, out).expect("valid");
    b.build().expect("acyclic by construction")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = mac_kernel();
    println!("workload: {} ({})", dfg, dfg.op_histogram());

    // Start with the memory on chip 1 — the far side from the reads.
    let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
    let partitioning = PartitioningBuilder::new(dfg, chips)
        .split_horizontal(2)
        .with_memory(example_on_chip_ram(), MemoryAssignment::OnChip(ChipId::new(1)))
        .build()?;
    let session = Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1)?,
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    );

    let before = session.explore(Heuristic::Iterative)?;
    println!(
        "\nmemory on chip 1: {} feasible, best II = {:?} cycles",
        before.feasible_trials,
        before.feasible.first().map(|f| f.system.initiation_interval.value())
    );

    let advice = best_memory_assignment(&session, Heuristic::Iterative)?;
    let placement = advice.partitioning.memory_assignment(MemoryId::new(0));
    println!(
        "advisor examined {} candidate placements; recommends M0 {placement}",
        advice.candidates_examined
    );
    match advice.outcome.feasible.first() {
        Some(best) => println!(
            "recommended placement: best II = {} cycles, delay = {} cycles, clock = {:.0} ns",
            best.system.initiation_interval.value(),
            best.system.delay.value(),
            best.system.clock.likely()
        ),
        None => println!("still infeasible — the memory bandwidth itself is the bottleneck"),
    }
    Ok(())
}
