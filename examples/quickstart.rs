//! Quickstart: partition the AR lattice filter onto two MOSIS chips and
//! ask CHOP whether the partitioning is feasible.
//!
//! Run with: `cargo run -p chop-core --example quickstart`

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::benchmarks;
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The behavioral specification: the paper's AR lattice filter
    //    (16 multiplications, 12 additions at 16 bits).
    let dfg = benchmarks::ar_lattice_filter();
    println!("specification: {dfg}");

    // 2. The target chip set: two 84-pin MOSIS packages (Table 2).
    let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);

    // 3. A tentative partitioning: a horizontal cut into two halves, one
    //    half per chip.
    let partitioning = PartitioningBuilder::new(dfg, chips).split_horizontal(2).build()?;

    // 4. The session: Table 1 library, 300 ns main clock with a 10× slower
    //    datapath clock (experiment-1 style), performance and delay
    //    constraints of 30 µs.
    let session = Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 10, 1)?,
        ArchitectureStyle::single_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
    );
    println!("{}", report::environment(&session));

    // 5. Explore with the iterative heuristic (Fig. 5 of the paper).
    let outcome = session.explore(Heuristic::Iterative)?;
    println!(
        "searched {} combinations in {:.2?}; {} feasible",
        outcome.trials, outcome.elapsed, outcome.feasible_trials
    );

    // 6. Print the designer guideline for the best feasible design.
    match outcome.feasible.first() {
        Some(best) => {
            println!("\n{}", report::guideline(&outcome, best, session.library()));
        }
        None => println!("no feasible implementation — relax constraints or repartition"),
    }
    Ok(())
}
