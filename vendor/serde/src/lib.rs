//! Offline stub of `serde`.
//!
//! The build environment has no network access to crates.io, and this
//! workspace only ever *derives* `Serialize`/`Deserialize` — nothing
//! serializes at run time (there is no `serde_json`/`bincode` in the
//! dependency tree). The stub therefore provides the two trait names and
//! no-op derive macros so the annotations compile unchanged; swapping the
//! real crate back in requires only restoring the registry dependency in
//! the workspace `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
