//! Offline stub of `serde_derive`: the derives expand to nothing.
//!
//! Nothing in this workspace calls `serialize`/`deserialize`, so emitting
//! no impls at all is sufficient for the annotations to compile — and it
//! sidesteps parsing generics/attributes without `syn`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
