//! Offline stub of `rand` 0.8.
//!
//! Provides the subset of the `rand` API this workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool, gen}` — over a SplitMix64 core. Deterministic for a given
//! seed, which is all the random-workload generators here require; it is
//! **not** a cryptographic or statistically rigorous generator.

use std::ops::Range;

/// Core of the stub: anything that can produce `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (stub of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Mirrors real rand's
    /// two-parameter signature so the result type drives inference of the
    /// range's element type (`gen_range(0..100) < some_u32` compiles).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(&mut |()| self.next_u64())
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Builds a value from one raw 64-bit draw.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn from_u64(raw: u64) -> Self { raw as $t }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        unit_f64(raw)
    }
}

/// Ranges usable with [`Rng::gen_range`] to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one sample; `next` yields raw 64-bit randomness.
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

/// Element types uniformly samplable from a range (stub of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_between(lo: Self, hi: Self, next: &mut dyn FnMut(()) -> u64) -> Self;
}

// One blanket impl (like real rand) so type inference can flow from the
// result type back into an unsuffixed range literal.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, next)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_between(lo: Self, hi: Self, next: &mut dyn FnMut(()) -> u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (u128::from(next(())) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(lo: Self, hi: Self, next: &mut dyn FnMut(()) -> u64) -> Self {
        lo + unit_f64(next(())) * (hi - lo)
    }
}

fn unit_f64(raw: u64) -> f64 {
    // 53 significant bits into [0, 1).
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64 step — the classic constant-time mixer.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators (stub of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stub of `rand::rngs::StdRng`: SplitMix64 under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step so seed 0 doesn't emit 0 first.
            let mut s = state;
            let _ = splitmix64(&mut s);
            StdRng { state: s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
