//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`,
//! range/tuple/`Just`/`any`/vec/regex-string strategies, the `proptest!`,
//! `prop_assert*!` and `prop_oneof!` macros, and `ProptestConfig`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * sampling is plain deterministic pseudo-randomness seeded from the
//!   test name and case index — every run replays the same cases;
//! * there is **no shrinking**: a failing case reports the assertion as-is.
//!
//! `*.proptest-regressions` files are ignored.

pub mod collection;
pub mod config;
pub mod regex;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Replacement for `proptest::proptest!`: runs each body over
/// `ProptestConfig::cases` deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::config::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( #[test] fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::config::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    // Bodies may `return Ok(())` to reject a case early,
                    // mirroring real proptest's `Result`-returning bodies.
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
}

/// Replacement for `prop_assert!` — no shrinking, so plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Replacement for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Replacement for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Replacement for `prop_oneof!`: uniform choice among the listed
/// strategies (real proptest supports weights; this workspace doesn't use
/// them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
