//! Collection strategies (stub of `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Stub of `proptest::collection::vec`: `size` is the allowed length range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::deterministic("collection::tests", 0);
        let s = vec(0u8..5, 2..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
