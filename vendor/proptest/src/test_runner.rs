//! Deterministic randomness for the stub runner.

/// SplitMix64-based test RNG, seeded from the test name and case index so
/// every `cargo test` run replays the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier and case number.
    #[must_use]
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng { state: h };
        let _ = rng.next_u64(); // warm-up
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn replays_identically() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let a = TestRng::deterministic("x::y", 0).next_u64();
        let b = TestRng::deterministic("x::y", 1).next_u64();
        assert_ne!(a, b);
    }
}
