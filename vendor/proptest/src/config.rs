//! Runner configuration.

/// Stub of `proptest::test_runner::Config` / `ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Real proptest defaults to 256 cases; the stub uses 64 to keep the
    /// full workspace test run fast without external tuning.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
