//! A tiny regex *generator* for string strategies.
//!
//! Real proptest interprets `&str` strategies as regular expressions and
//! samples matching strings. This stub supports the subset the workspace's
//! tests use: literals, `.`, character classes `[a-z0-9_]`, groups
//! `( … )`, alternation `|`, and the quantifiers `?`, `*`, `+`, `{n}` and
//! `{m,n}`. Unsupported syntax degrades to literal emission — generation
//! must never fail, since the pattern only drives fuzz input.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    Quantified(Box<Node>, u32, u32),
}

/// Samples one string matching `pattern` (best effort).
#[must_use]
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (alts, _) = parse_alternation(&chars, 0, None);
    let mut out = String::new();
    emit_group(&alts, rng, &mut out);
    out
}

/// Parses `|`-separated sequences up to `close` (a closing paren) or end
/// of input; returns the alternatives and the index after the terminator.
fn parse_alternation(
    chars: &[char],
    mut i: usize,
    close: Option<char>,
) -> (Vec<Vec<Node>>, usize) {
    let mut alts: Vec<Vec<Node>> = vec![Vec::new()];
    while i < chars.len() {
        let c = chars[i];
        if Some(c) == close {
            i += 1;
            break;
        }
        if c == '|' {
            alts.push(Vec::new());
            i += 1;
            continue;
        }
        let (node, next) = parse_atom(chars, i);
        let (min, max, after) = parse_quantifier(chars, next);
        let node = if (min, max) == (1, 1) {
            node
        } else {
            Node::Quantified(Box::new(node), min, max)
        };
        alts.last_mut().expect("alts starts non-empty").push(node);
        i = after;
    }
    (alts, i)
}

fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
    match chars[i] {
        '.' => (Node::AnyChar, i + 1),
        '\\' if i + 1 < chars.len() => (Node::Literal(chars[i + 1]), i + 2),
        '[' => parse_class(chars, i + 1),
        '(' => {
            let (alts, after) = parse_alternation(chars, i + 1, Some(')'));
            (Node::Group(alts), after)
        }
        c => (Node::Literal(c), i + 1),
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
    let mut ranges = Vec::new();
    // A leading '^' (negated class) is unsupported; ignore the marker and
    // generate from the listed ranges instead.
    if i < chars.len() && chars[i] == '^' {
        i += 1;
    }
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            ranges.push((lo, chars[i + 2]));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    if ranges.is_empty() {
        ranges.push(('a', 'z'));
    }
    (Node::Class(ranges), (i + 1).min(chars.len()))
}

/// Parses `?`, `*`, `+`, `{n}`, `{m,n}` after an atom. Unbounded
/// repetitions are capped at 8.
fn parse_quantifier(chars: &[char], i: usize) -> (u32, u32, usize) {
    const CAP: u32 = 8;
    if i >= chars.len() {
        return (1, 1, i);
    }
    match chars[i] {
        '?' => (0, 1, i + 1),
        '*' => (0, CAP, i + 1),
        '+' => (1, CAP, i + 1),
        '{' => {
            let Some(close) = chars[i..].iter().position(|&c| c == '}').map(|p| i + p) else {
                return (1, 1, i);
            };
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => {
                    let min: u32 = m.trim().parse().unwrap_or(0);
                    let max: u32 = n.trim().parse().unwrap_or(min + CAP);
                    (min, max)
                }
                None => {
                    let n: u32 = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            };
            (min, max.max(min), close + 1)
        }
        _ => (1, 1, i),
    }
}

fn emit_group(alts: &[Vec<Node>], rng: &mut TestRng, out: &mut String) {
    let pick = rng.below(alts.len().max(1) as u64) as usize;
    for node in &alts[pick] {
        emit_node(node, rng, out);
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::AnyChar => {
            // Printable ASCII, with occasional newline / multi-byte chars
            // to stress parsers.
            let roll = rng.below(100);
            let c = if roll < 90 {
                char::from(32 + rng.below(95) as u8)
            } else if roll < 95 {
                '\n'
            } else {
                '\u{00e9}' // multi-byte UTF-8, catches byte/char confusion
            };
            out.push(c);
        }
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = u64::from((hi as u32).saturating_sub(lo as u32) + 1);
            let c = char::from_u32(lo as u32 + rng.below(span) as u32).unwrap_or(lo);
            out.push(c);
        }
        Node::Group(alts) => emit_group(alts, rng, out),
        Node::Quantified(inner, min, max) => {
            let reps = min + rng.below(u64::from(max - min + 1)) as u32;
            for _ in 0..reps {
                emit_node(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    fn rng(case: u32) -> TestRng {
        TestRng::deterministic("regex::tests", case)
    }

    #[test]
    fn fixed_literal_round_trips() {
        assert_eq!(generate("abc = x", &mut rng(0)), "abc = x");
    }

    #[test]
    fn class_and_counts_respected() {
        for case in 0..200 {
            let s = generate("[a-z]{1,4}", &mut rng(case));
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn spec_line_shape() {
        for case in 0..100 {
            let s = generate("[a-z]{1,4} = [a-z]{1,6}( [a-zA-Z0-9]{1,4}){0,3}", &mut rng(case));
            assert!(s.contains(" = "), "{s:?}");
        }
    }

    #[test]
    fn dot_quantifier_bounded() {
        for case in 0..50 {
            let s = generate(".{0,200}", &mut rng(case));
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn alternation_picks_arms() {
        let mut seen_a = false;
        let mut seen_b = false;
        for case in 0..50 {
            match generate("(a|b)", &mut rng(case)).as_str() {
                "a" => seen_a = true,
                "b" => seen_b = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(seen_a && seen_b);
    }
}
