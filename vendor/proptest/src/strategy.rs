//! The `Strategy` trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test values (stub of `proptest::strategy::Strategy`).
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a samplable distribution.
pub trait Strategy {
    /// The values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Samples a value, builds a dependent strategy from it, samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (type erasure).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by `prop_oneof!` so type inference can unify the
/// arm types.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value (stub of `proptest::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds from a non-empty arm list.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---- ranges -------------------------------------------------------------

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuples -------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- homogeneous collections as strategies ------------------------------

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

// ---- any::<T>() ---------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// One unconstrained sample.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly finite values across a wide magnitude span.
        let mag = rng.unit_f64() * 200.0 - 100.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Stub of `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- regex string strategies --------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b, f) = (1usize..5, 10u32..20, -1.0f64..1.0).sample(&mut r);
            assert!((1..5).contains(&a));
            assert!((10..20).contains(&b));
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_map(|n| n * 2).prop_flat_map(|n| 0usize..n);
        for _ in 0..100 {
            assert!(s.sample(&mut r) < 6);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_of_strategies_samples_each() {
        let mut r = rng();
        let v = vec![0u8..10, 10u8..20, 20u8..30].sample(&mut r);
        assert_eq!(v.len(), 3);
        assert!(v[0] < 10 && (10..20).contains(&v[1]) && (20..30).contains(&v[2]));
    }
}
