//! Offline stub of `criterion`.
//!
//! Implements the entry points this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::{iter, iter_batched}` — over a plain wall-clock harness:
//! warm up once, run `sample_size` timed samples, report min/median/mean
//! to stdout. No statistics engine, plots or comparison baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Stub of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self, sample_size: 20 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 20, f);
        self
    }
}

/// Stub of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("  {id}"), self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Stub of `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

/// Stub of `criterion::BatchSize`; the stub harness sizes batches by
/// `iters_per_sample` regardless of the variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Times the closure; called once per sample by the harness.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }

    /// Times `routine` over inputs produced by `setup`; setup runs
    /// untimed before the batch starts.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up and calibration: one untimed call.
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    f(&mut b);
    let warmup = b.samples.first().copied().unwrap_or_default();
    // Aim for samples of at least ~1 ms without exceeding ~64 iterations.
    let iters = if warmup.as_micros() == 0 {
        64
    } else {
        (1000 / warmup.as_micros().max(1)).clamp(1, 64) as u32
    };
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: iters };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{id}: no samples (closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id}: min {min:.2?}, median {median:.2?}, mean {mean:.2?} ({} samples x {iters} iters)",
        samples.len()
    );
}

/// Stub of `criterion_group!`: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Stub of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            calls += 1;
        });
        group.finish();
        assert!(calls >= 3);
    }
}
