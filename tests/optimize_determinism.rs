//! Determinism and constraint-respect tests for the move-based
//! optimizer, plus the infeasible-start acceptance scenario: `optimize`
//! on experiment 1 must find a feasible partitioning from an infeasible
//! start within the default budget, with byte-identical digests at any
//! job count.

use chop_core::prelude::*;

/// Experiment-1 session (3 partitions, 84-pin packages) skewed by greedy
/// node moves into partition 0 until exploration finds nothing feasible.
fn infeasible_start() -> Session {
    let session = experiments::experiment1_session(&experiments::Exp1Config {
        partitions: 3,
        package: 1,
    })
    .expect("experiment 1 builds");
    let mut partitioning = session.partitioning().clone();
    // Pack partition-1/2 nodes into partition 0: the cut and partition-0
    // area blow past the 84-pin package until nothing predicts feasible.
    for source in [1usize, 2] {
        let nodes = partitioning.grouping().members(source);
        for node in nodes {
            if partitioning.grouping().members(source).len() <= 1 {
                break;
            }
            if let Ok(moved) = partitioning.with_node_moved(node, PartitionId::new(0)) {
                partitioning = moved;
            }
        }
    }
    session.try_with_partitioning(partitioning).expect("skewed partitioning validates")
}

#[test]
fn skewed_start_is_infeasible_and_optimize_recovers_feasibility() {
    let session = infeasible_start();
    let before = session.explore(Heuristic::Iterative).expect("explore runs");
    assert!(before.feasible.is_empty(), "skewed start must be infeasible");
    let result = session.optimize(&OptimizeSpec::new()).expect("optimize runs");
    assert!(result.feasible(), "default budget must recover feasibility, got {result}");
    assert!(!result.moves.is_empty());
    assert_eq!(result.completion, Completion::Complete);
}

/// Worker threads for the suite: `CHOP_TEST_JOBS` (CI sets 4 so the
/// digest-invariance assertions cover a real thread pool).
fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// The acceptance criterion from the redesign: the optimizer digest is
/// byte-identical at `--jobs 1/2/8` (and whatever CI pins via
/// `CHOP_TEST_JOBS`) because every candidate evaluation goes through the
/// jobs-invariant exploration engine.
#[test]
fn digest_and_trace_are_byte_identical_across_jobs() {
    let session = infeasible_start();
    let spec = OptimizeSpec::new().with_seed(7);
    let baseline = session.clone().with_jobs(1).optimize(&spec).expect("jobs=1");
    for jobs in [2usize, 8, test_jobs()] {
        let run = session.clone().with_jobs(jobs).optimize(&spec).expect("optimize runs");
        assert_eq!(run.digest(), baseline.digest(), "digest diverged at jobs={jobs}");
        assert_eq!(run.moves, baseline.moves, "move trace diverged at jobs={jobs}");
        assert_eq!(
            run.partitioning.grouping(),
            baseline.partitioning.grouping(),
            "final grouping diverged at jobs={jobs}"
        );
    }
}

/// Replaying the accepted move trace through [`Session::apply_moves`]
/// lands on the optimizer's final grouping — the property the service
/// journal relies on.
#[test]
fn accepted_trace_replays_to_final_partitioning() {
    let session = infeasible_start();
    let result = session.optimize(&OptimizeSpec::new()).expect("optimize runs");
    let moves: Vec<_> = result
        .moves_as_indices()
        .into_iter()
        .map(|(node, to)| {
            let id = session
                .partitioning()
                .dfg()
                .nodes()
                .find(|(id, _)| id.index() == node as usize)
                .map(|(id, _)| id)
                .expect("trace names a known node");
            (id, PartitionId::new(to))
        })
        .collect();
    let replayed = session.apply_moves(&moves).expect("trace replays");
    assert_eq!(replayed.partitioning().grouping(), result.partitioning.grouping());
}

mod seed_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Same seed + same spec → identical move trace and digest, run
        // twice from scratch (no shared cache assumptions), and every
        // emitted move respects pinned nodes and keeps declared groups
        // together on one partition.
        #[test]
        fn seeded_runs_reproduce_and_respect_constraints(seed in 0u64..1_000) {
            let session = infeasible_start();
            let pinned = session.partitioning().grouping().members(0)[0];
            let group = session.partitioning().grouping().members(0)[1..3].to_vec();
            let spec = OptimizeSpec::new()
                .with_seed(seed)
                .with_max_moves(24)
                .with_pinned_node(pinned)
                .with_group(group.clone());

            let a = session.optimize(&spec).expect("optimize runs");
            let b = session.optimize(&spec).expect("optimize reruns");
            prop_assert_eq!(a.digest(), b.digest());
            prop_assert_eq!(&a.moves, &b.moves);

            for mv in &a.moves {
                prop_assert!(
                    !mv.nodes.contains(&pinned),
                    "pinned node moved in {mv:?}"
                );
                let touches = group.iter().filter(|n| mv.nodes.contains(n)).count();
                prop_assert!(
                    touches == 0 || touches == group.len(),
                    "group split by {mv:?}"
                );
            }
            // The group stays co-located in the final partitioning.
            let final_grouping = a.partitioning.grouping();
            let home = final_grouping.group_of(group[0]);
            for &n in &group[1..] {
                prop_assert_eq!(final_grouping.group_of(n), home);
            }
            // The pinned node never left its original partition.
            prop_assert_eq!(final_grouping.group_of(pinned), 0);
        }
    }
}
