//! Tests for the paper's §5 future-work extensions implemented here:
//! power constraints and testability overhead.

use chop_core::prelude::experiments::{
    experiment1_session, experiment2_session, Exp1Config, Exp2Config,
};
use chop_core::prelude::testability::TestabilityOverhead;
use chop_core::prelude::{Constraints, Heuristic};
use chop_stat::units::{MilliWatts, Nanos};

#[test]
fn power_estimates_are_reported() {
    let o = experiment2_session(&Exp2Config { partitions: 2, package: 1 })
        .unwrap()
        .explore(Heuristic::Iterative)
        .unwrap();
    assert!(!o.feasible.is_empty());
    for f in &o.feasible {
        assert!(f.system.power.likely() > 0.0, "system power must be predicted");
    }
}

#[test]
fn tiny_power_limit_kills_every_design() {
    let constrained = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .try_with_constraints(
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0))
                .with_power_limit(MilliWatts::new(1.0)),
        )
        .unwrap();
    let o = constrained.explore(Heuristic::Enumeration).unwrap();
    assert_eq!(o.feasible_trials, 0, "1 mW cannot power a multiplier");
}

#[test]
fn generous_power_limit_changes_nothing() {
    let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let unconstrained = base.explore(Heuristic::Enumeration).unwrap();
    let generous = base
        .clone()
        .try_with_constraints(
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0))
                .with_power_limit(MilliWatts::new(1_000_000.0)),
        )
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert_eq!(unconstrained.feasible_trials, generous.feasible_trials);
}

#[test]
fn intermediate_power_limit_prunes_hot_designs() {
    let base = experiment2_session(&Exp2Config { partitions: 2, package: 1 }).unwrap();
    let all = base.explore(Heuristic::Enumeration).unwrap();
    assert!(!all.feasible.is_empty());
    // Set the limit just below the hottest feasible design.
    let hottest = all.feasible.iter().map(|f| f.system.power.likely()).fold(0.0f64, f64::max);
    let coolest =
        all.feasible.iter().map(|f| f.system.power.likely()).fold(f64::INFINITY, f64::min);
    if hottest > coolest * 1.05 {
        let limited = base
            .clone()
            .try_with_constraints(
                Constraints::new(Nanos::new(20_000.0), Nanos::new(30_000.0))
                    .with_power_limit(MilliWatts::new((hottest + coolest) / 2.0)),
            )
            .unwrap()
            .explore(Heuristic::Enumeration)
            .unwrap();
        assert!(limited.feasible_trials < all.feasible_trials);
    }
}

#[test]
fn testability_overhead_shrinks_the_feasible_set() {
    let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let plain = base.explore(Heuristic::Enumeration).unwrap();
    let scan = base
        .clone()
        .with_testability(TestabilityOverhead::full_scan())
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(
        scan.feasible_trials <= plain.feasible_trials,
        "full scan cannot add feasible designs"
    );
}

#[test]
fn testability_clock_overhead_visible_in_results() {
    let base = experiment2_session(&Exp2Config { partitions: 2, package: 1 }).unwrap();
    let plain = base.explore(Heuristic::Iterative).unwrap();
    let scan = base
        .clone()
        .with_testability(TestabilityOverhead::partial_scan())
        .explore(Heuristic::Iterative)
        .unwrap();
    let best_clock = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.clock.likely()).fold(f64::INFINITY, f64::min)
    };
    if !plain.feasible.is_empty() && !scan.feasible.is_empty() {
        assert!(best_clock(&scan) > best_clock(&plain));
    }
}

#[test]
fn partial_scan_is_gentler_than_full_scan() {
    let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let partial = base
        .clone()
        .with_testability(TestabilityOverhead::partial_scan())
        .explore(Heuristic::Enumeration)
        .unwrap();
    let full = base
        .clone()
        .with_testability(TestabilityOverhead::full_scan())
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(full.feasible_trials <= partial.feasible_trials);
}
