//! End-to-end reproduction checks for experiment 1 (Tables 3 and 4).

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::Heuristic;

#[test]
fn single_partition_has_feasible_design() {
    let s = experiment1_session(&Exp1Config { partitions: 1, package: 1 }).unwrap();
    for h in [Heuristic::Enumeration, Heuristic::Iterative] {
        let o = s.explore(h).unwrap();
        assert!(o.feasible_trials >= 1, "{h}: Table 4 row 1 has a feasible trial");
        assert!(!o.feasible.is_empty());
    }
}

#[test]
fn doubling_chips_doubles_performance() {
    // Table 4 headline: "two times higher performance can be obtained
    // easily by doubling the available chip area."
    let one = experiment1_session(&Exp1Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let two = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let best_ii = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.initiation_ns.likely()).fold(f64::INFINITY, f64::min)
    };
    let ii1 = best_ii(&one);
    let ii2 = best_ii(&two);
    assert!(ii1.is_finite() && ii2.is_finite());
    assert!(ii2 <= ii1 / 1.5, "two chips ({ii2} ns) should be well below one chip ({ii1} ns)");
}

#[test]
fn fewer_pins_never_improve_delay() {
    // Table 4: "Using 64 rather than 84 pin chip packaging causes a slight
    // increase in the system delay."
    let p64 = experiment1_session(&Exp1Config { partitions: 2, package: 0 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let p84 = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let best_delay = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.delay_ns.likely()).fold(f64::INFINITY, f64::min)
    };
    let d64 = best_delay(&p64);
    let d84 = best_delay(&p84);
    assert!(d64.is_finite() && d84.is_finite());
    assert!(d64 >= d84, "64-pin best delay {d64} must be >= 84-pin {d84}");
}

#[test]
fn partitioned_specs_admit_more_feasible_predictions() {
    // Table 3 shape: splitting the design (1 → 2/3 partitions) multiplies
    // the feasible predictions (5 → 25/32 in the paper) because each
    // smaller partition fits its chip more easily.
    let single = experiment1_session(&Exp1Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Iterative)
        .unwrap()
        .feasible_predictions();
    for partitions in 2..=3 {
        let multi = experiment1_session(&Exp1Config { partitions, package: 1 })
            .unwrap()
            .explore(Heuristic::Iterative)
            .unwrap()
            .feasible_predictions();
        assert!(
            multi > single,
            "{partitions} partitions: {multi} feasible predictions !> {single}"
        );
    }
}

#[test]
fn iterative_needs_fewer_trials_at_higher_partition_counts() {
    // Table 4: E uses 1050 trials at 3 partitions, I uses 9.
    let s = experiment1_session(&Exp1Config { partitions: 3, package: 1 }).unwrap();
    let e = s.explore(Heuristic::Enumeration).unwrap();
    let i = s.explore(Heuristic::Iterative).unwrap();
    assert!(i.trials < e.trials, "I ({}) !< E ({})", i.trials, e.trials);
}

#[test]
fn clock_cycle_close_to_main_clock() {
    // Table 4 clocks are 308–312 ns: the 10×-slower datapath keeps its
    // overhead off the main clock; only transfer-path overhead remains.
    for partitions in 1..=3 {
        let o = experiment1_session(&Exp1Config { partitions, package: 1 })
            .unwrap()
            .explore(Heuristic::Enumeration)
            .unwrap();
        for f in &o.feasible {
            let clock = f.system.clock.likely();
            assert!(
                (300.0..340.0).contains(&clock),
                "{partitions} partitions: clock {clock} outside Table 4 band"
            );
        }
    }
}
