//! Cross-crate validation: malformed partitionings are rejected with
//! precise errors, well-formed ones flow through the whole pipeline.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::{BuildError, PartitioningBuilder, SpecError};
use chop_core::prelude::{Constraints, Heuristic, MemoryAssignment, Session};
use chop_dfg::grouping::Grouping;
use chop_dfg::{benchmarks, DfgBuilder, MemoryRef, Operation};
use chop_library::standard::{
    example_off_shelf_ram, example_on_chip_ram, table1_library, table2_packages,
};
use chop_library::{ChipId, ChipSet};
use chop_stat::units::{Bits, Nanos};

fn chips(n: usize) -> ChipSet {
    ChipSet::uniform(table2_packages()[1].clone(), n)
}

#[test]
fn mutual_dependency_rejected_at_build() {
    // Interleave groups along a chain: 0,1,0 creates 0→1 and 1→0 flow.
    let mut b = DfgBuilder::new();
    let w = Bits::new(16);
    let i = b.node(Operation::Input, w);
    let a = b.node(Operation::Add, w);
    let m = b.node(Operation::Mul, w);
    let o = b.node(Operation::Output, w);
    b.connect(i, a).unwrap();
    b.connect(i, a).unwrap();
    b.connect(a, m).unwrap();
    b.connect(a, m).unwrap();
    b.connect(m, o).unwrap();
    let g = b.build().unwrap();
    let grouping = Grouping::new(&g, 2, vec![0, 0, 1, 0]).unwrap();
    let err =
        PartitioningBuilder::new(g, chips(2)).with_grouping(grouping).build().unwrap_err();
    assert!(matches!(err, BuildError::Grouping(_)));
}

#[test]
fn memory_on_chip_consumes_area_in_exploration() {
    // A DFG with memory traffic; the on-chip RAM's area must reduce what
    // fits beside it compared to an off-the-shelf part.
    let mut b = DfgBuilder::new();
    let w = Bits::new(16);
    let mref = MemoryRef::new(0);
    let addr = b.node(Operation::Input, w);
    let rd = b.node(Operation::MemRead(mref), w);
    b.connect(addr, rd).unwrap();
    let x = b.node(Operation::Input, w);
    let mul = b.node(Operation::Mul, w);
    b.connect(rd, mul).unwrap();
    b.connect(x, mul).unwrap();
    let wr = b.node(Operation::MemWrite(mref), w);
    b.connect(mul, wr).unwrap();
    b.connect(addr, wr).unwrap();
    let o = b.node(Operation::Output, w);
    b.connect(mul, o).unwrap();
    let g = b.build().unwrap();

    let on_chip = PartitioningBuilder::new(g.clone(), chips(1))
        .with_memory(example_on_chip_ram(), MemoryAssignment::OnChip(ChipId::new(0)))
        .build()
        .unwrap();
    let off_shelf = PartitioningBuilder::new(g, chips(1))
        .with_memory(example_off_shelf_ram(), MemoryAssignment::External)
        .build()
        .unwrap();

    let session = |p| {
        Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    };
    let on = session(on_chip).explore(Heuristic::Enumeration).unwrap();
    let off = session(off_shelf).explore(Heuristic::Enumeration).unwrap();
    let best_area = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.chip_areas[0].likely()).fold(f64::INFINITY, f64::min)
    };
    assert!(!on.feasible.is_empty() && !off.feasible.is_empty());
    assert!(best_area(&on) > best_area(&off));
}

#[test]
fn chip_swap_changes_pin_budget_effects() {
    let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
        .split_horizontal(2)
        .build()
        .unwrap();
    let swapped = p.with_chip_set(ChipSet::uniform(table2_packages()[0].clone(), 2)).unwrap();
    assert_eq!(swapped.chips().chip(ChipId::new(0)).pins(), 64);
}

#[test]
fn placement_mismatch_is_spec_error() {
    let err = PartitioningBuilder::new(benchmarks::diffeq(), chips(1))
        .with_memory(example_off_shelf_ram(), MemoryAssignment::OnChip(ChipId::new(0)))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::Spec(SpecError::PlacementMismatch(_))));
}

#[test]
fn cyclic_chip_flow_with_acyclic_partitions_is_legal() {
    // Fig. 2's key subtlety: "cyclic data flow is allowed among chips" as
    // long as no two *partitions* are mutually dependent. Chain
    // P1→P2→P3 with P1,P3 on chip 0 and P2 on chip 1: data flows
    // chip0→chip1→chip0.
    let mut b = DfgBuilder::new();
    let w = Bits::new(16);
    let i = b.node(Operation::Input, w);
    let a1 = b.node(Operation::Mul, w);
    b.connect(i, a1).unwrap();
    b.connect(i, a1).unwrap();
    let a2 = b.node(Operation::Mul, w);
    b.connect(a1, a2).unwrap();
    b.connect(a1, a2).unwrap();
    let a3 = b.node(Operation::Add, w);
    b.connect(a2, a3).unwrap();
    b.connect(a2, a3).unwrap();
    let o = b.node(Operation::Output, w);
    b.connect(a3, o).unwrap();
    let g = b.build().unwrap();
    // nodes: i,a1 → P1; a2 → P2; a3,o → P3.
    let grouping = Grouping::new(&g, 3, vec![0, 0, 1, 2, 2]).unwrap();
    let p = PartitioningBuilder::new(g, chips(2))
        .with_grouping(grouping)
        .with_chip_assignment(vec![ChipId::new(0), ChipId::new(1), ChipId::new(0)])
        .build()
        .unwrap();
    // Both chips host work; chip 0 hosts two partitions.
    assert_eq!(p.partitions_on(ChipId::new(0)).len(), 2);
    let s = Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    );
    let outcome = s.explore(Heuristic::Enumeration).unwrap();
    assert!(outcome.trials > 0);
    assert!(outcome.feasible_trials > 0, "the tiny chain easily fits two chips");
}

#[test]
fn predict_error_names_partition() {
    // diffeq needs a comparator the Table 1 library lacks.
    let p = PartitioningBuilder::new(benchmarks::diffeq(), chips(1)).build().unwrap();
    let s = Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
    );
    let err = s.explore(Heuristic::Iterative).unwrap_err();
    assert!(err.to_string().contains("P1"));
}
