//! End-to-end reproduction checks for experiment 2 (Tables 5 and 6).

use chop_core::prelude::experiments::{
    experiment1_session, experiment2_session, Exp1Config, Exp2Config,
};
use chop_core::prelude::Heuristic;

#[test]
fn multi_cycle_space_is_larger() {
    // Table 5 vs Table 3: exp-2 prediction totals dominate exp-1's.
    for partitions in 1..=3 {
        let e1 = experiment1_session(&Exp1Config { partitions, package: 1 })
            .unwrap()
            .explore(Heuristic::Iterative)
            .unwrap();
        let e2 = experiment2_session(&Exp2Config { partitions, package: 1 })
            .unwrap()
            .explore(Heuristic::Iterative)
            .unwrap();
        assert!(
            e2.total_predictions() > e1.total_predictions(),
            "partitions={partitions}: exp2 {} <= exp1 {}",
            e2.total_predictions(),
            e1.total_predictions()
        );
    }
}

#[test]
fn multi_cycle_single_chip_beats_single_cycle_performance() {
    // Table 6 headline: "a multi-cycle-operation architecture allows a
    // more efficient use of a faster clock … resulting in higher
    // performance designs." Exp-1 1-chip best is II = 60 main cycles
    // (≈18 µs); exp-2 finds ≈II 40 at ≈380 ns (≈15 µs).
    let e1 = experiment1_session(&Exp1Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let e2 = experiment2_session(&Exp2Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let best_ii_ns = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.initiation_ns.likely()).fold(f64::INFINITY, f64::min)
    };
    let ns1 = best_ii_ns(&e1);
    let ns2 = best_ii_ns(&e2);
    assert!(ns1.is_finite(), "exp1 found nothing");
    assert!(ns2.is_finite(), "exp2 found nothing");
    // Single chip: multi-cycle is at least as good (a near-tie in this
    // reproduction; the paper reports 16.0 µs vs 18.7 µs).
    // Single chip this reproduction reaches a near-tie (the paper reports
    // 16.0 µs vs 18.7 µs; our single-cycle baseline is stronger than the
    // paper's because the balanced split packs the one-chip design well).
    assert!(
        ns2 <= ns1 * 1.05,
        "exp2 best {ns2} ns should stay within 5 % of exp1 best {ns1} ns"
    );

    // Two chips: the multi-cycle advantage is strict (paper: II 20×385 ns
    // vs 20×309 ns… the gap shows at matched chip counts).
    let e1b = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let e2b = experiment2_session(&Exp2Config { partitions: 2, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let ns1b = best_ii_ns(&e1b);
    let ns2b = best_ii_ns(&e2b);
    assert!(ns2b < ns1b, "exp2 two-chip best {ns2b} ns should strictly beat exp1's {ns1b} ns");
}

#[test]
fn clock_cycle_reflects_datapath_overhead() {
    // Table 6 clocks are 374–400 ns: the datapath shares the main clock,
    // so register/mux/wiring/controller overhead loads it.
    let o = experiment2_session(&Exp2Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(!o.feasible.is_empty());
    for f in &o.feasible {
        let clock = f.system.clock.likely();
        assert!((350.0..450.0).contains(&clock), "clock {clock} outside Table 6 band");
    }
}

#[test]
fn more_partitions_allow_lower_initiation_intervals() {
    // Table 6: 3 partitions reach II = 16–20 cycles vs 40 for 1 partition.
    let one = experiment2_session(&Exp2Config { partitions: 1, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let three = experiment2_session(&Exp2Config { partitions: 3, package: 1 })
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    let best = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.initiation_interval.value()).min()
    };
    let b1 = best(&one);
    let b3 = best(&three);
    assert!(b1.is_some(), "1-partition exp2 found nothing");
    if let (Some(b1), Some(b3)) = (b1, b3) {
        assert!(b3 < b1, "3 partitions (II={b3}) should beat 1 partition (II={b1})");
    }
}

#[test]
fn both_heuristics_report_feasible_designs() {
    for partitions in [1usize, 2] {
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let o = experiment2_session(&Exp2Config { partitions, package: 1 })
                .unwrap()
                .explore(h)
                .unwrap();
            assert!(
                o.feasible_trials >= 1,
                "exp2 {h} with {partitions} partition(s) found nothing"
            );
        }
    }
}
