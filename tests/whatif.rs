//! The §2.7 what-if modification loop: partitions, memory, chip set and
//! constraints.

use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{Constraints, Heuristic, PartitionId};
use chop_library::standard::table2_packages;
use chop_library::ChipSet;
use chop_stat::units::Nanos;

#[test]
fn operation_migration_changes_cut() {
    let s = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let p = s.partitioning().clone();
    let before: u64 = p.inter_partition_cuts().iter().map(|c| c.bits.value()).sum();
    // Move one movable node from P1 to P2 without violating structure.
    let mut moved = None;
    for node in p.grouping().members(0) {
        if let Ok(m) = p.with_node_moved(node, PartitionId::new(1)) {
            moved = Some(m);
            break;
        }
    }
    let moved = moved.expect("some node is movable");
    let after: u64 = moved.inter_partition_cuts().iter().map(|c| c.bits.value()).sum();
    assert_ne!(before, after, "migration should change the cut");
}

#[test]
fn chip_set_downgrade_weakens_results() {
    let s84 = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let s64 = s84
        .clone()
        .try_with_chip_set(ChipSet::uniform(table2_packages()[0].clone(), 2))
        .unwrap();
    let o84 = s84.explore(Heuristic::Enumeration).unwrap();
    let o64 = s64.explore(Heuristic::Enumeration).unwrap();
    let best_delay = |o: &chop_core::SearchOutcome| {
        o.feasible.iter().map(|f| f.system.delay_ns.likely()).fold(f64::INFINITY, f64::min)
    };
    assert!(best_delay(&o64) >= best_delay(&o84));
}

#[test]
fn tightening_performance_prunes_slow_designs() {
    let s = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let loose = s.explore(Heuristic::Enumeration).unwrap();
    let tight = s
        .clone()
        .try_with_constraints(Constraints::new(Nanos::new(10_000.0), Nanos::new(30_000.0)))
        .unwrap()
        .explore(Heuristic::Enumeration)
        .unwrap();
    // Every surviving design under the tight constraint meets it.
    for f in &tight.feasible {
        assert!(f.system.initiation_ns.hi() <= 10_000.0 + 1e-6);
    }
    assert!(tight.feasible.len() <= loose.feasible.len());
}

#[test]
fn infeasible_constraints_yield_empty_but_ok() {
    let s = experiment1_session(&Exp1Config { partitions: 1, package: 1 })
        .unwrap()
        .try_with_constraints(Constraints::new(Nanos::new(100.0), Nanos::new(100.0)))
        .unwrap();
    let o = s.explore(Heuristic::Iterative).unwrap();
    assert_eq!(o.feasible_trials, 0);
    assert!(o.feasible.is_empty());
}
