//! The §2.3 workflow: an inner loop with a determinate trip count is
//! unrolled into an acyclic DFG, then partitioned and checked — end to
//! end through every crate.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Constraints, Heuristic, Session};
use chop_dfg::unroll::LoopSpec;
use chop_dfg::{DfgBuilder, NodeId, Operation};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::{Bits, Nanos};

/// One iteration of `acc = acc * c + x[i]` — an IIR-ish recurrence.
fn mac_body() -> (chop_dfg::Dfg, NodeId, NodeId) {
    let mut b = DfgBuilder::new();
    let w = Bits::new(16);
    let acc_in = b.node(Operation::Input, w);
    let c = b.node(Operation::Const, w);
    let x = b.node(Operation::Input, w);
    let p = b.node(Operation::Mul, w);
    b.connect(acc_in, p).unwrap();
    b.connect(c, p).unwrap();
    let s = b.node(Operation::Add, w);
    b.connect(p, s).unwrap();
    b.connect(x, s).unwrap();
    let acc_out = b.node(Operation::Output, w);
    b.connect(s, acc_out).unwrap();
    (b.build().unwrap(), acc_in, acc_out)
}

#[test]
fn unrolled_loop_flows_through_chop() {
    let (body, acc_in, acc_out) = mac_body();
    let spec = LoopSpec::new(body, 6, vec![(acc_out, acc_in)]).unwrap();
    let unrolled = spec.unroll();
    assert!(unrolled.validate().is_ok());
    let h = unrolled.op_histogram();
    assert_eq!(h.count(Operation::Mul), 6);
    assert_eq!(h.count(Operation::Add), 6);

    for k in 1..=2usize {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(unrolled.clone(), chips)
            .split_horizontal(k)
            .build()
            .unwrap();
        let session = Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
        );
        let outcome = session.explore(Heuristic::Iterative).unwrap();
        assert!(outcome.feasible_trials > 0, "a 12-op unrolled loop easily fits {k} chip(s)");
    }
}

#[test]
fn deeper_unrolling_serializes_the_critical_path() {
    // The recurrence is serial: latency grows ~linearly with trip count.
    let best_delay = |trips: u32| -> u64 {
        let (body, acc_in, acc_out) = mac_body();
        let spec = LoopSpec::new(body, trips, vec![(acc_out, acc_in)]).unwrap();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), 1);
        let p = PartitioningBuilder::new(spec.unroll(), chips).build().unwrap();
        let session = Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(120_000.0), Nanos::new(120_000.0)),
        );
        let outcome = session.explore(Heuristic::Iterative).unwrap();
        outcome.feasible.iter().map(|f| f.system.delay.value()).min().expect("feasible")
    };
    let d2 = best_delay(2);
    let d8 = best_delay(8);
    assert!(d8 > d2 * 2, "8 iterations ({d8}) should far exceed 2 ({d2})");
}
