//! Acceptance and property tests for the branch-and-bound combination
//! search: pruning may only remove provably infeasible evaluations, so
//! the retained feasible set — and therefore `SearchOutcome::digest` —
//! must be byte-identical to the exhaustive odometer walk, for every
//! worker count; and the skip accounting must cover the cross-product
//! exactly.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Constraints, Heuristic, Session};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;
use proptest::prelude::*;

/// Extra worker count for the suite: `CHOP_TEST_JOBS` (CI sets 4 so the
/// equivalence holds under real thread interleaving, not just serially).
fn extra_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Workload space for the equivalence property: random task graphs at
/// 2–3 partitions, with loose *and* tight performance/delay constraints
/// (tight constraints are the ones that arm the interval and delay
/// bounds — a loose-only sample space would leave them untested).
fn arb_workload() -> impl Strategy<Value = (u64, usize, f64, f64, RandomDfgParams)> {
    (
        any::<u64>(),
        2usize..4,
        prop_oneof![
            Just((60_000.0, 90_000.0)),
            Just((20_000.0, 30_000.0)),
            Just((8_000.0, 12_000.0))
        ],
        2usize..4,
        2usize..5,
        1usize..3,
        0u32..80,
    )
        .prop_map(|(seed, k, (perf, delay), layers, width, inputs, mul_percent)| {
            (
                seed,
                k,
                perf,
                delay,
                RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 },
            )
        })
}

fn session_for(dfg: chop_dfg::Dfg, k: usize, perf: f64, delay: f64) -> Session {
    let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
    let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
    Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(perf), Nanos::new(delay)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // On randomized partitionings, branch-and-bound produces the same
    // digest and feasible set as the exhaustive odometer walk over the
    // same level-1-pruned lists, at jobs 1/2/8 (and CHOP_TEST_JOBS when
    // set). Note `with_pruning(false)` is *not* the reference: the prune
    // switch also disables level-1 list pruning, which changes the
    // search space itself (the paper's §3.1 trade-off) — subtree
    // skipping must be invisible, level-1 pruning is allowed not to be.
    #[test]
    fn bnb_matches_naive_on_random_workloads(
        (seed, k, perf, delay, params) in arb_workload()
    ) {
        let dfg = random_layered(seed, params);
        let s = session_for(dfg, k, perf, delay);
        let reference = s
            .clone()
            .with_branch_and_bound(false)
            .with_jobs(1)
            .explore(Heuristic::Enumeration)
            .unwrap();
        for jobs in [1usize, 2, 8, extra_jobs()] {
            let bnb = s
                .clone()
                .with_jobs(jobs)
                .explore(Heuristic::Enumeration)
                .unwrap();
            prop_assert_eq!(
                &reference.digest(),
                &bnb.digest(),
                "exhaustive walk vs branch-and-bound at jobs={}",
                jobs
            );
            prop_assert_eq!(reference.feasible.len(), bnb.feasible.len());
            for (a, b) in reference.feasible.iter().zip(&bnb.feasible) {
                prop_assert_eq!(&a.selection, &b.selection);
                prop_assert_eq!(&a.system, &b.system);
            }
        }
    }

    // Skip accounting stays honest on random workloads: visited plus
    // skipped covers the whole cross-product.
    #[test]
    fn bnb_accounting_covers_the_cross_product(
        (seed, k, perf, delay, params) in arb_workload()
    ) {
        let dfg = random_layered(seed, params);
        let s = session_for(dfg, k, perf, delay);
        let o = s.explore(Heuristic::Enumeration).unwrap();
        let product: u64 = o.predictions.iter().map(|l| l.len() as u64).product();
        prop_assert_eq!(o.trials as u64 + o.trace.combinations_skipped, product);
    }
}

/// Regression: backtracking out of an exhausted row must restore that
/// position's delay weight to its optimistic minimum. A stale chosen
/// latency overestimates the delay lower bound at shallower depths and
/// prunes feasible subtrees — this workload (3 partitions, tight
/// constraints) caught exactly that.
#[test]
fn backtracking_restores_the_delay_bound_weights() {
    let params = RandomDfgParams { layers: 2, width: 4, inputs: 2, mul_percent: 16, bits: 16 };
    let dfg = random_layered(32, params);
    let s = session_for(dfg, 3, 8_000.0, 12_000.0);
    let naive = s.clone().with_branch_and_bound(false).explore(Heuristic::Enumeration).unwrap();
    let bnb = s.explore(Heuristic::Enumeration).unwrap();
    assert_eq!(naive.digest(), bnb.digest());
    assert_eq!(naive.feasible_trials, bnb.feasible_trials);
}

#[test]
fn trials_plus_skipped_equals_product_of_list_sizes() {
    let s = experiment1_session(&Exp1Config { partitions: 3, package: 1 }).unwrap();
    let o = s.explore(Heuristic::Enumeration).unwrap();
    let product: u64 = o.predictions.iter().map(|l| l.len() as u64).product();
    assert_eq!(o.trials as u64 + o.trace.combinations_skipped, product);
    assert!(o.trace.subtrees_skipped > 0, "the workload must exercise pruning");
}

/// The ISSUE's acceptance scenario: on the 3-partition experiment-1
/// workload, branch-and-bound drops evaluated combinations ≥ 5× versus
/// the exhaustive odometer while the digest is unchanged.
#[test]
fn bnb_cuts_evaluations_five_fold_on_experiment1() {
    let s = experiment1_session(&Exp1Config { partitions: 3, package: 1 }).unwrap();
    let bnb = s.explore(Heuristic::Enumeration).unwrap();
    let naive = s.clone().with_branch_and_bound(false).explore(Heuristic::Enumeration).unwrap();
    assert_eq!(naive.digest(), bnb.digest(), "pruning must not change results");
    assert!(
        bnb.trace.evaluations * 5 <= naive.trace.evaluations,
        "evaluations {} -> {} is less than a 5x cut",
        naive.trace.evaluations,
        bnb.trace.evaluations
    );
}

/// keep_all (Figure-7 dumps) forces the exhaustive walk even with
/// branch-and-bound requested: every point is recorded, nothing skipped.
#[test]
fn keep_all_still_walks_exhaustively() {
    let s = experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .with_pruning(false)
        .with_keep_all(true);
    let o = s.explore(Heuristic::Enumeration).unwrap();
    let product: usize = o.predictions.iter().map(|l| l.len()).product();
    assert_eq!(o.trials, product);
    assert_eq!(o.points.len(), product);
    assert_eq!(o.trace.combinations_skipped, 0);
    assert_eq!(o.trace.subtrees_skipped, 0);
}
