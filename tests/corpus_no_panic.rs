//! Adversarial-corpus harness: every spec under `tests/corpus/` must flow
//! through parse → partition → explore returning `Ok` or a typed error —
//! never a panic. New hostile inputs only need a `.cbs` file drop-in.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Duration;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Constraints, Heuristic, SearchBudget, Session};
use chop_dfg::parse::parse_dfg;
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

fn corpus_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the corpus rides with the
    // workspace-level tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Worker threads for the suite: `CHOP_TEST_JOBS` (CI sets 4 to shake
/// out races in the parallel engine), default 1.
fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

/// Drives one spec text through the full pipeline. Returns a stage label
/// on a typed failure; panics are the caller's to detect.
fn drive(text: &str) -> String {
    let dfg = match parse_dfg(text) {
        Ok(dfg) => dfg,
        Err(e) => return format!("parse error: {e}"),
    };
    for k in [1usize, 2] {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let partitioning =
            match PartitioningBuilder::new(dfg.clone(), chips).split_horizontal(k).build() {
                Ok(p) => p,
                Err(e) => return format!("partitioning error: {e}"),
            };
        let session = Session::new(
            partitioning,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).expect("valid clock"),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
        .with_budget(
            // Keep hostile inputs cheap: a short deadline and a trial cap
            // still exercise prediction, integration and feasibility.
            SearchBudget::default()
                .with_deadline(Duration::from_millis(500))
                .with_max_trials(2_000),
        )
        .with_jobs(test_jobs());
        for heuristic in [Heuristic::Enumeration, Heuristic::Iterative] {
            if let Err(e) = session.explore(heuristic) {
                return format!("explore error ({heuristic:?}, k={k}): {e}");
            }
        }
    }
    "ok".to_owned()
}

#[test]
fn corpus_never_panics() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "cbs"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 4, "corpus unexpectedly small: {entries:?}");

    let mut panicked = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        match catch_unwind(AssertUnwindSafe(|| drive(&text))) {
            Ok(disposition) => {
                eprintln!("{}: {disposition}", path.display());
            }
            Err(_) => panicked.push(path.clone()),
        }
    }
    assert!(panicked.is_empty(), "corpus specs caused panics: {panicked:?}");
}

#[test]
fn self_dependency_is_a_typed_parse_error() {
    let text = std::fs::read_to_string(corpus_dir().join("self_dependency.cbs")).unwrap();
    let e = parse_dfg(&text).unwrap_err();
    assert!(e.to_string().contains("undefined operand"), "got: {e}");
}

#[test]
fn zero_width_is_a_typed_parse_error() {
    let text = std::fs::read_to_string(corpus_dir().join("zero_width.cbs")).unwrap();
    let e = parse_dfg(&text).unwrap_err();
    assert!(e.to_string().contains("bad number"), "got: {e}");
}

#[test]
fn absurd_pins_spec_is_never_feasible() {
    let text = std::fs::read_to_string(corpus_dir().join("absurd_pins.cbs")).unwrap();
    let dfg = parse_dfg(&text).expect("absurd spec is syntactically valid");
    let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
    let Ok(partitioning) = PartitioningBuilder::new(dfg, chips).split_horizontal(2).build()
    else {
        return; // rejecting the partitioning outright is equally sound
    };
    let session = Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 10, 1).expect("valid clock"),
        ArchitectureStyle::single_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
    )
    .with_budget(SearchBudget::default().with_deadline(Duration::from_millis(500)))
    .with_jobs(test_jobs());
    if let Ok(outcome) = session.explore(Heuristic::Iterative) {
        assert!(
            outcome.feasible.is_empty(),
            "65536-bit datapaths cannot fit an 84-pin package"
        );
    }
}
