//! Golden results: the exact design points the reproduction produces for
//! the paper's tables. These pin the model — any change to the predictor,
//! integration overhead or heuristics that shifts a headline number shows
//! up here first.
//!
//! (The points are this reproduction's, not the paper's; EXPERIMENTS.md
//! records the comparison against the paper's numbers.)

use chop_core::prelude::experiments::{
    experiment1_session, experiment2_session, Exp1Config, Exp2Config,
};
use chop_core::prelude::{Heuristic, SearchOutcome};

/// (II cycles, delay cycles, clock ns rounded).
fn rows(o: &SearchOutcome) -> Vec<(u64, u64, u64)> {
    let mut v: Vec<(u64, u64, u64)> = o
        .feasible
        .iter()
        .map(|f| {
            (
                f.system.initiation_interval.value(),
                f.system.delay.value(),
                f.system.clock.likely().round() as u64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn table4_rows_are_stable() {
    let expect = |partitions: usize, package: usize, want: &[(u64, u64, u64)]| {
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let o = experiment1_session(&Exp1Config { partitions, package })
                .unwrap()
                .explore(h)
                .unwrap();
            assert_eq!(
                rows(&o),
                want,
                "exp1 partitions={partitions} package={package} heuristic={h}"
            );
        }
    };
    expect(1, 1, &[(50, 75, 306)]);
    expect(2, 1, &[(30, 79, 306)]);
    expect(2, 0, &[(30, 82, 306)]);
    expect(3, 1, &[(20, 81, 310)]);
}

#[test]
fn table6_rows_are_stable() {
    let expect = |partitions: usize, want: &[(u64, u64, u64)]| {
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let o = experiment2_session(&Exp2Config { partitions, package: 1 })
                .unwrap()
                .explore(h)
                .unwrap();
            assert_eq!(rows(&o), want, "exp2 partitions={partitions} heuristic={h}");
        }
    };
    expect(1, &[(42, 52, 379)]);
    expect(2, &[(20, 43, 367)]);
    expect(3, &[(16, 45, 364)]);
}

#[test]
fn table3_and_5_totals_are_stable() {
    let totals = |experiment: u8, partitions: usize| -> (usize, usize) {
        let session = match experiment {
            1 => experiment1_session(&Exp1Config { partitions, package: 1 }).unwrap(),
            _ => experiment2_session(&Exp2Config { partitions, package: 1 }).unwrap(),
        };
        let o = session.explore(Heuristic::Iterative).unwrap();
        (o.total_predictions(), o.feasible_predictions())
    };
    assert_eq!(totals(1, 1), (384, 36));
    assert_eq!(totals(1, 2), (486, 185));
    assert_eq!(totals(1, 3), (210, 100));
    assert_eq!(totals(2, 1), (576, 12));
    assert_eq!(totals(2, 2), (621, 225));
    assert_eq!(totals(2, 3), (279, 134));
}
