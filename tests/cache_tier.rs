//! Concurrent prediction-cache tier: lock-striping properties, snapshot
//! persistence, and the headline invariant that exploration digests are
//! byte-identical whether the cache is cold, warm, snapshot-restored,
//! disabled, or sliced into any number of shards.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{
    load_snapshot, recommended_shards, write_snapshot, Constraints, Heuristic, PredictionCache,
    Session,
};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

/// Extra worker count for the suite: `CHOP_TEST_JOBS` (CI sets 4 so the
/// striped cache really sees concurrent engine traffic).
fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chop-cache-tier-{tag}-{}.snap", std::process::id()))
}

fn session_for(seed: u64, k: usize) -> Session {
    let dfg = random_layered(
        seed,
        RandomDfgParams { layers: 4, width: 4, inputs: 3, mul_percent: 40, bits: 16 },
    );
    let k = k.min(dfg.len());
    let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
    let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
    Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    )
}

/// A cache populated by a real exploration, plus the digest that run
/// produced (the reference for every warm/restored comparison).
fn warmed_cache(jobs: usize) -> (Arc<PredictionCache>, String) {
    let session = session_for(7, 3).with_jobs(jobs);
    let outcome = session.explore(Heuristic::Iterative).expect("warming explore");
    assert!(!session.shared_cache().is_empty(), "the warming run must populate the cache");
    (session.shared_cache(), outcome.digest())
}

/// The headline invariant: at jobs 1 / 2 / 8 (and `CHOP_TEST_JOBS`),
/// with the cache cold, warm, snapshot-restored, single-sharded, wide,
/// or disabled, the exploration digest never changes.
#[test]
fn digests_are_identical_cold_warm_restored_at_any_jobs_and_shards() {
    let reference = session_for(7, 3)
        .with_jobs(1)
        .explore(Heuristic::Iterative)
        .expect("reference explore")
        .digest();

    let path = snapshot_path("digests");
    for jobs in [1usize, 2, 8, test_jobs()] {
        // Cold, at several stripe widths (1 shard = the mutex'd
        // baseline layout).
        for shards in [1usize, 4, recommended_shards(jobs)] {
            let cold = session_for(7, 3).with_jobs(jobs).with_cache_config(256, shards);
            assert_eq!(
                cold.explore(Heuristic::Iterative).expect("cold explore").digest(),
                reference,
                "cold digest diverged at jobs={jobs} shards={shards}"
            );
            // Warm: the same session again, now fully cached.
            let warm = cold.explore(Heuristic::Iterative).expect("warm explore");
            assert_eq!(
                warm.digest(),
                reference,
                "warm digest diverged at jobs={jobs} shards={shards}"
            );
            assert_eq!(
                warm.trace.predictor_calls, 0,
                "a warm re-explore must be served entirely from cache"
            );
        }

        // Snapshot-restored: persist a warmed cache, load it into a
        // fresh one (different stripe width), attach to a new session.
        let (cache, _) = warmed_cache(jobs);
        write_snapshot(&path, &cache).expect("write snapshot");
        let restored = Arc::new(PredictionCache::with_config(256, 2));
        let loaded = load_snapshot(&path, &restored).expect("load snapshot");
        assert_eq!(loaded.entries, cache.len(), "every entry must survive the round trip");
        assert!(!loaded.truncated);
        let outcome = session_for(7, 3)
            .with_jobs(jobs)
            .with_shared_cache(restored)
            .explore(Heuristic::Iterative)
            .expect("restored explore");
        assert_eq!(
            outcome.digest(),
            reference,
            "snapshot-restored digest diverged at jobs={jobs}"
        );
        assert_eq!(
            outcome.trace.predictor_calls, 0,
            "a snapshot-restored explore must be served entirely from cache"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Zero capacity is the documented "cache disabled" mode: exploration
/// still works and produces the reference digest, and the cache stays
/// empty through it all.
#[test]
fn disabled_cache_changes_no_digest() {
    let reference =
        session_for(11, 2).with_jobs(1).explore(Heuristic::Iterative).unwrap().digest();
    for jobs in [1, test_jobs()] {
        let session = session_for(11, 2).with_jobs(jobs).with_cache_capacity(0);
        let outcome = session.explore(Heuristic::Iterative).expect("disabled explore");
        assert_eq!(
            outcome.digest(),
            reference,
            "disabled-cache digest diverged at jobs={jobs}"
        );
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 0, "a disabled cache must never hold entries");
        assert_eq!(stats.hits, 0);
        // Re-exploring re-predicts everything — nothing was memoized.
        let again = session.explore(Heuristic::Iterative).expect("second disabled explore");
        assert_eq!(again.digest(), reference);
        assert!(again.trace.predictor_calls > 0, "no cache means no warm re-explore");
    }
}

/// N threads hammer one striped cache with a mixed get/insert workload:
/// no committed entry is ever lost, and the aggregated counters
/// reconcile exactly (hits + misses = lookups issued).
#[test]
fn concurrent_mixed_workload_never_loses_committed_entries() {
    // Real payloads, harvested from a real run — the cache stores
    // `Arc<[PredictedDesign]>`, which has no test constructor.
    let (warmed, _) = warmed_cache(1);
    let (designs, stats) =
        warmed.export().into_iter().next().map(|(_, d, s)| (d, s)).expect("harvested entry");

    const THREADS: u64 = 8;
    const KEYS_PER_THREAD: u64 = 200;
    // Capacity comfortably above the total key count so nothing is
    // evicted — "committed entries are never lost" is only meaningful
    // without LRU pressure.
    let cache = Arc::new(PredictionCache::with_config(8_192, 16));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let designs = Arc::clone(&designs);
        handles.push(thread::spawn(move || {
            let mut lookups = 0u64;
            for i in 0..KEYS_PER_THREAD {
                let key = t * KEYS_PER_THREAD + i;
                cache.insert(key, Arc::clone(&designs), stats);
                // Mixed traffic: read back my own writes (must hit) and
                // probe a neighbor's range (may or may not be there yet).
                assert!(cache.get(key).is_some(), "own insert lost (key {key})");
                let probe = ((t + 1) % THREADS) * KEYS_PER_THREAD + i;
                let _ = cache.get(probe);
                lookups += 2;
            }
            lookups
        }));
    }
    let lookups: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();

    // Every committed key is still present afterwards.
    for key in 0..THREADS * KEYS_PER_THREAD {
        assert!(cache.get(key).is_some(), "committed key {key} lost after the storm");
    }
    let total = cache.stats();
    assert_eq!(total.evictions, 0, "capacity was sized so nothing evicts");
    assert_eq!(total.entries, THREADS * KEYS_PER_THREAD);
    assert_eq!(cache.len() as u64, THREADS * KEYS_PER_THREAD);
    // The final verification sweep hit every key once; counters must
    // reconcile exactly with the lookups the threads issued plus it.
    assert_eq!(
        total.hits + total.misses,
        lookups + THREADS * KEYS_PER_THREAD,
        "hits + misses must equal lookups issued"
    );
    // Occupancy sums to the entry count and is actually striped.
    let occupancy = cache.shard_occupancy();
    assert_eq!(occupancy.iter().sum::<u64>(), THREADS * KEYS_PER_THREAD);
    assert!(
        occupancy.iter().filter(|&&n| n > 0).count() > 1,
        "1600 keys must spread over more than one shard: {occupancy:?}"
    );
}

/// Snapshot round trip under damage: write a real warmed cache, tear
/// off the file's tail, and the loader must recover every complete
/// record — and the recovered cache must still explore to the
/// reference digest (the torn entry is simply re-predicted).
#[test]
fn torn_snapshot_tail_recovers_all_complete_records() {
    let (cache, reference) = warmed_cache(1);
    let total = cache.len();
    let path = snapshot_path("torn");
    write_snapshot(&path, &cache).expect("write snapshot");

    // Tear mid-record: drop the last 5 bytes.
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&path, &bytes).expect("tear snapshot");

    let restored = Arc::new(PredictionCache::with_config(256, 4));
    let loaded = load_snapshot(&path, &restored).expect("torn load must not error");
    assert!(loaded.truncated, "the torn tail must be reported");
    assert_eq!(loaded.entries, total - 1, "every complete record must be recovered");

    let outcome = session_for(7, 3)
        .with_shared_cache(restored)
        .explore(Heuristic::Iterative)
        .expect("explore after torn restore");
    assert_eq!(outcome.digest(), reference, "a torn restore must not change results");
    let _ = std::fs::remove_file(&path);
}
