//! Cross-crate property tests: invariants of the whole CHOP pipeline on
//! randomized workloads and partitionings.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::transfer::{pin_budgets, transfer_specs};
use chop_core::prelude::{Constraints, Heuristic, Session};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = (u64, RandomDfgParams)> {
    (any::<u64>(), 2usize..5, 2usize..6, 1usize..4, 0u32..80).prop_map(
        |(seed, layers, width, inputs, mul_percent)| {
            (seed, RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 })
        },
    )
}

fn session_for(dfg: chop_dfg::Dfg, k: usize) -> Session {
    let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
    let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
    Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn feasible_results_respect_all_hard_constraints(
        (seed, params) in arb_workload(),
        k in 1usize..3,
    ) {
        let dfg = random_layered(seed, params);
        let k = k.min(dfg.len());
        let s = session_for(dfg, k);
        let o = s.explore(Heuristic::Iterative).unwrap();
        for f in &o.feasible {
            prop_assert!(f.system.verdict.feasible);
            // Performance and delay in ns respect the constraints at their
            // most-likely values.
            prop_assert!(f.system.initiation_ns.likely() <= 60_000.0 + 1e-6);
            // Delay threshold is probabilistic (80 %), so check the likely
            // value only against a generous bound.
            prop_assert!(f.system.delay_ns.lo() <= 90_000.0 + 1e-6);
            // Chip areas fit their packages at the likely value.
            for (i, (_, pkg)) in s.partitioning().chips().iter().enumerate() {
                prop_assert!(
                    f.system.chip_areas[i].likely() <= pkg.usable_area().value() + 1e-6
                );
            }
        }
    }

    #[test]
    fn transfer_conservation(
        (seed, params) in arb_workload(),
        k in 2usize..4,
    ) {
        let dfg = random_layered(seed, params);
        let k = k.min(dfg.len());
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg.clone(), chips)
            .split_horizontal(k)
            .build()
            .unwrap();
        let specs = transfer_specs(&p);
        // External input bits equal the sum of input-node widths.
        let graph_inputs: u64 = dfg
            .inputs()
            .map(|id| dfg.node(id).width().value())
            .sum();
        let spec_inputs: u64 = specs
            .iter()
            .filter(|t| t.src == chop_core::transfer::Endpoint::External)
            .map(|t| t.bits.value())
            .sum();
        prop_assert_eq!(graph_inputs, spec_inputs);
        // Pin budgets never exceed the package.
        for b in pin_budgets(&p, &specs) {
            prop_assert!(b.control + b.memory_control + b.data <= b.total);
        }
    }

    #[test]
    fn reported_designs_reevaluate_identically(
        (seed, params) in arb_workload(),
    ) {
        // Neither heuristic dominates the other (the paper: "neither of
        // the heuristics can be claimed to be better"); what must hold is
        // that every reported feasible design re-evaluates to the same
        // feasible prediction through the integration context directly.
        use chop_bad::PredictorParams;
        use chop_core::prelude::{FeasibilityCriteria, IntegrationContext};
        use chop_stat::units::Cycles;

        let dfg = random_layered(seed, params);
        let s = session_for(dfg, 1);
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let o = s.explore(h).unwrap();
            let ctx = IntegrationContext::new(
                s.partitioning(),
                s.library(),
                *s.clocks(),
                PredictorParams::default(),
                FeasibilityCriteria::paper_defaults(),
                *s.constraints(),
            );
            for f in &o.feasible {
                let sel = o.selected_designs(f);
                let again = ctx
                    .evaluate(&sel, Cycles::new(f.system.initiation_interval.value()))
                    .unwrap();
                prop_assert!(again.verdict.feasible);
                prop_assert_eq!(again.delay.value(), f.system.delay.value());
                prop_assert!((again.clock.likely() - f.system.clock.likely()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pruning_searches_a_subset(
        (seed, params) in arb_workload(),
    ) {
        let dfg = random_layered(seed, params);
        let s = session_for(dfg, 1);
        let pruned = s.explore(Heuristic::Enumeration).unwrap();
        let unpruned = s
            .clone()
            .with_pruning(false)
            .explore(Heuristic::Enumeration)
            .unwrap();
        // Pruning explores a subset: never more trials, never more
        // feasible hits, and anything it finds can be no better than the
        // exhaustive optimum (the pruned optimum may be slightly worse —
        // level-1 dominance ignores clock-overhead differences).
        prop_assert!(pruned.trials <= unpruned.trials);
        prop_assert!(pruned.feasible_trials <= unpruned.feasible_trials);
        let best = |o: &chop_core::SearchOutcome| {
            o.feasible
                .iter()
                .map(|f| f.system.initiation_ns.likely())
                .fold(f64::INFINITY, f64::min)
        };
        if !pruned.feasible.is_empty() {
            prop_assert!(!unpruned.feasible.is_empty());
            prop_assert!(best(&pruned) >= best(&unpruned) - 1e-6);
        }
    }
}
