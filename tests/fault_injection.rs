//! Fault-injection harness tests (require `--features fault-inject`):
//! a panicking predictor is contained to a typed error naming the
//! offending partition; corrupted estimates never panic; injected
//! latency trips the deadline inside the prediction phase.

#![cfg(feature = "fault-inject")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use chop_bad::PredictError;
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::{ChopError, Completion, FaultPlan, Heuristic, SearchBudget, Session};

/// Worker threads for the suite: `CHOP_TEST_JOBS` (CI sets 4 so fault
/// containment is also exercised across scoped workers), default 1.
fn test_jobs() -> usize {
    std::env::var("CHOP_TEST_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

fn session() -> Session {
    experiment1_session(&Exp1Config { partitions: 2, package: 1 })
        .unwrap()
        .with_jobs(test_jobs())
}

#[test]
fn panicking_predictor_is_contained_to_its_partition() {
    for target in [0usize, 1] {
        let s = session().with_fault_plan(FaultPlan::none().panic_on(target));
        let err = s
            .explore(Heuristic::Enumeration)
            .expect_err("scripted panic must surface as an error");
        match err {
            ChopError::Predict { partition, source: PredictError::Panicked(msg) } => {
                assert_eq!(
                    partition, target,
                    "panic on partition {target} must be attributed to it"
                );
                assert!(msg.contains(&format!("partition {target}")), "got {msg:?}");
            }
            other => panic!("expected a Predict/Panicked error, got {other}"),
        }
    }
}

#[test]
fn panic_on_later_partition_means_earlier_ones_predicted_fine() {
    // If partition 1 panics, partition 0 must have been served first: the
    // error is attributed to 1, proving the failure did not leak backward.
    let s = session().with_fault_plan(FaultPlan::none().panic_on(1));
    match s.explore(Heuristic::Iterative) {
        Err(ChopError::Predict { partition, .. }) => assert_eq!(partition, 1),
        other => panic!("expected Predict error for partition 1, got {other:?}"),
    }
}

#[test]
fn panic_never_escapes_explore() {
    let s = session().with_fault_plan(FaultPlan::none().panic_on(0));
    let outcome = catch_unwind(AssertUnwindSafe(|| s.explore(Heuristic::Enumeration)));
    assert!(outcome.is_ok(), "explore must never propagate the injected panic");
}

#[test]
fn nan_estimates_are_contained_as_typed_errors() {
    // `Estimate` structurally rejects NaN, so the poison trips a numeric
    // invariant inside the containment guard: the engine must report a
    // typed Predict error for the poisoned partition, never abort.
    for heuristic in [Heuristic::Enumeration, Heuristic::Iterative] {
        let s = session().with_fault_plan(FaultPlan::none().nan_on(0));
        let run = catch_unwind(AssertUnwindSafe(|| s.explore(heuristic)));
        let result = run.expect("NaN estimates must never escape as a panic");
        match result {
            Err(ChopError::Predict { partition, source: PredictError::Panicked(_) }) => {
                assert_eq!(partition, 0);
            }
            other => panic!("expected a contained Predict error, got {other:?}"),
        }
    }
}

#[test]
fn absurd_estimates_flow_through_without_panicking() {
    let s = session().with_fault_plan(FaultPlan::none().absurd_on(1));
    let run = catch_unwind(AssertUnwindSafe(|| s.explore(Heuristic::Enumeration)));
    let result = run.expect("absurd estimates must not panic the engine");
    if let Ok(outcome) = result {
        assert!(
            outcome.feasible.is_empty(),
            "a 1e30 area overflows every chip, so nothing is feasible"
        );
    }
}

#[test]
fn injected_latency_trips_the_deadline_during_prediction() {
    let s = session()
        .with_fault_plan(FaultPlan::none().with_predict_latency(Duration::from_millis(30)))
        .with_budget(SearchBudget::unlimited().with_deadline(Duration::from_millis(40)));
    let outcome = s.explore(Heuristic::Enumeration).unwrap();
    // Two partitions at 30 ms each blow a 40 ms deadline between
    // predictions: the run is truncated with zero search trials.
    assert_eq!(outcome.completion, Completion::TruncatedDeadline);
    assert_eq!(outcome.trials, 0);
    assert!(outcome.feasible.is_empty());
}

#[test]
fn faults_on_absent_partitions_are_inert() {
    let s = session().with_fault_plan(FaultPlan::none().panic_on(99).nan_on(98));
    let outcome = s.explore(Heuristic::Enumeration).unwrap();
    assert_eq!(outcome.completion, Completion::Complete);
}
