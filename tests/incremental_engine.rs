//! Engine-level properties of the staged exploration pipeline: the
//! dominance relation is a strict partial order, level-2 pruning agrees
//! with it, outcomes are byte-identical for any worker count, and
//! repartitioning re-predicts only the partitions that changed.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{
    Constraints, Heuristic, PartitionId, Session, SystemPrediction, Verdict,
};
use chop_dfg::benchmarks::{random_layered, RandomDfgParams};
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::{Cycles, Nanos};
use chop_stat::Estimate;
use proptest::prelude::*;

/// A synthetic prediction whose dominance behavior is fully determined
/// by the two objective values (II, delay) in ns.
fn system(ii: f64, delay: f64) -> SystemPrediction {
    SystemPrediction {
        initiation_interval: Cycles::new(ii as u64),
        delay: Cycles::new(delay as u64),
        clock: Estimate::exact(1.0),
        initiation_ns: Estimate::exact(ii),
        delay_ns: Estimate::exact(delay),
        chip_areas: vec![],
        power: Estimate::exact(0.0),
        transfer_modules: vec![],
        verdict: Verdict::feasible(),
    }
}

/// Integer-derived objectives: exact float comparisons and frequent
/// ties, so the antisymmetry and irreflexivity cases actually bite.
fn arb_objectives() -> impl Strategy<Value = (f64, f64)> {
    (0u32..50, 0u32..50).prop_map(|(ii, d)| (f64::from(ii), f64::from(d)))
}

fn arb_workload() -> impl Strategy<Value = (u64, RandomDfgParams)> {
    (any::<u64>(), 2usize..4, 2usize..5, 1usize..3, 0u32..80).prop_map(
        |(seed, layers, width, inputs, mul_percent)| {
            (seed, RandomDfgParams { layers, width, inputs, mul_percent, bits: 16 })
        },
    )
}

fn session_for(dfg: chop_dfg::Dfg, k: usize) -> Session {
    let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
    let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
    Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dominates_is_irreflexive((ii, d) in arb_objectives()) {
        let a = system(ii, d);
        prop_assert!(!a.dominates(&a));
    }

    #[test]
    fn dominates_is_antisymmetric(
        (ii_a, d_a) in arb_objectives(),
        (ii_b, d_b) in arb_objectives(),
    ) {
        let a = system(ii_a, d_a);
        let b = system(ii_b, d_b);
        prop_assert!(!(a.dominates(&b) && b.dominates(&a)));
    }

    #[test]
    fn dominates_is_transitive(
        (ii_a, d_a) in arb_objectives(),
        (ii_b, d_b) in arb_objectives(),
        (ii_c, d_c) in arb_objectives(),
    ) {
        let a = system(ii_a, d_a);
        let b = system(ii_b, d_b);
        let c = system(ii_c, d_c);
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Level-2 pruning reports only non-inferior designs, so the retained
    // set must agree with `dominates`: no reported design dominates
    // another reported design.
    #[test]
    fn level2_pruning_agrees_with_dominates((seed, params) in arb_workload()) {
        let dfg = random_layered(seed, params);
        let s = session_for(dfg, 1);
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let o = s.explore(h).unwrap();
            for (i, a) in o.feasible.iter().enumerate() {
                for (j, b) in o.feasible.iter().enumerate() {
                    if i != j {
                        prop_assert!(
                            !a.system.dominates(&b.system),
                            "{h:?}: reported design {i} dominates reported design {j}"
                        );
                    }
                }
            }
        }
    }

    // The batched engine must not let worker count leak into results:
    // candidate generation and result folding are single-threaded and
    // canonical, only scoring fans out.
    #[test]
    fn random_workloads_explore_identically_across_jobs((seed, params) in arb_workload()) {
        let dfg = random_layered(seed, params);
        let s = session_for(dfg, 2);
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let serial = s.clone().with_jobs(1).explore(h).unwrap().digest();
            let threaded = s.clone().with_jobs(4).explore(h).unwrap().digest();
            prop_assert_eq!(&serial, &threaded, "{:?} differs between 1 and 4 jobs", h);
        }
    }
}

#[test]
fn outcome_digest_is_identical_for_jobs_1_2_and_8() {
    for h in [Heuristic::Enumeration, Heuristic::Iterative] {
        let base = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
        let digests: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| base.clone().with_jobs(jobs).explore(h).unwrap().digest())
            .collect();
        assert_eq!(digests[0], digests[1], "{h:?}: jobs=1 vs jobs=2");
        assert_eq!(digests[0], digests[2], "{h:?}: jobs=1 vs jobs=8");
    }
}

/// The ISSUE's acceptance scenario: explore, move one node between two
/// partitions, re-explore. Only the two touched partitions may reach the
/// predictor; the untouched one must be served from the cache.
#[test]
fn repartition_re_predicts_only_changed_partitions() {
    let s = experiment1_session(&Exp1Config { partitions: 3, package: 1 }).unwrap();
    let o = s.explore(Heuristic::Iterative).unwrap();
    assert_eq!(o.trace.predictor_calls, 3, "cold run predicts every partition");
    assert_eq!(o.cache.misses, 3);
    assert_eq!(o.cache.hits, 0);

    // Move the first structurally movable node from P1 to P2.
    let mut moved = None;
    for node in s.partitioning().grouping().members(0) {
        if let Ok(m) = s.repartition(node, PartitionId::new(1)) {
            moved = Some(m);
            break;
        }
    }
    let moved = moved.expect("some node is movable");
    let o2 = moved.explore(Heuristic::Iterative).unwrap();
    assert_eq!(
        o2.trace.predictor_calls, 2,
        "only the source and destination partitions re-predict"
    );
    assert_eq!(o2.cache.hits, 1, "the untouched partition is served from the cache");
    assert_eq!(o2.cache.misses, 2);
}

#[test]
fn identical_re_explore_is_fully_cached() {
    let s = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let first = s.explore(Heuristic::Enumeration).unwrap();
    let second = s.explore(Heuristic::Enumeration).unwrap();
    assert_eq!(second.trace.predictor_calls, 0);
    assert_eq!(second.cache.hits, 2);
    assert_eq!(first.digest(), second.digest(), "caching must not change results");
}
