//! Budget and degradation properties of the resilient exploration engine:
//! deadlines are honored within one trial's latency, count caps truncate,
//! and E→I degradation triggers exactly at the configured threshold.

use std::time::{Duration, Instant};

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::experiments::{experiment1_session, Exp1Config};
use chop_core::prelude::spec::PartitioningBuilder;
use chop_core::prelude::{Completion, Constraints, Heuristic, SearchBudget, Session};
use chop_dfg::benchmarks;
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;
use proptest::prelude::*;

/// A session over the AR lattice filter split `k` ways, with pruning
/// disabled so the enumeration space stays large.
fn wide_session(k: usize) -> Session {
    let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
    let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips)
        .split_horizontal(k)
        .build()
        .unwrap();
    Session::new(
        p,
        table1_library(),
        ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
        ArchitectureStyle::single_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
    )
    .with_pruning(false)
}

fn combination_count(session: &Session) -> u128 {
    let (lists, _) = session.predict_partitions().unwrap();
    lists.iter().try_fold(1u128, |acc, l| acc.checked_mul(l.len() as u128)).unwrap_or(u128::MAX)
}

/// One calibration run bounding the cost of "one more trial" plus the
/// prediction phase — the granularity at which the deadline is polled.
fn calibration_cost(session: &Session) -> Duration {
    let start = Instant::now();
    let outcome = session
        .clone()
        .with_budget(SearchBudget::unlimited().with_max_trials(1))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(outcome.trials <= 1);
    start.elapsed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The engine never overruns a deadline by more than roughly one
    // trial's latency (plus the prediction sweep and scheduler jitter).
    #[test]
    fn deadline_never_overruns_by_more_than_one_trial(deadline_ms in 1u64..40) {
        let session = wide_session(3);
        let slack = calibration_cost(&session) + Duration::from_millis(100);
        let budget = SearchBudget::unlimited()
            .with_deadline(Duration::from_millis(deadline_ms))
            .without_degradation();
        let start = Instant::now();
        let outcome = session
            .with_budget(budget)
            .explore(Heuristic::Enumeration)
            .unwrap();
        let took = start.elapsed();
        let limit = Duration::from_millis(deadline_ms) + slack;
        if took > limit {
            return Err(format!(
                "explore took {took:?}, budget {deadline_ms} ms + slack {slack:?}"
            ));
        }
        // A truncated run is still a usable partial outcome.
        if outcome.completion.is_truncated() {
            assert!(outcome.trials > 0 || outcome.feasible.is_empty());
        }
    }
}

/// Acceptance: a 50 ms deadline on a > 10^6-combination space comes back
/// as a *partial outcome*, not an error, tagged truncated or degraded.
#[test]
fn huge_space_under_50ms_deadline_returns_partial_outcome() {
    let mut chosen = None;
    for k in [3, 4, 5, 6, 8] {
        let s = wide_session(k);
        let combos = combination_count(&s);
        if combos > 1_000_000 {
            chosen = Some((s, combos));
            break;
        }
    }
    let (session, combos) = chosen.expect("some split exceeds 10^6 combinations");
    assert!(combos > 1_000_000, "space has {combos} combinations");
    let outcome = session
        .with_budget(SearchBudget::default().with_deadline(Duration::from_millis(50)))
        .explore(Heuristic::Enumeration)
        .expect("budget trips are partial outcomes, not errors");
    assert!(
        matches!(
            outcome.completion,
            Completion::TruncatedDeadline | Completion::DegradedToIterative
        ),
        "expected truncation or degradation, got {:?}",
        outcome.completion
    );
}

#[test]
fn zero_deadline_truncates_before_any_trial() {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let outcome = session
        .with_budget(SearchBudget::unlimited().with_deadline(Duration::ZERO))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert_eq!(outcome.completion, Completion::TruncatedDeadline);
    assert_eq!(outcome.trials, 0);
    assert!(outcome.feasible.is_empty());
}

#[test]
fn max_trials_caps_combinations_examined() {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let full = session.explore(Heuristic::Enumeration).unwrap();
    assert!(full.trials > 3, "need a non-trivial space for this test");
    let capped = session
        .clone()
        .with_budget(SearchBudget::unlimited().with_max_trials(3))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert_eq!(capped.completion, Completion::TruncatedTrials);
    assert_eq!(capped.trials, 3);
}

#[test]
fn max_points_caps_retained_designs() {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let capped = session
        .with_keep_all(true)
        .with_budget(SearchBudget::unlimited().with_max_points(2))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert_eq!(capped.completion, Completion::TruncatedTrials);
    assert!(capped.points.len() + capped.feasible.len() <= 3);
}

/// Degradation triggers *exactly* at the threshold: a threshold equal to
/// the combination count keeps heuristic E; one below it switches to I.
#[test]
fn degradation_triggers_exactly_at_threshold() {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let combos = combination_count(&session);
    assert!(combos > 1, "need at least two combinations");

    let at = session
        .clone()
        .with_budget(SearchBudget::unlimited().with_degrade_threshold(combos))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(!at.degraded, "threshold == combinations must not degrade");
    assert_eq!(at.heuristic, Heuristic::Enumeration);
    assert_eq!(at.completion, Completion::Complete);

    let below = session
        .clone()
        .with_budget(SearchBudget::unlimited().with_degrade_threshold(combos - 1))
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert!(below.degraded, "threshold < combinations must degrade");
    assert_eq!(below.heuristic, Heuristic::Iterative);
    assert_eq!(below.completion, Completion::DegradedToIterative);

    // Degradation never applies to an explicit heuristic-I request.
    let iterative = session
        .with_budget(SearchBudget::unlimited().with_degrade_threshold(1))
        .explore(Heuristic::Iterative)
        .unwrap();
    assert!(!iterative.degraded);
    assert_eq!(iterative.completion, Completion::Complete);
}

#[test]
fn unlimited_budget_is_bit_identical_to_default_run() {
    let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
    let plain = session.explore(Heuristic::Enumeration).unwrap();
    let budgeted = session
        .clone()
        .with_budget(SearchBudget::unlimited())
        .explore(Heuristic::Enumeration)
        .unwrap();
    assert_eq!(plain.trials, budgeted.trials);
    assert_eq!(plain.feasible.len(), budgeted.feasible.len());
    assert_eq!(plain.completion, Completion::Complete);
    assert_eq!(budgeted.completion, Completion::Complete);
}
