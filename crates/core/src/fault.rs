//! Fault injection for robustness testing (compiled only with the
//! `fault-inject` cargo feature).
//!
//! A [`FaultPlan`] attached to a [`Session`](crate::Session) sabotages the
//! per-partition BAD prediction step in controlled ways so tests can prove
//! the exploration engine contains failures:
//!
//! * a **panicking** partition must surface as
//!   [`ChopError::Predict`](crate::ChopError::Predict) for that partition
//!   only, never as a process abort;
//! * **NaN** estimates are structurally rejected by the finiteness
//!   invariant of [`chop_stat::Estimate`]; the injection proves that
//!   rejection is *contained* as a typed error for the poisoned partition,
//!   not a process abort;
//! * **absurd** (finite but impossible) estimates must flow through
//!   pruning and feasibility analysis without panicking — they simply
//!   never become feasible;
//! * injected **latency** lets deadline tests trip the budget
//!   deterministically inside the prediction phase.

use std::time::Duration;

use chop_bad::PredictedDesign;
use chop_stat::Estimate;

/// A scripted set of prediction faults, keyed by partition index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic inside the predictor for this partition.
    pub panic_partition: Option<usize>,
    /// Replace this partition's area estimates with NaN.
    pub nan_partition: Option<usize>,
    /// Replace this partition's area estimates with an absurdly large
    /// value (overflows any chip).
    pub absurd_partition: Option<usize>,
    /// Sleep this long before predicting each partition.
    pub predict_latency: Option<Duration>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Panic while predicting partition `partition`.
    #[must_use]
    pub fn panic_on(mut self, partition: usize) -> Self {
        self.panic_partition = Some(partition);
        self
    }

    /// Poison partition `partition`'s area estimates with NaN.
    ///
    /// [`chop_stat::Estimate`] refuses non-finite values, so this fault
    /// manifests as a panic *inside* the engine's containment guard and
    /// surfaces as a typed `Predict` error for this partition.
    #[must_use]
    pub fn nan_on(mut self, partition: usize) -> Self {
        self.nan_partition = Some(partition);
        self
    }

    /// Poison partition `partition`'s area estimates with an absurd value.
    #[must_use]
    pub fn absurd_on(mut self, partition: usize) -> Self {
        self.absurd_partition = Some(partition);
        self
    }

    /// Sleep `latency` before every partition prediction.
    #[must_use]
    pub fn with_predict_latency(mut self, latency: Duration) -> Self {
        self.predict_latency = Some(latency);
        self
    }

    /// Runs the pre-prediction faults for `partition`: the latency sleep,
    /// then the scripted panic. Called *inside* the `catch_unwind` guard so
    /// the panic exercises real containment.
    ///
    /// # Panics
    ///
    /// Panics (by design) when `partition` is the scripted panic target.
    pub fn before_predict(&self, partition: usize) {
        if let Some(latency) = self.predict_latency {
            std::thread::sleep(latency);
        }
        if self.panic_partition == Some(partition) {
            panic!("injected fault: predictor panic for partition {partition}");
        }
    }

    /// Corrupts the predicted designs of `partition` per the plan.
    pub fn corrupt(&self, partition: usize, designs: &mut [PredictedDesign]) {
        let poison = if self.nan_partition == Some(partition) {
            f64::NAN
        } else if self.absurd_partition == Some(partition) {
            1.0e30
        } else {
            return;
        };
        for d in designs.iter_mut() {
            *d = PredictedDesign::new(
                d.style(),
                d.module_set().clone(),
                d.allocation().clone(),
                d.initiation_interval(),
                d.latency(),
                Estimate::exact(poison),
                d.clock_overhead(),
                d.power(),
                d.detail().clone(),
                d.memory_bandwidth().clone(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        plan.before_predict(0);
        let mut designs = Vec::new();
        plan.corrupt(0, &mut designs);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn scripted_panic_fires_on_target_partition() {
        FaultPlan::none().panic_on(2).before_predict(2);
    }

    #[test]
    fn scripted_panic_spares_other_partitions() {
        FaultPlan::none().panic_on(2).before_predict(1);
    }
}
