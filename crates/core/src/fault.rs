//! Fault injection for robustness testing (compiled only with the
//! `fault-inject` cargo feature).
//!
//! A [`FaultPlan`] attached to a [`Session`](crate::Session) sabotages the
//! per-partition BAD prediction step in controlled ways so tests can prove
//! the exploration engine contains failures:
//!
//! * a **panicking** partition must surface as
//!   [`ChopError::Predict`](crate::ChopError::Predict) for that partition
//!   only, never as a process abort;
//! * **NaN** estimates are structurally rejected by the finiteness
//!   invariant of [`chop_stat::Estimate`]; the injection proves that
//!   rejection is *contained* as a typed error for the poisoned partition,
//!   not a process abort;
//! * **absurd** (finite but impossible) estimates must flow through
//!   pruning and feasibility analysis without panicking — they simply
//!   never become feasible;
//! * injected **latency** lets deadline tests trip the budget
//!   deterministically inside the prediction phase.

use std::time::Duration;

use chop_bad::PredictedDesign;
use chop_stat::Estimate;

/// A scripted set of prediction faults, keyed by partition index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic inside the predictor for this partition.
    pub panic_partition: Option<usize>,
    /// Replace this partition's area estimates with NaN.
    pub nan_partition: Option<usize>,
    /// Replace this partition's area estimates with an absurdly large
    /// value (overflows any chip).
    pub absurd_partition: Option<usize>,
    /// Sleep this long before predicting each partition.
    pub predict_latency: Option<Duration>,
}

impl FaultPlan {
    /// A plan injecting no faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Panic while predicting partition `partition`.
    #[must_use]
    pub fn panic_on(mut self, partition: usize) -> Self {
        self.panic_partition = Some(partition);
        self
    }

    /// Poison partition `partition`'s area estimates with NaN.
    ///
    /// [`chop_stat::Estimate`] refuses non-finite values, so this fault
    /// manifests as a panic *inside* the engine's containment guard and
    /// surfaces as a typed `Predict` error for this partition.
    #[must_use]
    pub fn nan_on(mut self, partition: usize) -> Self {
        self.nan_partition = Some(partition);
        self
    }

    /// Poison partition `partition`'s area estimates with an absurd value.
    #[must_use]
    pub fn absurd_on(mut self, partition: usize) -> Self {
        self.absurd_partition = Some(partition);
        self
    }

    /// Sleep `latency` before every partition prediction.
    #[must_use]
    pub fn with_predict_latency(mut self, latency: Duration) -> Self {
        self.predict_latency = Some(latency);
        self
    }

    /// Runs the pre-prediction faults for `partition`: the latency sleep,
    /// then the scripted panic. Called *inside* the `catch_unwind` guard so
    /// the panic exercises real containment.
    ///
    /// # Panics
    ///
    /// Panics (by design) when `partition` is the scripted panic target.
    pub fn before_predict(&self, partition: usize) {
        if let Some(latency) = self.predict_latency {
            std::thread::sleep(latency);
        }
        if self.panic_partition == Some(partition) {
            panic!("injected fault: predictor panic for partition {partition}");
        }
    }

    /// Corrupts the predicted designs of `partition` per the plan.
    pub fn corrupt(&self, partition: usize, designs: &mut [PredictedDesign]) {
        let poison = if self.nan_partition == Some(partition) {
            f64::NAN
        } else if self.absurd_partition == Some(partition) {
            1.0e30
        } else {
            return;
        };
        for d in designs.iter_mut() {
            *d = PredictedDesign::new(
                d.style(),
                d.module_set().clone(),
                d.allocation().clone(),
                d.initiation_interval(),
                d.latency(),
                Estimate::exact(poison),
                d.clock_overhead(),
                d.power(),
                d.detail().clone(),
                d.memory_bandwidth().clone(),
            );
        }
    }
}

/// Scripted I/O faults for durability layers built on top of the engine
/// (the service's write-ahead journal consumes this): failing appends
/// after a budget and tearing the tail of the final write let tests prove
/// that persistence failures surface as typed errors and that recovery
/// tolerates a torn tail.
///
/// The plan is a plain counter script — the component under test calls
/// [`IoFaultPlan::take_append_fault`] before each durable write and obeys
/// the verdict, so no `unsafe` syscall interposition is needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Fail every append once this many have succeeded.
    pub fail_after_appends: Option<usize>,
    /// Persist only this many bytes of the record written by the last
    /// successful append (simulating a torn write at crash time).
    pub torn_tail_bytes: Option<usize>,
}

/// The scripted verdict for one durable append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// Perform the append normally.
    None,
    /// Refuse the append with an I/O error.
    Fail,
    /// Write only the first `n` bytes of the record, then report success
    /// (the torn record must be detected — and skipped — on recovery).
    Torn(usize),
}

impl IoFaultPlan {
    /// A plan injecting no I/O faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail every append after `appends` have succeeded.
    #[must_use]
    pub fn fail_after(mut self, appends: usize) -> Self {
        self.fail_after_appends = Some(appends);
        self
    }

    /// Tear the write that crosses the `fail_after` budget down to
    /// `bytes` bytes instead of failing it outright.
    #[must_use]
    pub fn torn_tail(mut self, bytes: usize) -> Self {
        self.torn_tail_bytes = Some(bytes);
        self
    }

    /// The verdict for append number `completed` (zero-based count of
    /// appends already performed).
    #[must_use]
    pub fn take_append_fault(&self, completed: usize) -> AppendFault {
        match self.fail_after_appends {
            Some(budget) if completed >= budget => match self.torn_tail_bytes {
                Some(bytes) => AppendFault::Torn(bytes),
                None => AppendFault::Fail,
            },
            _ => AppendFault::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        plan.before_predict(0);
        let mut designs = Vec::new();
        plan.corrupt(0, &mut designs);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn scripted_panic_fires_on_target_partition() {
        FaultPlan::none().panic_on(2).before_predict(2);
    }

    #[test]
    fn scripted_panic_spares_other_partitions() {
        FaultPlan::none().panic_on(2).before_predict(1);
    }

    #[test]
    fn io_fault_plan_scripts_append_verdicts() {
        let plan = IoFaultPlan::none();
        assert_eq!(plan.take_append_fault(0), AppendFault::None);
        let plan = IoFaultPlan::none().fail_after(2);
        assert_eq!(plan.take_append_fault(0), AppendFault::None);
        assert_eq!(plan.take_append_fault(1), AppendFault::None);
        assert_eq!(plan.take_append_fault(2), AppendFault::Fail);
        assert_eq!(plan.take_append_fault(9), AppendFault::Fail);
        let plan = IoFaultPlan::none().fail_after(1).torn_tail(7);
        assert_eq!(plan.take_append_fault(0), AppendFault::None);
        assert_eq!(plan.take_append_fault(1), AppendFault::Torn(7));
    }
}
