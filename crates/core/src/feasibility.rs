//! Hard constraints and the probabilistic feasibility verdict.

use std::fmt;

use chop_stat::units::{MilliWatts, Nanos};
use chop_stat::{FeasibilityThreshold, Probability};
use serde::{Deserialize, Serialize};

/// The designer's hard constraints: system performance (maximum initiation
/// interval) and system delay (maximum input-to-output time), both in ns.
///
/// Per-chip area and pin counts are constraints too, but they come from the
/// chip set itself.
///
/// # Examples
///
/// ```
/// use chop_core::Constraints;
/// use chop_stat::units::Nanos;
///
/// let c = Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0));
/// assert_eq!(c.performance().value(), 30_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    performance: Nanos,
    delay: Nanos,
    power: Option<MilliWatts>,
}

impl Constraints {
    /// Creates constraints from a performance and a delay bound (no power
    /// limit).
    #[must_use]
    pub fn new(performance: Nanos, delay: Nanos) -> Self {
        Self { performance, delay, power: None }
    }

    /// Adds a total-system power limit — the power-consumption extension
    /// the paper names as future research (§5).
    ///
    /// # Examples
    ///
    /// ```
    /// use chop_core::Constraints;
    /// use chop_stat::units::{MilliWatts, Nanos};
    ///
    /// let c = Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0))
    ///     .with_power_limit(MilliWatts::new(2_000.0));
    /// assert_eq!(c.power_limit().unwrap().value(), 2_000.0);
    /// ```
    #[must_use]
    pub fn with_power_limit(mut self, power: MilliWatts) -> Self {
        self.power = Some(power);
        self
    }

    /// The total-system power limit, if any.
    #[must_use]
    pub fn power_limit(&self) -> Option<MilliWatts> {
        self.power
    }

    /// Maximum initiation interval.
    #[must_use]
    pub fn performance(&self) -> Nanos {
        self.performance
    }

    /// Maximum system delay.
    #[must_use]
    pub fn delay(&self) -> Nanos {
        self.delay
    }

    /// A copy with a tightened performance bound (the experiment-2 move).
    #[must_use]
    pub fn with_performance(mut self, performance: Nanos) -> Self {
        self.performance = performance;
        self
    }

    /// Checks that every bound is a positive, finite quantity. The unit
    /// types already refuse NaN and negative values at construction, but
    /// they do allow **zero** — and a zero performance or delay bound
    /// silently declares every design infeasible, which is never what a
    /// designer (or a wire request) means. Constraints built from
    /// untrusted input pass here before they reach a
    /// [`Session`](crate::Session).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidConstraint`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), crate::spec::SpecError> {
        use crate::spec::SpecError;
        if !(self.performance.value().is_finite() && self.performance.value() > 0.0) {
            return Err(SpecError::InvalidConstraint("performance"));
        }
        if !(self.delay.value().is_finite() && self.delay.value() > 0.0) {
            return Err(SpecError::InvalidConstraint("delay"));
        }
        if let Some(p) = self.power {
            if !(p.value().is_finite() && p.value() > 0.0) {
                return Err(SpecError::InvalidConstraint("power"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "performance ≤ {}, delay ≤ {}", self.performance, self.delay)?;
        if let Some(p) = self.power {
            write!(f, ", power ≤ {p}")?;
        }
        Ok(())
    }
}

/// The designer's feasibility criteria: the probability each constraint
/// class must reach. The paper's experiments use 100 % for performance and
/// chip area and 80 % for system delay.
///
/// # Examples
///
/// ```
/// use chop_core::FeasibilityCriteria;
///
/// let c = FeasibilityCriteria::paper_defaults();
/// assert_eq!(c.delay.probability().value(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeasibilityCriteria {
    /// Threshold for every chip-area constraint.
    pub area: FeasibilityThreshold,
    /// Threshold for the performance (initiation-interval) constraint.
    pub performance: FeasibilityThreshold,
    /// Threshold for the system-delay constraint.
    pub delay: FeasibilityThreshold,
    /// Threshold for the optional system-power constraint.
    pub power: FeasibilityThreshold,
}

impl FeasibilityCriteria {
    /// The criteria used throughout the paper's experiments (power, not in
    /// the paper, defaults to 80 % like delay).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            area: FeasibilityThreshold::certain(),
            performance: FeasibilityThreshold::certain(),
            delay: FeasibilityThreshold::new(0.8),
            power: FeasibilityThreshold::new(0.8),
        }
    }

    /// Point-comparison criteria (every threshold 50 %) — used by the
    /// probabilistic-analysis ablation.
    #[must_use]
    pub fn point_estimates() -> Self {
        Self {
            area: FeasibilityThreshold::new(0.5),
            performance: FeasibilityThreshold::new(0.5),
            delay: FeasibilityThreshold::new(0.5),
            power: FeasibilityThreshold::new(0.5),
        }
    }
}

impl Default for FeasibilityCriteria {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// A constraint violation found during feasibility analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A chip's predicted contents exceed its usable area.
    ChipArea {
        /// The violating chip index.
        chip: usize,
        /// Probability the contents fit.
        probability: Probability,
    },
    /// The system initiation interval exceeds the performance constraint.
    Performance {
        /// Probability the constraint is met.
        probability: Probability,
    },
    /// The system delay exceeds the delay constraint.
    Delay {
        /// Probability the constraint is met.
        probability: Probability,
    },
    /// A data transfer cannot complete within one initiation interval
    /// ("the data transfer time … cannot be longer than the initiation
    /// interval of the system in order not to cause data clashes").
    DataClash {
        /// Index of the violating transfer.
        transfer: usize,
    },
    /// Two pipelined partitions run at different data rates.
    DataRateMismatch,
    /// A chip's pin reservations exceed its package pins.
    PinsExhausted {
        /// The violating chip index.
        chip: usize,
    },
    /// A chip's data pins cannot sustain all its transfers every
    /// initiation interval (steady-state pin-time conservation).
    PinBandwidth {
        /// The violating chip index.
        chip: usize,
    },
    /// A memory block's required bandwidth exceeds its ports.
    MemoryBandwidth {
        /// The violating memory block index.
        memory: usize,
    },
    /// Total system power exceeds the designer's limit.
    Power {
        /// Probability the limit is met.
        probability: Probability,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ChipArea { chip, probability } => {
                write!(f, "chip {chip} area constraint missed (P(fit)={probability})")
            }
            Violation::Performance { probability } => {
                write!(f, "performance constraint missed (P={probability})")
            }
            Violation::Delay { probability } => {
                write!(f, "delay constraint missed (P={probability})")
            }
            Violation::DataClash { transfer } => {
                write!(f, "transfer {transfer} longer than the initiation interval")
            }
            Violation::DataRateMismatch => {
                write!(f, "pipelined partitions have mismatched data rates")
            }
            Violation::PinsExhausted { chip } => write!(f, "chip {chip} has no data pins left"),
            Violation::PinBandwidth { chip } => {
                write!(f, "chip {chip} data pins oversubscribed per initiation interval")
            }
            Violation::MemoryBandwidth { memory } => {
                write!(f, "memory M{memory} bandwidth exceeded")
            }
            Violation::Power { probability } => {
                write!(f, "power constraint missed (P={probability})")
            }
        }
    }
}

/// The outcome of feasibility analysis for one global implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether every constraint met its threshold.
    pub feasible: bool,
    /// Violations found (empty when feasible).
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// A feasible verdict.
    #[must_use]
    pub fn feasible() -> Self {
        Self { feasible: true, violations: Vec::new() }
    }

    /// An infeasible verdict carrying its violations.
    ///
    /// # Panics
    ///
    /// Panics if `violations` is empty.
    #[must_use]
    pub fn infeasible(violations: Vec<Violation>) -> Self {
        assert!(!violations.is_empty(), "infeasible verdict needs at least one violation");
        Self { feasible: false, violations }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.feasible {
            write!(f, "feasible")
        } else {
            let v: Vec<String> = self.violations.iter().map(ToString::to_string).collect();
            write!(f, "infeasible: {}", v.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_3() {
        let c = FeasibilityCriteria::paper_defaults();
        assert_eq!(c.area, FeasibilityThreshold::certain());
        assert_eq!(c.performance, FeasibilityThreshold::certain());
        assert_eq!(c.delay, FeasibilityThreshold::new(0.8));
    }

    #[test]
    fn verdict_construction() {
        assert!(Verdict::feasible().feasible);
        let v = Verdict::infeasible(vec![Violation::DataRateMismatch]);
        assert!(!v.feasible);
        assert!(v.to_string().contains("mismatched"));
    }

    #[test]
    #[should_panic(expected = "at least one violation")]
    fn empty_infeasible_panics() {
        let _ = Verdict::infeasible(vec![]);
    }

    #[test]
    fn constraints_tighten() {
        let c = Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0))
            .with_performance(Nanos::new(20_000.0));
        assert_eq!(c.performance().value(), 20_000.0);
        assert_eq!(c.delay().value(), 30_000.0);
    }

    #[test]
    fn constraint_validation_rejects_zero_bounds() {
        use crate::spec::SpecError;
        let ok = Constraints::new(Nanos::new(1.0), Nanos::new(1.0));
        assert_eq!(ok.validate(), Ok(()));
        let perf = Constraints::new(Nanos::zero(), Nanos::new(1.0));
        assert_eq!(perf.validate(), Err(SpecError::InvalidConstraint("performance")));
        let delay = Constraints::new(Nanos::new(1.0), Nanos::zero());
        assert_eq!(delay.validate(), Err(SpecError::InvalidConstraint("delay")));
        let power = ok.with_power_limit(MilliWatts::zero());
        assert_eq!(power.validate(), Err(SpecError::InvalidConstraint("power")));
    }
}
