//! Testability overhead — the paper's §5: "In order to synthesize highly
//! testable designs while still satisfying design constraints, the
//! testability overheads for area, delay, performance and pin count have
//! to be considered in the prediction mechanism."
//!
//! A [`TestabilityOverhead`] scales every chip's predicted area, loads the
//! clock cycle and reserves scan pins; enable it per session with
//! [`crate::Session::with_testability`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// Overheads a scan-based test strategy adds to every chip.
///
/// # Examples
///
/// ```
/// use chop_core::testability::TestabilityOverhead;
///
/// let t = TestabilityOverhead::full_scan();
/// assert!(t.area_fraction > 0.0);
/// assert!(t.scan_pins >= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestabilityOverhead {
    /// Fractional area increase (scan flip-flops, test controller).
    pub area_fraction: f64,
    /// Fractional clock-cycle increase (scan multiplexers in every
    /// register path).
    pub clock_fraction: f64,
    /// Pins reserved per chip for the scan interface (scan-in, scan-out,
    /// test enable…).
    pub scan_pins: u32,
}

impl TestabilityOverhead {
    /// A typical full-scan discipline: ~15 % area, ~5 % clock, 3 pins.
    #[must_use]
    pub fn full_scan() -> Self {
        Self { area_fraction: 0.15, clock_fraction: 0.05, scan_pins: 3 }
    }

    /// A lighter partial-scan discipline: ~7 % area, ~2 % clock, 3 pins.
    #[must_use]
    pub fn partial_scan() -> Self {
        Self { area_fraction: 0.07, clock_fraction: 0.02, scan_pins: 3 }
    }

    /// No overhead (the identity element).
    #[must_use]
    pub fn none() -> Self {
        Self { area_fraction: 0.0, clock_fraction: 0.0, scan_pins: 0 }
    }

    /// Validates the fractions.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite fractions.
    pub fn assert_valid(&self) {
        assert!(
            self.area_fraction.is_finite() && self.area_fraction >= 0.0,
            "area fraction must be finite and non-negative"
        );
        assert!(
            self.clock_fraction.is_finite() && self.clock_fraction >= 0.0,
            "clock fraction must be finite and non-negative"
        );
    }
}

impl Default for TestabilityOverhead {
    fn default() -> Self {
        Self::none()
    }
}

impl fmt::Display for TestabilityOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "testability(+{:.0}% area, +{:.0}% clock, {} scan pins)",
            self.area_fraction * 100.0,
            self.clock_fraction * 100.0,
            self.scan_pins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered() {
        let full = TestabilityOverhead::full_scan();
        let partial = TestabilityOverhead::partial_scan();
        assert!(full.area_fraction > partial.area_fraction);
        assert!(full.clock_fraction > partial.clock_fraction);
        full.assert_valid();
        partial.assert_valid();
        TestabilityOverhead::none().assert_valid();
    }

    #[test]
    #[should_panic(expected = "area fraction")]
    fn negative_fraction_panics() {
        let t = TestabilityOverhead { area_fraction: -0.1, ..TestabilityOverhead::none() };
        t.assert_valid();
    }

    #[test]
    fn display_renders() {
        assert!(TestabilityOverhead::full_scan().to_string().contains("15%"));
    }
}
