//! Move-based auto-partitioning: the outer search that *proposes*
//! partitionings, closing the paper's interactive loop.
//!
//! [`Session::optimize`] runs FM/KL-style gain-directed passes over
//! node-move candidates: each pass ranks every legal move of every
//! movable unit (a free node, or a whole constraint group moved
//! atomically) by a cheap proxy gain — the inter-partition cut-bit
//! reduction — with deterministic tie-breaking, then evaluates the best
//! candidate through the ordinary cache-backed engine. Because a move
//! changes exactly two partitions, a warm evaluation re-predicts only
//! those two and serves the rest from the shared
//! [`PredictionCache`](crate::cache::PredictionCache).
//!
//! When a pass accepts nothing (a plateau), an optional simulated-
//! annealing *kick* — seeded exclusively from the caller-supplied seed —
//! applies a few Metropolis-accepted random moves to escape, then
//! gain-directed passes resume. The search stops when kicks are
//! exhausted, the move budget is spent, or the deadline trips; the
//! result always carries the best state seen (kicked-to-worse tails are
//! rolled back).
//!
//! # Determinism
//!
//! The entire search is deterministic in `(session, spec)`: candidate
//! ordering is fully tie-broken, the only randomness is the spec's seed,
//! no wall clock feeds any decision except the optional deadline, and
//! the inner engine's results are byte-identical at any
//! [`Session::jobs`] setting. [`OptimizeResult::digest`] therefore
//! matches across thread counts; the determinism tests assert it for
//! jobs 1/2/8.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use chop_dfg::{NodeId, Operation};

use crate::budget::{BudgetTimer, Completion, SearchBudget};
use crate::error::ChopError;
use crate::explorer::{Heuristic, SearchOutcome, Session};
use crate::spec::{PartitionId, Partitioning};

/// Score penalty base separating every infeasible state from every
/// feasible one: a feasible implementation always wins.
const INFEASIBLE_BASE: f64 = 1e18;
/// Penalty per partition whose predictions were all pruned infeasible —
/// the strongest gradient an infeasible start can descend.
const STARVED_PENALTY: f64 = 1e12;

/// Relative weights of the optimizer's objective terms.
///
/// For feasible states the score is the weighted sum of the best
/// implementation's likely initiation interval, latency and total chip
/// area (all minimized). For infeasible states the score is a large
/// constant plus `cut_bits` times the total inter-partition cut width —
/// the classic FM objective — so the search has a gradient toward
/// feasibility long before any implementation exists.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight of the likely system initiation interval (ns).
    pub initiation_ns: f64,
    /// Weight of the likely system delay (ns).
    pub delay_ns: f64,
    /// Weight of the summed likely chip areas (mil²).
    pub area: f64,
    /// Weight of the total inter-partition cut bits while infeasible.
    pub cut_bits: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self { initiation_ns: 1.0, delay_ns: 1.0, area: 0.0, cut_bits: 1.0 }
    }
}

/// Builder-style configuration for [`Session::optimize`].
///
/// All `with_*` methods are infallible per the session
/// [builder contract](Session): constraints that must be checked against
/// the session's partitioning (unknown nodes, non-co-located groups) are
/// validated when [`Session::optimize`] consumes the spec, reported as
/// [`ChopError::InvalidOptimizeSpec`].
#[derive(Debug, Clone)]
pub struct OptimizeSpec {
    pub(crate) seed: u64,
    pub(crate) max_moves: u64,
    pub(crate) deadline: Option<Duration>,
    pub(crate) kicks: u32,
    pub(crate) kick_moves: u32,
    pub(crate) initial_temperature: f64,
    pub(crate) cooling: f64,
    pub(crate) weights: ObjectiveWeights,
    pub(crate) pinned: Vec<NodeId>,
    pub(crate) groups: Vec<Vec<NodeId>>,
    pub(crate) exclusions: Vec<(NodeId, NodeId)>,
    pub(crate) heuristic: Heuristic,
}

impl Default for OptimizeSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            max_moves: 256,
            deadline: None,
            kicks: 2,
            kick_moves: 3,
            initial_temperature: 1_000.0,
            cooling: 0.9,
            weights: ObjectiveWeights::default(),
            pinned: Vec::new(),
            groups: Vec::new(),
            exclusions: Vec::new(),
            heuristic: Heuristic::Iterative,
        }
    }
}

impl OptimizeSpec {
    /// A spec with the default budget (256 evaluated moves, no deadline,
    /// two annealing kicks of three moves each, seed 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the annealing kicks. Two runs with equal seeds (and equal
    /// sessions and specs) produce identical move traces and digests.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of candidate evaluations (each one inner
    /// cache-backed exploration). Exhausting it reports
    /// [`Completion::TruncatedTrials`].
    #[must_use]
    pub fn with_max_moves(mut self, max_moves: u64) -> Self {
        self.max_moves = max_moves;
        self
    }

    /// Sets a wall-clock deadline for the whole optimization; tripping it
    /// reports [`Completion::TruncatedDeadline`] with the best state
    /// found so far.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Number of simulated-annealing kicks to spend on plateaus (`0`
    /// disables annealing entirely) and the random moves attempted per
    /// kick.
    #[must_use]
    pub fn with_kicks(mut self, kicks: u32, kick_moves: u32) -> Self {
        self.kicks = kicks;
        self.kick_moves = kick_moves;
        self
    }

    /// Metropolis temperature schedule for kicks: the starting
    /// temperature and the geometric cooling factor applied after every
    /// kick move.
    #[must_use]
    pub fn with_annealing(mut self, initial_temperature: f64, cooling: f64) -> Self {
        self.initial_temperature = initial_temperature;
        self.cooling = cooling;
        self
    }

    /// Overrides the objective weights.
    #[must_use]
    pub fn with_weights(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = weights;
        self
    }

    /// The heuristic used for inner candidate evaluations (default
    /// [`Heuristic::Iterative`], the fast one).
    #[must_use]
    pub fn with_heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Pins a node to its current partition: the move generator never
    /// proposes moving it (PARSAC-style pre-assigned placement).
    #[must_use]
    pub fn with_pinned_node(mut self, node: NodeId) -> Self {
        self.pinned.push(node);
        self
    }

    /// Declares a must-stay-together group: its members move atomically
    /// as one unit and are never separated. Members must be co-located
    /// in the session's partitioning when [`Session::optimize`] runs.
    #[must_use]
    pub fn with_group(mut self, nodes: Vec<NodeId>) -> Self {
        self.groups.push(nodes);
        self
    }

    /// Declares a must-not-share-a-partition pair: no generated move may
    /// result in `a` and `b` being co-located.
    #[must_use]
    pub fn with_exclusion(mut self, a: NodeId, b: NodeId) -> Self {
        self.exclusions.push((a, b));
        self
    }

    /// The seed in force.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The move-evaluation budget in force.
    #[must_use]
    pub fn max_moves(&self) -> u64 {
        self.max_moves
    }

    /// The plateau-kick budget in force.
    #[must_use]
    pub fn kicks(&self) -> u32 {
        self.kicks
    }

    /// Annealed moves attempted per kick.
    #[must_use]
    pub fn kick_moves(&self) -> u32 {
        self.kick_moves
    }
}

/// Why a move was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Accepted by a gain-directed pass (strict improvement).
    Gain,
    /// Accepted by a simulated-annealing kick (Metropolis rule; may be a
    /// deliberate worsening).
    Kick,
}

impl fmt::Display for MoveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveKind::Gain => write!(f, "gain"),
            MoveKind::Kick => write!(f, "kick"),
        }
    }
}

/// One accepted move of the optimization trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedMove {
    /// The nodes moved (one node, or a whole constraint group).
    pub nodes: Vec<NodeId>,
    /// The partition they left.
    pub from: PartitionId,
    /// The partition they joined.
    pub to: PartitionId,
    /// The 1-based gain pass (or the kick) the move belongs to.
    pub pass: u32,
    /// Whether a gain pass or an annealing kick accepted it.
    pub kind: MoveKind,
}

/// The outcome of one [`Session::optimize`] run: the accepted move
/// trace, the final partitioning and its full exploration outcome, and
/// the run's accounting.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// Accepted moves in application order. Replaying them over the
    /// starting partitioning with
    /// [`Partitioning::with_nodes_moved`] reproduces
    /// [`OptimizeResult::partitioning`].
    pub moves: Vec<AppliedMove>,
    /// Objective score of the starting partitioning.
    pub initial_score: f64,
    /// Objective score of the final partitioning.
    pub final_score: f64,
    /// The final partitioning's exploration outcome.
    pub outcome: SearchOutcome,
    /// The final partitioning itself.
    pub partitioning: Partitioning,
    /// Candidate evaluations spent (the unit the move budget caps).
    pub evaluations: u64,
    /// Gain-directed passes run.
    pub passes: u32,
    /// Annealing kicks spent.
    pub kicks_used: u32,
    /// How the run ended: plateau convergence ([`Completion::Complete`])
    /// or a tripped budget.
    pub completion: Completion,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl OptimizeResult {
    /// Whether the final partitioning has at least one feasible
    /// implementation.
    #[must_use]
    pub fn feasible(&self) -> bool {
        !self.outcome.feasible.is_empty()
    }

    /// The move trace flattened to `(node index, target partition)`
    /// pairs — the wire/journal form replayed with
    /// [`Partitioning::with_nodes_moved`].
    #[must_use]
    pub fn moves_as_indices(&self) -> Vec<(u32, u32)> {
        self.moves
            .iter()
            .flat_map(|m| {
                let to = m.to.index() as u32;
                m.nodes.iter().map(move |n| (n.index() as u32, to))
            })
            .collect()
    }

    /// A canonical fingerprint of the run's *results*: the full move
    /// trace, scores, pass/kick counts, completion, and the final
    /// outcome's [`SearchOutcome::digest`]. Wall-clock measurements
    /// (`elapsed`) and the raw evaluation count are excluded — like the
    /// search digest, two runs with equal digests applied exactly the
    /// same moves and found exactly the same designs, at any `--jobs`.
    #[must_use]
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "opt;completion={:?};passes={};kicks={};init={:016x};final={:016x};",
            self.completion,
            self.passes,
            self.kicks_used,
            self.initial_score.to_bits(),
            self.final_score.to_bits(),
        );
        for m in &self.moves {
            let _ = write!(out, "m:{}/{}/{}>{}:", m.pass, m.kind, m.from, m.to);
            for n in &m.nodes {
                let _ = write!(out, "{},", n.index());
            }
            let _ = write!(out, ";");
        }
        out.push_str("outcome:");
        out.push_str(&self.outcome.digest());
        out
    }
}

impl fmt::Display for OptimizeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} moves in {} passes ({} kicks), {} evaluations, score {:.1} -> {:.1}, {} in {:.2?}",
            self.moves.len(),
            self.passes,
            self.kicks_used,
            self.evaluations,
            self.initial_score,
            self.final_score,
            if self.feasible() { "feasible" } else { "infeasible" },
            self.elapsed
        )?;
        if self.completion != Completion::Complete {
            write!(f, " [{}]", self.completion)?;
        }
        Ok(())
    }
}

/// xorshift64* seeded through a splitmix64 mix — tiny, deterministic,
/// and entirely derived from the caller's seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One movable unit: a free node, or a whole must-stay-together group.
struct MoveUnit {
    /// Sorted member nodes.
    nodes: Vec<NodeId>,
}

impl MoveUnit {
    /// Deterministic ordering key: the smallest member index.
    fn key(&self) -> usize {
        self.nodes[0].index()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

/// A ranked move candidate: `unit` to partition `to`.
struct Candidate {
    /// Proxy gain: inter-partition cut bits removed (higher is better).
    gain: i64,
    unit: usize,
    from: PartitionId,
    to: PartitionId,
}

/// The running search state shared by passes and kicks.
struct Search<'a> {
    spec: &'a OptimizeSpec,
    units: Vec<MoveUnit>,
    timer: BudgetTimer,
    evaluations: u64,
    current: Session,
    outcome: SearchOutcome,
    score: f64,
}

impl Search<'_> {
    /// Cut-bit change if `unit` moved to `to` (negative = fewer cut
    /// bits). Only edges incident to the unit can change, and
    /// constant-fed values are excluded exactly as
    /// [`Partitioning::inter_partition_cuts`] excludes them.
    fn cut_delta(&self, unit: &MoveUnit, to: usize) -> i64 {
        let p = self.current.partitioning();
        let dfg = p.dfg();
        let grouping = p.grouping();
        let pos = |n: NodeId| if unit.contains(n) { to } else { grouping.group_of(n) };
        let mut delta = 0i64;
        for (_, e) in dfg.edges() {
            if !(unit.contains(e.src()) || unit.contains(e.dst())) {
                continue;
            }
            if dfg.node(e.src()).op() == Operation::Const {
                continue;
            }
            let before = i64::from(grouping.group_of(e.src()) != grouping.group_of(e.dst()));
            let after = i64::from(pos(e.src()) != pos(e.dst()));
            delta += (after - before) * e.width().value() as i64;
        }
        delta
    }

    /// Whether moving `unit` to `to` keeps every exclusion pair
    /// separated. Pre-existing violations not touched by the move do not
    /// block it (the optimizer may still be fixing them).
    fn respects_exclusions(&self, unit: &MoveUnit, to: usize) -> bool {
        let grouping = self.current.partitioning().grouping();
        let pos = |n: NodeId| if unit.contains(n) { to } else { grouping.group_of(n) };
        self.spec.exclusions.iter().all(|&(a, b)| {
            let touched = unit.contains(a) || unit.contains(b);
            !touched || pos(a) != pos(b)
        })
    }

    /// Every legal candidate, ordered by `(gain desc, unit key asc,
    /// target asc)` — the deterministic tie-broken bucket order the
    /// passes pop from.
    fn candidates(&self, locked: &BTreeSet<usize>) -> Vec<Candidate> {
        let grouping = self.current.partitioning().grouping();
        let k = grouping.group_count();
        let mut out = Vec::new();
        for (i, unit) in self.units.iter().enumerate() {
            if locked.contains(&i) {
                continue;
            }
            let home = grouping.group_of(unit.nodes[0]);
            for to in 0..k {
                if to == home || !self.respects_exclusions(unit, to) {
                    continue;
                }
                out.push(Candidate {
                    gain: -self.cut_delta(unit, to),
                    unit: i,
                    from: PartitionId::new(home as u32),
                    to: PartitionId::new(to as u32),
                });
            }
        }
        out.sort_unstable_by(|a, b| {
            b.gain
                .cmp(&a.gain)
                .then_with(|| self.units[a.unit].key().cmp(&self.units[b.unit].key()))
                .then_with(|| a.to.index().cmp(&b.to.index()))
        });
        out
    }

    /// Applies a candidate structurally, returning the derived session
    /// (`None` if the final grouping would be invalid — such candidates
    /// are skipped without consuming the move budget).
    fn apply(&self, c: &Candidate) -> Option<Session> {
        let unit = &self.units[c.unit];
        let moves: Vec<(NodeId, PartitionId)> = unit.nodes.iter().map(|&n| (n, c.to)).collect();
        let next = self.current.partitioning().with_nodes_moved(&moves).ok()?;
        // The moved partitioning came from a validated one, so this
        // re-validation cannot fail; `ok()` keeps the path total.
        self.current.clone().try_with_partitioning(next).ok()
    }

    /// Evaluates a session through the inner engine and scores it.
    fn evaluate(&mut self, session: &Session) -> Result<(SearchOutcome, f64), ChopError> {
        let outcome = session.explore(self.spec.heuristic)?;
        self.evaluations += 1;
        let score = score_state(session.partitioning(), &outcome, &self.spec.weights);
        Ok((outcome, score))
    }

    /// The budget check between candidate evaluations.
    fn tripped(&self) -> Option<Completion> {
        if self.timer.deadline_exceeded() {
            return Some(Completion::TruncatedDeadline);
        }
        if self.evaluations >= self.spec.max_moves {
            return Some(Completion::TruncatedTrials);
        }
        None
    }
}

/// The deterministic objective. Feasible states score their best
/// implementation's weighted sum; infeasible states score a large
/// constant plus starved-partition and cut-width pressure, so descent
/// has a gradient toward feasibility.
fn score_state(p: &Partitioning, o: &SearchOutcome, w: &ObjectiveWeights) -> f64 {
    let best = o
        .feasible
        .iter()
        .map(|f| {
            let area: f64 = f.system.chip_areas.iter().map(|a| a.likely()).sum();
            w.initiation_ns * f.system.initiation_ns.likely()
                + w.delay_ns * f.system.delay_ns.likely()
                + w.area * area
        })
        .min_by(f64::total_cmp);
    if let Some(s) = best {
        return s;
    }
    let cut_bits: u64 = p.inter_partition_cuts().iter().map(|c| c.bits.value()).sum();
    let starved = o.prediction_stats.iter().filter(|s| s.feasible == 0).count();
    INFEASIBLE_BASE + STARVED_PENALTY * starved as f64 + w.cut_bits * cut_bits as f64
        - o.feasible_predictions() as f64
}

/// Validates the spec against a partitioning and builds the movable
/// units (free nodes and atomic groups, pinned nodes excluded).
fn build_units(spec: &OptimizeSpec, p: &Partitioning) -> Result<Vec<MoveUnit>, ChopError> {
    let bad = |m: String| ChopError::InvalidOptimizeSpec(m);
    let n = p.dfg().len();
    let check = |node: NodeId| -> Result<(), ChopError> {
        if node.index() >= n {
            return Err(bad(format!("node n{} is not in this specification", node.index())));
        }
        Ok(())
    };
    let mut pinned: Vec<NodeId> = spec.pinned.clone();
    pinned.sort_unstable();
    pinned.dedup();
    for &node in &pinned {
        check(node)?;
    }
    let mut grouped: BTreeSet<NodeId> = BTreeSet::new();
    let mut units: Vec<MoveUnit> = Vec::new();
    for group in &spec.groups {
        if group.is_empty() {
            return Err(bad("a constraint group is empty".into()));
        }
        let mut nodes = group.clone();
        nodes.sort_unstable();
        nodes.dedup();
        let home = {
            check(nodes[0])?;
            p.grouping().group_of(nodes[0])
        };
        for &node in &nodes {
            check(node)?;
            if pinned.binary_search(&node).is_ok() {
                return Err(bad(format!(
                    "node n{} is both pinned and in a group",
                    node.index()
                )));
            }
            if !grouped.insert(node) {
                return Err(bad(format!(
                    "node n{} appears in more than one group",
                    node.index()
                )));
            }
            if p.grouping().group_of(node) != home {
                return Err(bad(format!(
                    "group members n{} and n{} are not co-located in the partitioning",
                    nodes[0].index(),
                    node.index()
                )));
            }
        }
        units.push(MoveUnit { nodes });
    }
    for &(a, b) in &spec.exclusions {
        check(a)?;
        check(b)?;
        if a == b {
            return Err(bad(format!("node n{} is excluded from itself", a.index())));
        }
        if let Some(unit) = units.iter().find(|u| u.contains(a) && u.contains(b)) {
            return Err(bad(format!(
                "exclusion pair n{}/n{} lies inside one group (n{}…) and can never be \
                 separated",
                a.index(),
                b.index(),
                unit.nodes[0].index()
            )));
        }
    }
    // Every remaining node is its own unit unless pinned.
    for (id, _) in p.dfg().nodes() {
        if pinned.binary_search(&id).is_ok() || grouped.contains(&id) {
            continue;
        }
        units.push(MoveUnit { nodes: vec![id] });
    }
    units.sort_unstable_by_key(MoveUnit::key);
    Ok(units)
}

impl Session {
    /// What-if: applies a whole move trace atomically (the journal-replay
    /// and replication form of an accepted [`OptimizeResult`]), returning
    /// the re-keyed session. Like [`Session::repartition`], the derived
    /// session shares this session's prediction cache.
    ///
    /// # Errors
    ///
    /// Returns a [`chop_dfg::grouping::GroupingError`] if the final
    /// grouping is invalid; see [`Partitioning::with_nodes_moved`].
    pub fn apply_moves(
        &self,
        moves: &[(NodeId, PartitionId)],
    ) -> Result<Self, chop_dfg::grouping::GroupingError> {
        let mut next = self.clone();
        next.partitioning = self.partitioning.with_nodes_moved(moves)?;
        Ok(next)
    }

    /// Runs the move-based auto-partitioning optimizer over this
    /// session: gain-directed passes evaluated through the cache-backed
    /// engine, annealing kicks on plateaus, pins/groups/exclusions
    /// honored by the move generator, all under the spec's move budget
    /// and deadline. See the [module docs](crate::optimize) for the
    /// algorithm and determinism rules.
    ///
    /// A tripped budget is a *normal outcome* tagged in
    /// [`OptimizeResult::completion`]; the result always carries the
    /// best state seen.
    ///
    /// # Errors
    ///
    /// [`ChopError::InvalidOptimizeSpec`] if the spec names unknown
    /// nodes, overlapping or non-co-located groups, or inseparable
    /// exclusions; any engine error an inner exploration reports.
    pub fn optimize(&self, spec: &OptimizeSpec) -> Result<OptimizeResult, ChopError> {
        let units = build_units(spec, self.partitioning())?;
        let mut budget = SearchBudget::unlimited();
        if let Some(d) = spec.deadline {
            budget = budget.with_deadline(d);
        }
        let timer = BudgetTimer::start(budget);
        let outcome = self.explore(spec.heuristic)?;
        let score = score_state(self.partitioning(), &outcome, &spec.weights);
        let mut search = Search {
            spec,
            units,
            timer,
            evaluations: 0,
            current: self.clone(),
            outcome,
            score,
        };
        let initial_score = search.score;
        let initial_outcome = search.outcome.clone();
        let mut rng = Rng::new(spec.seed);
        let mut temp = spec.initial_temperature;
        let mut moves: Vec<AppliedMove> = Vec::new();
        let mut best: Option<(Session, SearchOutcome, f64, usize)> = None;
        let mut passes = 0u32;
        let mut kicks_used = 0u32;
        let mut completion = Completion::Complete;

        'outer: loop {
            // One gain-directed pass: repeatedly evaluate the best-ranked
            // candidate among unlocked units, locking each unit after its
            // verdict, until the pass runs dry.
            passes += 1;
            let mut locked: BTreeSet<usize> = BTreeSet::new();
            let mut improved = false;
            loop {
                if let Some(c) = search.tripped() {
                    completion = c;
                    break 'outer;
                }
                let candidates = search.candidates(&locked);
                let Some((cand, session)) =
                    candidates.iter().find_map(|c| search.apply(c).map(|s| (c, s)))
                else {
                    break;
                };
                let (outcome, score) = search.evaluate(&session)?;
                if score.total_cmp(&search.score) == std::cmp::Ordering::Less {
                    search.current = session;
                    search.outcome = outcome;
                    search.score = score;
                    moves.push(AppliedMove {
                        nodes: search.units[cand.unit].nodes.clone(),
                        from: cand.from,
                        to: cand.to,
                        pass: passes,
                        kind: MoveKind::Gain,
                    });
                    improved = true;
                    let best_score = best.as_ref().map_or(initial_score, |b| b.2);
                    if score.total_cmp(&best_score) == std::cmp::Ordering::Less {
                        best = Some((
                            search.current.clone(),
                            search.outcome.clone(),
                            score,
                            moves.len(),
                        ));
                    }
                }
                locked.insert(cand.unit);
            }
            if improved {
                continue;
            }
            // Plateau: spend a kick, or stop.
            if kicks_used >= spec.kicks {
                break;
            }
            kicks_used += 1;
            for _ in 0..spec.kick_moves {
                if let Some(c) = search.tripped() {
                    completion = c;
                    break 'outer;
                }
                let candidates = search.candidates(&BTreeSet::new());
                if candidates.is_empty() {
                    break;
                }
                let start = rng.below(candidates.len());
                let picked = (0..candidates.len()).find_map(|i| {
                    let c = &candidates[(start + i) % candidates.len()];
                    search.apply(c).map(|s| (c, s))
                });
                let Some((cand, session)) = picked else { break };
                let (outcome, score) = search.evaluate(&session)?;
                let delta = score - search.score;
                let accept =
                    delta < 0.0 || (temp > 0.0 && rng.next_f64() < (-delta / temp).exp());
                temp *= spec.cooling;
                if accept {
                    moves.push(AppliedMove {
                        nodes: search.units[cand.unit].nodes.clone(),
                        from: cand.from,
                        to: cand.to,
                        pass: passes,
                        kind: MoveKind::Kick,
                    });
                    search.current = session;
                    search.outcome = outcome;
                    search.score = score;
                    let best_score = best.as_ref().map_or(initial_score, |b| b.2);
                    if score.total_cmp(&best_score) == std::cmp::Ordering::Less {
                        best = Some((
                            search.current.clone(),
                            search.outcome.clone(),
                            score,
                            moves.len(),
                        ));
                    }
                }
            }
        }

        // A kick may have left the current state worse than the best one
        // seen: hand back the best, truncating the kicked tail.
        if let Some((session, outcome, score, len)) = best {
            if score.total_cmp(&search.score) == std::cmp::Ordering::Less {
                search.current = session;
                search.outcome = outcome;
                search.score = score;
                moves.truncate(len);
            }
        } else if !moves.is_empty() {
            // Kicks moved away from the start and nothing ever beat it:
            // return the start unchanged.
            search.current = self.clone();
            search.outcome = initial_outcome;
            search.score = initial_score;
            moves.clear();
        }

        Ok(OptimizeResult {
            moves,
            initial_score,
            final_score: search.score,
            partitioning: search.current.partitioning().clone(),
            outcome: search.outcome,
            evaluations: search.evaluations,
            passes,
            kicks_used,
            completion,
            elapsed: search.timer.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::ChipSet;
    use chop_stat::units::Nanos;

    use super::*;
    use crate::feasibility::Constraints;
    use crate::spec::PartitioningBuilder;
    use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};

    fn session(k: usize) -> Session {
        let p = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[1].clone(), k),
        )
        .split_horizontal(k)
        .build()
        .unwrap();
        Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    #[test]
    fn optimize_on_a_feasible_start_returns_it_or_better() {
        let s = session(2);
        let spec = OptimizeSpec::new().with_max_moves(16).with_kicks(0, 0);
        let r = s.optimize(&spec).unwrap();
        assert!(r.feasible());
        assert!(r.final_score <= r.initial_score);
        assert!(r.evaluations <= 16);
    }

    #[test]
    fn optimize_is_deterministic_for_a_seed() {
        let s = session(3);
        let spec = OptimizeSpec::new().with_seed(7).with_max_moves(24);
        let a = s.optimize(&spec).unwrap();
        let b = s.optimize(&spec).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn zero_move_budget_truncates_immediately() {
        let s = session(2);
        let r = s.optimize(&OptimizeSpec::new().with_max_moves(0)).unwrap();
        assert_eq!(r.completion, Completion::TruncatedTrials);
        assert_eq!(r.evaluations, 0);
        assert!(r.moves.is_empty());
    }

    #[test]
    fn pinned_nodes_never_move() {
        let s = session(3);
        let pinned: Vec<NodeId> = s.partitioning().grouping().members(0).clone();
        let mut spec = OptimizeSpec::new().with_max_moves(32);
        for &n in &pinned {
            spec = spec.with_pinned_node(n);
        }
        let r = s.optimize(&spec).unwrap();
        for m in &r.moves {
            for n in &m.nodes {
                assert!(!pinned.contains(n), "pinned node {n:?} moved");
            }
        }
    }

    #[test]
    fn groups_move_atomically_and_stay_together() {
        let s = session(3);
        let group = s.partitioning().grouping().members(1);
        let spec = OptimizeSpec::new().with_max_moves(32).with_group(group.clone());
        let r = s.optimize(&spec).unwrap();
        let g = r.partitioning.grouping();
        let home = g.group_of(group[0]);
        for &n in &group {
            assert_eq!(g.group_of(n), home, "group split apart");
        }
        for m in &r.moves {
            if m.nodes.len() > 1 {
                assert_eq!(m.nodes.len(), group.len());
            }
        }
    }

    #[test]
    fn invalid_specs_are_rejected_with_typed_errors() {
        let s = session(2);
        // Non-co-located group.
        let a = s.partitioning().grouping().members(0)[0];
        let b = s.partitioning().grouping().members(1)[0];
        let err = s.optimize(&OptimizeSpec::new().with_group(vec![a, b])).unwrap_err();
        assert!(matches!(err, ChopError::InvalidOptimizeSpec(_)), "{err}");
        // Self-exclusion.
        let err = s.optimize(&OptimizeSpec::new().with_exclusion(a, a)).unwrap_err();
        assert!(matches!(err, ChopError::InvalidOptimizeSpec(_)));
        // Pinned node inside a group.
        let g = s.partitioning().grouping().members(0);
        let err = s
            .optimize(&OptimizeSpec::new().with_pinned_node(g[0]).with_group(g.clone()))
            .unwrap_err();
        assert!(matches!(err, ChopError::InvalidOptimizeSpec(_)));
    }

    #[test]
    fn exclusions_are_respected_by_every_move() {
        let s = session(3);
        let a = s.partitioning().grouping().members(0)[0];
        let b = s.partitioning().grouping().members(1)[0];
        let spec = OptimizeSpec::new().with_max_moves(32).with_exclusion(a, b);
        let r = s.optimize(&spec).unwrap();
        let g = r.partitioning.grouping();
        assert_ne!(g.group_of(a), g.group_of(b), "excluded pair ended co-located");
    }

    #[test]
    fn single_partition_has_no_moves() {
        let r = session(1).optimize(&OptimizeSpec::new()).unwrap();
        assert!(r.moves.is_empty());
        assert_eq!(r.completion, Completion::Complete);
    }

    #[test]
    fn replaying_the_move_trace_reproduces_the_final_partitioning() {
        let s = session(3);
        let r = s.optimize(&OptimizeSpec::new().with_seed(3).with_max_moves(24)).unwrap();
        let ids: Vec<(NodeId, PartitionId)> =
            r.moves.iter().flat_map(|m| m.nodes.iter().map(move |&n| (n, m.to))).collect();
        let replayed = s.apply_moves(&ids).unwrap();
        assert_eq!(replayed.partitioning().grouping(), r.partitioning.grouping());
    }

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(a.below(7) < 7);
        }
    }
}
