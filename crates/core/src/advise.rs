//! System-level advising: automated what-if sweeps over the modification
//! axes of §2.7.
//!
//! The paper positions CHOP "as a system-level advisor — the designer can
//! easily check the effects of system-level decisions in real-time" and
//! names the automation of interleaved memory/behavior partitioning as
//! future work (§2.2, §5). This module closes that loop for two axes:
//!
//! * [`best_memory_assignment`] — greedy sweep of every on-chip memory
//!   block across the chip set,
//! * [`improve_by_migration`] — greedy operation migration across
//!   partition boundaries (a Kernighan–Lin-flavoured improvement loop
//!   driven by CHOP's own feasibility analysis instead of cut size).

use chop_library::{ChipId, MemoryId, MemoryPlacement};

use crate::error::ChopError;
use crate::explorer::{Heuristic, SearchOutcome, Session};
use crate::spec::{PartitionId, Partitioning};

/// A recommended partitioning with the outcome that justified it.
#[derive(Debug)]
pub struct Advice {
    /// The recommended partitioning.
    pub partitioning: Partitioning,
    /// Its exploration outcome.
    pub outcome: SearchOutcome,
    /// Number of candidate partitionings explored to reach it.
    pub candidates_examined: usize,
}

/// Total order on outcomes: feasible beats infeasible; then lower best
/// initiation interval (ns), then lower best delay (ns).
fn score(outcome: &SearchOutcome) -> (u8, f64, f64) {
    match outcome
        .feasible
        .iter()
        .map(|f| (f.system.initiation_ns.likely(), f.system.delay_ns.likely()))
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    {
        Some((ii, delay)) => (0, ii, delay),
        None => (1, f64::INFINITY, f64::INFINITY),
    }
}

fn better(a: &SearchOutcome, b: &SearchOutcome) -> bool {
    score(a) < score(b)
}

/// Greedily reassigns each on-chip memory block to the chip that gives the
/// best exploration outcome, one block at a time.
///
/// Off-the-shelf memories are left alone (they have no chip). Returns the
/// original partitioning unchanged if nothing improves.
///
/// # Errors
///
/// Propagates any [`ChopError`] from the underlying explorations.
pub fn best_memory_assignment(
    session: &Session,
    heuristic: Heuristic,
) -> Result<Advice, ChopError> {
    let mut best_partitioning = session.partitioning().clone();
    let mut best_outcome = session.explore(heuristic)?;
    let mut examined = 1usize;
    let memory_count = best_partitioning.memories().len();
    for mi in 0..memory_count {
        let id = MemoryId::new(mi as u32);
        if best_partitioning.memories()[mi].placement() != MemoryPlacement::OnChip {
            continue;
        }
        let chip_count = best_partitioning.chips().len();
        for c in 0..chip_count {
            let chip = ChipId::new(c as u32);
            let Ok(candidate) = best_partitioning.with_memory_on_chip(id, chip) else {
                continue;
            };
            if candidate == best_partitioning {
                continue;
            }
            let outcome =
                session.clone().try_with_partitioning(candidate.clone())?.explore(heuristic)?;
            examined += 1;
            if better(&outcome, &best_outcome) {
                best_outcome = outcome;
                best_partitioning = candidate;
            }
        }
    }
    Ok(Advice {
        partitioning: best_partitioning,
        outcome: best_outcome,
        candidates_examined: examined,
    })
}

/// Greedy operation migration: repeatedly tries moving boundary operations
/// to the partition on the other side of the cut and keeps the best
/// improving move, up to `max_moves` moves.
///
/// A node is a *boundary* node if one of its edges crosses partitions.
/// Moves that would empty a partition or create mutual data dependency are
/// skipped automatically.
///
/// # Errors
///
/// Propagates any [`ChopError`] from the underlying explorations.
pub fn improve_by_migration(
    session: &Session,
    heuristic: Heuristic,
    max_moves: usize,
) -> Result<Advice, ChopError> {
    let mut current = session.partitioning().clone();
    let mut current_outcome = session.explore(heuristic)?;
    let mut examined = 1usize;
    for _ in 0..max_moves {
        let mut best_move: Option<(Partitioning, SearchOutcome)> = None;
        for (node, target) in boundary_moves(&current) {
            let Ok(candidate) = current.with_node_moved(node, target) else { continue };
            let outcome =
                session.clone().try_with_partitioning(candidate.clone())?.explore(heuristic)?;
            examined += 1;
            let beats_incumbent = better(&outcome, &current_outcome);
            let beats_best = best_move.as_ref().is_none_or(|(_, best)| better(&outcome, best));
            if beats_incumbent && beats_best {
                best_move = Some((candidate, outcome));
            }
        }
        match best_move {
            Some((p, o)) => {
                current = p;
                current_outcome = o;
            }
            None => break, // local optimum
        }
    }
    Ok(Advice {
        partitioning: current,
        outcome: current_outcome,
        candidates_examined: examined,
    })
}

/// Result of a [`minimum_chip_count`] sweep: the smallest feasible chip
/// count (if any) and the outcome observed at every count tried.
pub type ChipCountSweep = (Option<usize>, Vec<(usize, SearchOutcome)>);

/// Finds the smallest chip count in `1..=max_chips` whose horizontal
/// partitioning meets the session's constraints, returning it with the
/// outcomes of every count tried (the designer's first question: *how
/// many chips does this behavior need?*).
///
/// Uses the session's package for every chip (the chip set is rebuilt per
/// count). Returns `None` in the advice position when no count within the
/// limit is feasible.
///
/// # Errors
///
/// Propagates exploration errors; partitionings that cannot be *built*
/// for some count (more chips than operations) simply end the sweep.
///
/// # Examples
///
/// ```
/// use chop_core::advise::minimum_chip_count;
/// use chop_core::experiments::{experiment2_session, Exp2Config};
/// use chop_core::Heuristic;
///
/// let session = experiment2_session(&Exp2Config { partitions: 1, package: 1 })?;
/// let (best, tried) = minimum_chip_count(&session, Heuristic::Iterative, 3)?;
/// assert_eq!(best, Some(1)); // the AR filter fits one chip at 20 µs
/// assert!(!tried.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn minimum_chip_count(
    session: &Session,
    heuristic: Heuristic,
    max_chips: usize,
) -> Result<ChipCountSweep, ChopError> {
    use crate::spec::PartitioningBuilder;
    let mut tried = Vec::new();
    let base = session.partitioning();
    let package = base.chips().chip(chop_library::ChipId::new(0)).clone();
    for k in 1..=max_chips {
        if k > base.dfg().len() {
            break;
        }
        let chips = chop_library::ChipSet::uniform(package.clone(), k);
        let mut builder =
            PartitioningBuilder::new(base.dfg().clone(), chips).split_horizontal(k);
        // Carry the memory blocks over; on-chip blocks whose chip no
        // longer exists are clamped onto the last chip.
        for (mi, mem) in base.memories().iter().enumerate() {
            let assignment =
                match base.memory_assignment(chop_library::MemoryId::new(mi as u32)) {
                    crate::spec::MemoryAssignment::OnChip(c) => {
                        let clamped = c.index().min(k - 1);
                        crate::spec::MemoryAssignment::OnChip(chop_library::ChipId::new(
                            clamped as u32,
                        ))
                    }
                    external @ crate::spec::MemoryAssignment::External => external,
                };
            builder = builder.with_memory(mem.clone(), assignment);
        }
        let Ok(partitioning) = builder.build() else {
            break;
        };
        let outcome =
            session.clone().try_with_partitioning(partitioning)?.explore(heuristic)?;
        let feasible = !outcome.feasible.is_empty();
        tried.push((k, outcome));
        if feasible {
            return Ok((Some(k), tried));
        }
    }
    Ok((None, tried))
}

/// Candidate `(node, target partition)` moves: every node with a crossing
/// edge, toward each neighbouring partition.
fn boundary_moves(p: &Partitioning) -> Vec<(chop_dfg::NodeId, PartitionId)> {
    let dfg = p.dfg();
    let grouping = p.grouping();
    let mut moves = Vec::new();
    for (_, e) in dfg.edges() {
        let sg = grouping.group_of(e.src());
        let dg = grouping.group_of(e.dst());
        if sg != dg {
            moves.push((e.src(), PartitionId::new(dg as u32)));
            moves.push((e.dst(), PartitionId::new(sg as u32)));
        }
    }
    moves.sort_by_key(|(n, t)| (n.index(), t.index()));
    moves.dedup();
    moves
}

#[cfg(test)]
mod tests {
    use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
    use chop_dfg::{benchmarks, DfgBuilder, MemoryRef, Operation};
    use chop_library::standard::{example_on_chip_ram, table1_library, table2_packages};
    use chop_library::ChipSet;
    use chop_stat::units::{Bits, Nanos};

    use super::*;
    use crate::feasibility::Constraints;
    use crate::spec::{MemoryAssignment, PartitioningBuilder};

    fn memory_workload() -> chop_dfg::Dfg {
        // Two halves; the first reads M0 heavily, the second is pure
        // datapath — M0 clearly belongs near partition 1.
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let m = MemoryRef::new(0);
        let addr = b.node(Operation::Input, w);
        let r1 = b.node(Operation::MemRead(m), w);
        let r2 = b.node(Operation::MemRead(m), w);
        b.connect(addr, r1).unwrap();
        b.connect(addr, r2).unwrap();
        let s1 = b.node(Operation::Add, w);
        b.connect(r1, s1).unwrap();
        b.connect(r2, s1).unwrap();
        let x = b.node(Operation::Input, w);
        let p1 = b.node(Operation::Mul, w);
        b.connect(s1, p1).unwrap();
        b.connect(x, p1).unwrap();
        let p2 = b.node(Operation::Mul, w);
        b.connect(p1, p2).unwrap();
        b.connect(x, p2).unwrap();
        let o = b.node(Operation::Output, w);
        b.connect(p2, o).unwrap();
        b.build().unwrap()
    }

    fn memory_session(mem_chip: u32) -> Session {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
        let p = PartitioningBuilder::new(memory_workload(), chips)
            .split_horizontal(2)
            .with_memory(example_on_chip_ram(), MemoryAssignment::OnChip(ChipId::new(mem_chip)))
            .build()
            .unwrap();
        Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap(),
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(60_000.0), Nanos::new(90_000.0)),
        )
    }

    #[test]
    fn memory_advice_never_worse_than_start() {
        let session = memory_session(1); // deliberately far from the reads
        let base = session.explore(Heuristic::Iterative).unwrap();
        let advice = best_memory_assignment(&session, Heuristic::Iterative).unwrap();
        assert!(advice.candidates_examined >= 2);
        assert!(score(&advice.outcome) <= score(&base));
    }

    #[test]
    fn migration_never_worse_than_start() {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips)
            .split_horizontal(2)
            .build()
            .unwrap();
        let session = Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        let base = session.explore(Heuristic::Iterative).unwrap();
        let advice = improve_by_migration(&session, Heuristic::Iterative, 3).unwrap();
        assert!(score(&advice.outcome) <= score(&base));
        assert!(advice.candidates_examined >= 1);
    }

    #[test]
    fn minimum_chip_count_matches_experiments() {
        use crate::experiments::{experiment2_session, Exp2Config};
        // Exp-2: feasible on one chip at 20 µs.
        let s = experiment2_session(&Exp2Config { partitions: 1, package: 1 }).unwrap();
        let (best, tried) = minimum_chip_count(&s, Heuristic::Iterative, 3).unwrap();
        assert_eq!(best, Some(1));
        assert_eq!(tried.len(), 1);

        // Tighten performance to 10 µs: one chip can no longer keep up,
        // but two or three can (II 20 × ~370 ns ≈ 7.4 µs).
        let tight = s
            .try_with_constraints(crate::feasibility::Constraints::new(
                chop_stat::units::Nanos::new(10_000.0),
                chop_stat::units::Nanos::new(30_000.0),
            ))
            .unwrap();
        let (best, tried) = minimum_chip_count(&tight, Heuristic::Iterative, 3).unwrap();
        assert_eq!(
            best,
            Some(2),
            "tried: {:?}",
            tried.iter().map(|(k, o)| (*k, o.feasible.len())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn minimum_chip_count_reports_failure() {
        use crate::experiments::{experiment1_session, Exp1Config};
        let s = experiment1_session(&Exp1Config { partitions: 1, package: 1 })
            .unwrap()
            .try_with_constraints(crate::feasibility::Constraints::new(
                chop_stat::units::Nanos::new(100.0),
                chop_stat::units::Nanos::new(100.0),
            ))
            .unwrap();
        let (best, tried) = minimum_chip_count(&s, Heuristic::Iterative, 2).unwrap();
        assert_eq!(best, None);
        assert_eq!(tried.len(), 2);
    }

    #[test]
    fn boundary_moves_only_touch_cut_nodes() {
        let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips)
            .split_horizontal(2)
            .build()
            .unwrap();
        for (node, target) in boundary_moves(&p) {
            let own = p.grouping().group_of(node);
            assert_ne!(own, target.index(), "move must change partition");
            // The node really has a crossing edge.
            let crossing = p
                .dfg()
                .succ_nodes(node)
                .chain(p.dfg().pred_nodes(node))
                .any(|n| p.grouping().group_of(n) != own);
            assert!(crossing);
        }
    }
}
