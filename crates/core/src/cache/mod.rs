//! Content-addressed memoization of per-partition BAD predictions —
//! a sharded, lock-striped concurrent cache tier with optional snapshot
//! persistence.
//!
//! CHOP is interactive: the designer edits one partition, asks again, and
//! should not pay for re-predicting the other partitions. The exploration
//! engine therefore keys each partition's (predicted, level-1-pruned)
//! design list by a stable fingerprint of everything the prediction
//! depends on — the partition's [structural hash](chop_dfg::hash), the
//! chip's usable area and the predictor/clock/style/constraint
//! configuration — and memoizes the result in a [`PredictionCache`].
//!
//! The cache is shared between the sessions of one what-if dialogue *and*
//! between every session of a `chop serve` process:
//! [`Session::repartition`](crate::Session::repartition) keeps the cache
//! of the parent session, so a follow-up [`explore`](crate::Session::explore)
//! re-predicts only the partitions whose fingerprint changed.
//!
//! # Sharding
//!
//! Parallel prediction (`--jobs 8`) and concurrent service sessions used
//! to serialize on one mutex around one map. The cache is now split into
//! a power-of-two number of **shards**, each an independently locked LRU:
//! a lookup locks only the shard its fingerprint maps to, so threads
//! working on different partitions proceed without contention. Shard
//! selection is a pure function of the key (a Fibonacci-hash of the
//! already well-mixed fingerprint), so *what* is cached never depends on
//! the shard count — only lock contention and the eviction neighborhoods
//! do. Exploration digests are byte-identical at any shard count and any
//! `--jobs`, with the cache cold, warm, or snapshot-restored: the cache
//! memoizes pure predictions, it never changes them.
//!
//! Hit/miss/eviction counters are per-shard atomics aggregated on read,
//! so [`PredictionCache::stats`] never takes a lock.
//!
//! # Capacity
//!
//! Entries are bounded ([`DEFAULT_CACHE_CAPACITY`] total) with
//! least-recently-used eviction *per shard*: each shard holds at most
//! `ceil(capacity / shards)` entries, so the total bound is exact when
//! the shard count divides the capacity and within one entry per shard
//! otherwise. A capacity of **zero is the documented "cache disabled"
//! mode**: lookups miss (counted, so `hits + misses` still reconciles
//! with lookups) and inserts return immediately — no lock is taken and
//! no insert-then-evict churn happens on either path.
//!
//! # Snapshots
//!
//! [`snapshot`] persists the cache to a versioned, CRC'd binary file and
//! re-warms it at startup, so a restarted (or failed-over) `chop serve`
//! node starts with yesterday's predictions instead of an empty map.

pub mod snapshot;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use chop_bad::prune::PredictionStats;
use chop_bad::PredictedDesign;
use serde::{Deserialize, Serialize};

/// Default bound on the number of cached partition entries (total across
/// all shards).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Default shard count when the creator does not size the stripe to its
/// thread count (see [`recommended_shards`]).
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// The shard count recommended for a process running `jobs` worker
/// threads: the next power of two at or above `4 × jobs`, so even with
/// every thread in the cache at once the expected collision rate on any
/// one lock stays low. `recommended_shards(0)` is treated as one job.
#[must_use]
pub fn recommended_shards(jobs: usize) -> usize {
    (4 * jobs.max(1)).next_power_of_two()
}

/// Aggregate cache counters.
///
/// `hits`, `misses` and `evictions` are lifetime counters of the cache
/// (monotonically increasing); `entries` and `bytes` are point-in-time
/// gauges. A [`SearchOutcome`](crate::SearchOutcome) reports the counter
/// *delta* of its run via [`CacheStats::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the predictor.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident (design structs only; heap
    /// detail inside designs is estimated, not measured).
    pub bytes: u64,
}

impl CacheStats {
    /// The counters accumulated since `earlier` (for `hits`/`misses`/
    /// `evictions`); `entries`/`bytes` are reported as the current gauges.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
            bytes: self.bytes,
        }
    }
}

/// One memoized prediction: the pruned design list and its Table 3/5
/// statistics.
#[derive(Debug, Clone)]
struct Entry {
    designs: Arc<[PredictedDesign]>,
    stats: PredictionStats,
    bytes: u64,
    last_used: u64,
}

/// The locked interior of one shard.
#[derive(Debug, Default)]
struct ShardMap {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// One lock stripe: an independently locked LRU plus its lock-free
/// counter block. Counters are only *written* while the shard lock is
/// held (so they stay consistent with the map), but read without it.
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<ShardMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

impl Shard {
    fn lock(&self) -> std::sync::MutexGuard<'_, ShardMap> {
        // A worker that panicked while holding the lock cannot leave the
        // map structurally broken (all mutations are single-step inserts/
        // removes), so recover instead of propagating the poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bounded, thread-safe, sharded LRU cache of per-partition
/// predictions.
///
/// Lookup keys are the content-addressed fingerprints computed by the
/// exploration engine (see the [module docs](self)). The cache hands out
/// `Arc<[PredictedDesign]>` so hits share one allocation with every
/// session and worker thread that uses them.
#[derive(Debug)]
pub struct PredictionCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard counts are powers of two so selection
    /// is a mask.
    shard_mask: usize,
    /// Per-shard entry bound (`ceil(capacity / shards)`).
    per_shard: usize,
    /// The requested total capacity (0 = disabled).
    capacity: usize,
    /// Lifetime count of committed inserts — the snapshot cadence
    /// trigger (`chop serve` writes a snapshot every N insertions).
    insertions: AtomicU64,
    /// Misses recorded while the cache is disabled (capacity 0), kept
    /// outside the shards so the disabled fast path touches exactly one
    /// atomic.
    disabled_misses: AtomicU64,
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictionCache {
    /// Creates a cache bounded at [`DEFAULT_CACHE_CAPACITY`] entries over
    /// [`DEFAULT_CACHE_SHARDS`] shards.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a cache bounded at `capacity` entries over
    /// [`DEFAULT_CACHE_SHARDS`] shards. A capacity of zero disables
    /// memoization (see the [module docs](self)).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_config(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// Creates a cache bounded at `capacity` entries striped over
    /// `shards` locks. The shard count is rounded up to a power of two
    /// and clamped to at least 1; pass `1` for the single-mutex layout
    /// (the pre-sharding baseline, and the configuration whose eviction
    /// order is exact global LRU). See [`recommended_shards`] for sizing
    /// to a thread count.
    #[must_use]
    pub fn with_config(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let mut stripe = Vec::with_capacity(shard_count);
        stripe.resize_with(shard_count, Shard::default);
        Self {
            shards: stripe.into_boxed_slice(),
            shard_mask: shard_count - 1,
            per_shard: capacity.div_ceil(shard_count),
            capacity,
            insertions: AtomicU64::new(0),
            disabled_misses: AtomicU64::new(0),
        }
    }

    /// Whether memoization is active (capacity above zero).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The shard a key lives in. Fingerprints are already well mixed, but
    /// a Fibonacci multiply costs nothing and protects the stripe against
    /// keys that differ only in low bits.
    fn shard_of(&self, key: u64) -> &Shard {
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize & self.shard_mask]
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<(Arc<[PredictedDesign]>, PredictionStats)> {
        if !self.is_enabled() {
            // Disabled fast path: count the miss (so hits + misses still
            // equals lookups) without touching any lock.
            self.disabled_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard_of(key);
        let mut inner = shard.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let out = (Arc::clone(&entry.designs), entry.stats);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used
    /// entries of its shard beyond the per-shard bound.
    pub fn insert(&self, key: u64, designs: Arc<[PredictedDesign]>, stats: PredictionStats) {
        if !self.is_enabled() {
            return;
        }
        let bytes = approximate_bytes(&designs);
        let shard = self.shard_of(key);
        let mut inner = shard.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) =
            inner.map.insert(key, Entry { designs, stats, bytes, last_used: tick })
        {
            shard.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        } else {
            shard.entries.fetch_add(1, Ordering::Relaxed);
        }
        shard.bytes.fetch_add(bytes, Ordering::Relaxed);
        while inner.map.len() > self.per_shard {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                shard.bytes.fetch_sub(evicted.bytes, Ordering::Relaxed);
                shard.entries.fetch_sub(1, Ordering::Relaxed);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the cache counters and gauges,
    /// aggregated across shards from their atomic counter blocks — no
    /// lock is taken. Concurrent mutations may be partially visible (the
    /// aggregate is a moment-in-time sum per counter, not a cross-shard
    /// atomic snapshot); each individual counter is exact.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            misses: self.disabled_misses.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            stats.evictions += shard.evictions.load(Ordering::Relaxed);
            stats.entries += shard.entries.load(Ordering::Relaxed);
            stats.bytes += shard.bytes.load(Ordering::Relaxed);
        }
        stats
    }

    /// Resident entries per shard, in shard order — the occupancy view
    /// `--stats-json` and the service `stats` response surface. Lock-free.
    #[must_use]
    pub fn shard_occupancy(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.entries.load(Ordering::Relaxed)).collect()
    }

    /// Number of lock stripes.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime count of committed inserts (snapshot cadence trigger).
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.load(Ordering::Relaxed) as usize).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The total entry-capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every resident entry as `(key, designs, stats)` — what a snapshot
    /// writes. Shards are locked one at a time, so the export is
    /// consistent per shard but not across shards; for a warm-start file
    /// that is exactly as good and never stalls concurrent lookups.
    #[must_use]
    pub fn export(&self) -> Vec<(u64, Arc<[PredictedDesign]>, PredictionStats)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let inner = shard.lock();
            for (&key, entry) in &inner.map {
                out.push((key, Arc::clone(&entry.designs), entry.stats));
            }
        }
        // Shard-internal HashMap order is nondeterministic; sort so two
        // exports of the same contents are byte-identical on disk.
        out.sort_unstable_by_key(|(key, _, _)| *key);
        out
    }
}

/// Approximate resident size of a design list. `PredictedDesign` owns
/// small maps and strings whose heap size is not walked; the struct size
/// plus a fixed per-design overhead is close enough for an eviction gauge.
fn approximate_bytes(designs: &[PredictedDesign]) -> u64 {
    const PER_DESIGN_HEAP_GUESS: usize = 160;
    ((std::mem::size_of::<PredictedDesign>() + PER_DESIGN_HEAP_GUESS) * designs.len()
        + std::mem::size_of::<Entry>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> (Arc<[PredictedDesign]>, PredictionStats) {
        let designs: Arc<[PredictedDesign]> = Vec::new().into();
        let _ = n;
        (designs, PredictionStats { total: n, feasible: n, non_inferior: n })
    }

    #[test]
    fn miss_then_hit() {
        let cache = PredictionCache::new();
        assert!(cache.get(1).is_none());
        let (d, s) = entry(3);
        cache.insert(1, d, s);
        let (_, got) = cache.get(1).expect("hit");
        assert_eq!(got.total, 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_drops_oldest() {
        // One shard = exact global LRU (the pre-sharding baseline).
        let cache = PredictionCache::with_config(2, 1);
        for key in 0..3u64 {
            let (d, s) = entry(key as usize);
            cache.insert(key, d, s);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Key 0 was least recently used.
        assert!(cache.get(0).is_none());
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn hit_refreshes_recency() {
        let cache = PredictionCache::with_config(2, 1);
        let (d, s) = entry(0);
        cache.insert(0, d, s);
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        assert!(cache.get(0).is_some()); // refresh 0 → 1 becomes LRU
        let (d, s) = entry(2);
        cache.insert(2, d, s);
        assert!(cache.get(0).is_some());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn zero_capacity_is_the_documented_disabled_mode() {
        let cache = PredictionCache::with_capacity(0);
        assert!(!cache.is_enabled());
        let (d, s) = entry(1);
        cache.insert(9, d, s);
        assert!(cache.is_empty());
        assert!(cache.get(9).is_none());
        // No insert-then-evict churn: the insert never landed, so nothing
        // was evicted — and the miss is still counted, so lookups
        // reconcile (hits + misses = 1 get).
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(cache.insertions(), 0);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let cache = PredictionCache::new();
        let before = cache.stats();
        assert!(cache.get(7).is_none());
        let (d, s) = entry(1);
        cache.insert(7, d, s);
        assert!(cache.get(7).is_some());
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (1, 1, 1));
        assert!(delta.bytes > 0);
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let cache = PredictionCache::new();
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        let first = cache.stats().bytes;
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        assert_eq!(cache.stats().bytes, first);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn shard_count_rounds_to_powers_of_two() {
        assert_eq!(PredictionCache::with_config(64, 0).shard_count(), 1);
        assert_eq!(PredictionCache::with_config(64, 1).shard_count(), 1);
        assert_eq!(PredictionCache::with_config(64, 3).shard_count(), 4);
        assert_eq!(PredictionCache::with_config(64, 8).shard_count(), 8);
        assert_eq!(recommended_shards(1), 4);
        assert_eq!(recommended_shards(8), 32);
        assert_eq!(recommended_shards(0), 4);
    }

    #[test]
    fn sharded_cache_spreads_keys_and_reports_occupancy() {
        let cache = PredictionCache::with_config(1024, 8);
        for key in 0..256u64 {
            let (d, s) = entry(key as usize);
            cache.insert(key, d, s);
        }
        let occupancy = cache.shard_occupancy();
        assert_eq!(occupancy.len(), 8);
        assert_eq!(occupancy.iter().sum::<u64>(), 256);
        // A stable hash spreads 256 sequential keys over all 8 shards.
        assert!(
            occupancy.iter().all(|&n| n > 0),
            "every shard should hold something, got {occupancy:?}"
        );
        assert_eq!(cache.insertions(), 256);
    }

    #[test]
    fn export_is_sorted_and_complete() {
        let cache = PredictionCache::with_config(1024, 4);
        for key in [9_u64, 3, 7, 1] {
            let (d, s) = entry(key as usize);
            cache.insert(key, d, s);
        }
        let export = cache.export();
        let keys: Vec<u64> = export.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
        assert_eq!(export[0].2.total, 1);
    }
}
