//! Versioned, CRC'd binary snapshots of the prediction cache.
//!
//! A snapshot lets a restarted (or failed-over) `chop serve` process
//! warm-start its [`PredictionCache`](super::PredictionCache) instead of
//! re-predicting every partition from scratch. The file format mirrors
//! the discipline of the session journal:
//!
//! ```text
//! CHOPCS1\n                                 ← 8-byte magic + version
//! [u32 len][u32 crc32][payload: len bytes]  ← one record per cache entry
//! [u32 len][u32 crc32][payload]
//! ...
//! ```
//!
//! All integers are little-endian; the CRC (IEEE 802.3, the same
//! polynomial as the journal) covers the payload only. Each payload is a
//! self-contained cache entry: the content-addressed fingerprint, the
//! prediction statistics and every pruned [`PredictedDesign`], encoded
//! field by field (the vendored `serde` stub is a no-op, so the codec is
//! hand-rolled and private to this file).
//!
//! # Recovery rules
//!
//! Loading is **lenient about the tail and strict about everything
//! else**: a missing file warms nothing, a wrong magic loads nothing
//! (the file is not ours or from an incompatible version), and a record
//! that is short, fails its CRC, or does not decode ends the load — every
//! complete record *before* it is kept. A torn tail is exactly what a
//! crash mid-write produces, and dropping it costs only a few re-
//! predictions. Writes never tear the *file* itself: the snapshot is
//! written to a temp file, fsync'd, atomically renamed over the target,
//! and the directory fsync'd, so readers see either the old snapshot or
//! the new one, never a hybrid.
//!
//! Restored entries are inserted through the normal
//! [`insert`](super::PredictionCache::insert) path, so a snapshot larger
//! than the cache capacity simply evicts down to the bound, and digests
//! are unaffected by warm-starting (the cache memoizes pure predictions).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use chop_bad::area::PlaSpec;
use chop_bad::prune::PredictionStats;
use chop_bad::{DesignDetail, DesignStyle, PredictedDesign};
use chop_dfg::OpClass;
use chop_library::ModuleSet;
use chop_sched::ResourceMap;
use chop_stat::units::{Bits, Cycles};
use chop_stat::Estimate;

use super::PredictionCache;

/// Magic + format version prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CHOPCS1\n";

/// Outcome of writing a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotWritten {
    /// Cache entries persisted.
    pub entries: usize,
    /// Bytes of the finished snapshot file.
    pub bytes: u64,
}

/// Outcome of loading a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoaded {
    /// Complete records restored into the cache.
    pub entries: usize,
    /// Whether the load stopped early at a torn or corrupt tail record
    /// (the entries before it were still restored).
    pub truncated: bool,
}

/// Writes every resident cache entry to `path` atomically
/// (tmp + fsync + rename + directory fsync).
///
/// # Errors
///
/// Returns any I/O error from creating, writing, syncing or renaming the
/// temp file. On error the target file is left untouched.
pub fn write_snapshot(path: &Path, cache: &PredictionCache) -> io::Result<SnapshotWritten> {
    let export = cache.export();
    let mut body = Vec::with_capacity(64 * export.len() + SNAPSHOT_MAGIC.len());
    body.extend_from_slice(SNAPSHOT_MAGIC);
    for (key, designs, stats) in &export {
        let payload = encode_entry(*key, designs, *stats);
        let len = u32::try_from(payload.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "snapshot record exceeds 4 GiB")
        })?;
        body.extend_from_slice(&len.to_le_bytes());
        body.extend_from_slice(&crc32(&payload).to_le_bytes());
        body.extend_from_slice(&payload);
    }

    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        file.write_all(&body)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Make the rename itself durable. Directory fsync can be
        // unsupported on exotic filesystems; the rename already happened,
        // so treat that as best-effort.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(SnapshotWritten { entries: export.len(), bytes: body.len() as u64 })
}

/// Loads a snapshot from `path` into `cache` (through the normal insert
/// path, so capacity bounds apply). A missing file restores nothing and
/// is not an error; see the [module docs](self) for the recovery rules.
///
/// # Errors
///
/// Returns an I/O error only if the file exists but cannot be read.
pub fn load_snapshot(path: &Path, cache: &PredictionCache) -> io::Result<SnapshotLoaded> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut data)?;
        }
        Err(err) if err.kind() == io::ErrorKind::NotFound => {
            return Ok(SnapshotLoaded::default());
        }
        Err(err) => return Err(err),
    }
    if data.len() < SNAPSHOT_MAGIC.len() || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        // Not a snapshot we understand; warm nothing rather than guess.
        return Ok(SnapshotLoaded { entries: 0, truncated: !data.is_empty() });
    }

    let mut out = SnapshotLoaded::default();
    let mut at = SNAPSHOT_MAGIC.len();
    while at < data.len() {
        let Some(header) = data.get(at..at + 8) else {
            out.truncated = true;
            break;
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let Some(payload) = data.get(at + 8..at + 8 + len) else {
            out.truncated = true;
            break;
        };
        if crc32(payload) != crc {
            out.truncated = true;
            break;
        }
        let Some((key, designs, stats)) = decode_entry(payload) else {
            out.truncated = true;
            break;
        };
        cache.insert(key, designs.into(), stats);
        out.entries += 1;
        at += 8 + len;
    }
    Ok(out)
}

/// IEEE 802.3 CRC-32 (the polynomial the session journal uses), computed
/// bitwise — snapshots are written rarely and read once at startup, so a
/// table is not worth the bytes.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Entry codec (private): field-by-field little-endian encoding.
// ---------------------------------------------------------------------

fn encode_entry(key: u64, designs: &[PredictedDesign], stats: PredictionStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 128 * designs.len());
    put_u64(&mut out, key);
    put_u64(&mut out, stats.total as u64);
    put_u64(&mut out, stats.feasible as u64);
    put_u64(&mut out, stats.non_inferior as u64);
    put_u32(&mut out, designs.len() as u32);
    for design in designs {
        encode_design(&mut out, design);
    }
    out
}

fn encode_design(out: &mut Vec<u8>, design: &PredictedDesign) {
    out.push(match design.style() {
        DesignStyle::Pipelined => 0,
        DesignStyle::NonPipelined => 1,
    });
    put_u32(out, design.module_set().len() as u32);
    for (class, name) in design.module_set().iter() {
        out.push(class_index(class));
        put_u32(out, name.len() as u32);
        out.extend_from_slice(name.as_bytes());
    }
    let allocation: Vec<(OpClass, usize)> = design.allocation().iter().collect();
    put_u32(out, allocation.len() as u32);
    for (class, count) in allocation {
        out.push(class_index(class));
        put_u64(out, count as u64);
    }
    put_u64(out, design.initiation_interval().value());
    put_u64(out, design.latency().value());
    put_estimate(out, design.area());
    put_estimate(out, design.clock_overhead());
    put_estimate(out, design.power());
    let detail = design.detail();
    put_u64(out, detail.stages);
    put_u64(out, detail.register_bits.value());
    put_u64(out, detail.mux_count);
    put_u32(out, detail.controller.inputs());
    put_u32(out, detail.controller.outputs());
    put_u32(out, detail.controller.terms());
    put_u32(out, design.memory_bandwidth().len() as u32);
    for (&block, &accesses) in design.memory_bandwidth() {
        put_u32(out, block);
        put_u64(out, accesses);
    }
}

fn decode_entry(payload: &[u8]) -> Option<(u64, Vec<PredictedDesign>, PredictionStats)> {
    let mut at = Cursor { data: payload, at: 0 };
    let key = at.u64()?;
    let stats = PredictionStats {
        total: usize::try_from(at.u64()?).ok()?,
        feasible: usize::try_from(at.u64()?).ok()?,
        non_inferior: usize::try_from(at.u64()?).ok()?,
    };
    let n = at.u32()? as usize;
    // Cap the pre-allocation by what the payload could possibly hold so a
    // corrupt count cannot balloon memory before the decode fails.
    let mut designs = Vec::with_capacity(n.min(payload.len() / 8 + 1));
    for _ in 0..n {
        designs.push(decode_design(&mut at)?);
    }
    // Trailing garbage means the record was not produced by this encoder.
    if at.at != payload.len() {
        return None;
    }
    Some((key, designs, stats))
}

fn decode_design(at: &mut Cursor<'_>) -> Option<PredictedDesign> {
    let style = match at.u8()? {
        0 => DesignStyle::Pipelined,
        1 => DesignStyle::NonPipelined,
        _ => return None,
    };
    let n_modules = at.u32()? as usize;
    let mut choices = Vec::with_capacity(n_modules.min(OpClass::ALL.len()));
    for _ in 0..n_modules {
        let class = class_from_index(at.u8()?)?;
        let len = at.u32()? as usize;
        let name = std::str::from_utf8(at.bytes(len)?).ok()?;
        choices.push((class, name.to_owned()));
    }
    let n_alloc = at.u32()? as usize;
    let mut allocation = ResourceMap::new();
    for _ in 0..n_alloc {
        let class = class_from_index(at.u8()?)?;
        let count = usize::try_from(at.u64()?).ok()?;
        allocation.set(class, count);
    }
    let ii = at.u64()?;
    let latency = at.u64()?;
    // PredictedDesign::new panics on these; a corrupt record must fail
    // the decode instead.
    if ii < 1 || ii > latency {
        return None;
    }
    let area = at.estimate()?;
    let clock_overhead = at.estimate()?;
    let power = at.estimate()?;
    let stages = at.u64()?;
    let register_bits = at.u64()?;
    let mux_count = at.u64()?;
    let controller = PlaSpec::new(at.u32()?, at.u32()?, at.u32()?);
    let n_mem = at.u32()? as usize;
    let mut memory_bandwidth = BTreeMap::new();
    for _ in 0..n_mem {
        let block = at.u32()?;
        let accesses = at.u64()?;
        memory_bandwidth.insert(block, accesses);
    }
    Some(PredictedDesign::new(
        style,
        ModuleSet::from_choices(choices),
        allocation,
        Cycles::new(ii),
        Cycles::new(latency),
        area,
        clock_overhead,
        power,
        DesignDetail { stages, register_bits: Bits::new(register_bits), mux_count, controller },
        memory_bandwidth,
    ))
}

fn class_index(class: OpClass) -> u8 {
    OpClass::ALL.iter().position(|c| *c == class).expect("OpClass::ALL covers every class")
        as u8
}

fn class_from_index(index: u8) -> Option<OpClass> {
    OpClass::ALL.get(index as usize).copied()
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_estimate(out: &mut Vec<u8>, e: Estimate) {
    out.extend_from_slice(&e.lo().to_le_bytes());
    out.extend_from_slice(&e.likely().to_le_bytes());
    out.extend_from_slice(&e.hi().to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        let slice = self.data.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn estimate(&mut self) -> Option<Estimate> {
        let lo = self.f64()?;
        let likely = self.f64()?;
        let hi = self.f64()?;
        // Estimate::new rejects non-finite or mis-ordered triplets; a
        // corrupt record fails the decode rather than panicking.
        Estimate::new(lo, likely, hi).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(ii: u64, area: f64) -> PredictedDesign {
        PredictedDesign::new(
            DesignStyle::Pipelined,
            ModuleSet::from_choices([(OpClass::Addition, "add_fast")]),
            [(OpClass::Addition, 2usize)].into_iter().collect(),
            Cycles::new(ii),
            Cycles::new(ii + 5),
            Estimate::new(area - 1.0, area, area + 2.0).unwrap(),
            Estimate::exact(12.5),
            Estimate::exact(80.0),
            DesignDetail {
                stages: ii + 5,
                register_bits: Bits::new(48),
                mux_count: 12,
                controller: PlaSpec::new(4, 6, 9),
            },
            [(3u32, 7u64)].into_iter().collect(),
        )
    }

    #[test]
    fn entry_codec_roundtrips() {
        let designs = vec![design(2, 100.0), design(4, 220.0)];
        let stats = PredictionStats { total: 9, feasible: 5, non_inferior: 2 };
        let payload = encode_entry(42, &designs, stats);
        let (key, decoded, got) = decode_entry(&payload).expect("decode");
        assert_eq!(key, 42);
        assert_eq!(got, stats);
        assert_eq!(decoded, designs);
    }

    #[test]
    fn corrupt_payload_fails_decode_not_panics() {
        let payload = encode_entry(1, &[design(2, 100.0)], PredictionStats::default());
        for at in 0..payload.len() {
            let mut bad = payload.clone();
            bad[at] ^= 0xFF;
            // Any single-byte corruption either still decodes (harmless
            // field change) or returns None — never panics.
            let _ = decode_entry(&bad);
        }
        // Truncations at every length must also fail gracefully.
        for len in 0..payload.len() {
            assert!(decode_entry(&payload[..len]).is_none());
        }
    }

    #[test]
    fn crc_matches_known_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn snapshot_file_roundtrips_and_recovers_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "chop-snapshot-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");

        let cache = PredictionCache::with_config(64, 4);
        for key in 0..10u64 {
            cache.insert(
                key,
                vec![design(2 + key, 100.0 + key as f64)].into(),
                PredictionStats { total: 3, feasible: 2, non_inferior: 1 },
            );
        }
        let written = write_snapshot(&path, &cache).expect("write");
        assert_eq!(written.entries, 10);

        let warm = PredictionCache::with_config(64, 2);
        let loaded = load_snapshot(&path, &warm).expect("load");
        assert_eq!((loaded.entries, loaded.truncated), (10, false));
        for key in 0..10u64 {
            let (designs, _) = warm.get(key).expect("restored");
            assert_eq!(designs[0].initiation_interval().value(), 2 + key);
        }

        // Tear the tail: drop the last 5 bytes. Every complete record
        // before the tear must still load.
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 5);
        std::fs::write(&path, &data).unwrap();
        let torn = PredictionCache::with_config(64, 2);
        let loaded = load_snapshot(&path, &torn).expect("load torn");
        assert_eq!(loaded.entries, 9);
        assert!(loaded.truncated);

        // Wrong magic loads nothing.
        std::fs::write(&path, b"NOTASNAP0000").unwrap();
        let none = PredictionCache::new();
        let loaded = load_snapshot(&path, &none).expect("load foreign");
        assert_eq!(loaded.entries, 0);
        assert!(loaded.truncated);
        assert!(none.is_empty());

        // Missing file restores nothing, not an error.
        let missing = load_snapshot(&dir.join("absent.snap"), &none).expect("missing");
        assert_eq!(missing, SnapshotLoaded::default());

        std::fs::remove_dir_all(&dir).ok();
    }
}
