//! Task creation for a custom-designed processor style — the third
//! application the paper's abstract names ("behavioral partitioning,
//! system-level advising and task creation based on a custom-designed
//! processor style").
//!
//! Given a fixed processor datapath (a functional-unit allocation — the
//! "custom-designed processor style") and a per-task cycle budget, the
//! behavior is sliced along its topological order into *tasks*: maximal
//! contiguous sub-graphs whose resource-constrained schedule fits the
//! budget on that datapath. The resulting [`Grouping`] can be fed straight
//! back into a [`crate::Partitioning`] (tasks → partitions) or used as a
//! software-style task list for the processor.

use std::fmt;

use chop_dfg::grouping::Grouping;
use chop_dfg::{Dfg, NodeId};
use chop_sched::{list_schedule, NodeSpec, ResourceMap, ScheduleError};

/// Error from [`create_tasks`].
#[derive(Debug)]
pub enum CreateTasksError {
    /// The cycle budget is zero.
    ZeroBudget,
    /// Some single operation cannot fit the budget on this processor
    /// (its duration alone exceeds the budget).
    OperationTooLong {
        /// The offending node.
        node: NodeId,
        /// Its duration in cycles.
        duration: u64,
    },
    /// The processor lacks units for a class the behavior uses.
    Schedule(ScheduleError),
}

impl fmt::Display for CreateTasksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CreateTasksError::ZeroBudget => write!(f, "cycle budget must be positive"),
            CreateTasksError::OperationTooLong { node, duration } => write!(
                f,
                "operation {node} needs {duration} cycles, more than the whole budget"
            ),
            CreateTasksError::Schedule(e) => write!(f, "processor cannot run behavior: {e}"),
        }
    }
}

impl std::error::Error for CreateTasksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CreateTasksError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for CreateTasksError {
    fn from(e: ScheduleError) -> Self {
        CreateTasksError::Schedule(e)
    }
}

/// The created task set: the node grouping plus each task's schedule
/// length on the processor.
#[derive(Debug, Clone)]
pub struct TaskSet {
    /// Node → task assignment (tasks are groups, in execution order).
    pub grouping: Grouping,
    /// Schedule length of each task on the processor, in cycles.
    pub task_cycles: Vec<u64>,
}

impl TaskSet {
    /// Number of tasks created.
    #[must_use]
    pub fn len(&self) -> usize {
        self.task_cycles.len()
    }

    /// Whether no tasks were created (never true on success).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.task_cycles.is_empty()
    }

    /// Total sequential execution time of all tasks, in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.task_cycles.iter().sum()
    }
}

/// Slices `dfg` into tasks for a processor with the given functional-unit
/// allocation, such that each task's resource-constrained schedule fits
/// `cycle_budget` cycles.
///
/// Nodes are consumed in topological order, so every task only depends on
/// earlier tasks (the grouping is forward-only by construction and never
/// creates mutual dependency).
///
/// # Errors
///
/// Returns a [`CreateTasksError`] for a zero budget, an operation longer
/// than the budget, or a processor lacking a required unit class.
///
/// # Examples
///
/// ```
/// use chop_core::tasks::create_tasks;
/// use chop_dfg::{benchmarks, OpClass};
/// use chop_sched::{NodeSpec, ResourceMap};
///
/// let g = benchmarks::ar_lattice_filter();
/// let specs = NodeSpec::uniform(&g, 1);
/// let processor: ResourceMap =
///     [(OpClass::Addition, 1), (OpClass::Multiplication, 1)].into_iter().collect();
/// let tasks = create_tasks(&g, &specs, &processor, 6)?;
/// assert!(tasks.len() >= 4); // 28 single-cycle ops, ≤6 cycles per task
/// assert!(tasks.task_cycles.iter().all(|&c| c <= 6));
/// # Ok::<(), chop_core::tasks::CreateTasksError>(())
/// ```
pub fn create_tasks(
    dfg: &Dfg,
    specs: &NodeSpec,
    processor: &ResourceMap,
    cycle_budget: u64,
) -> Result<TaskSet, CreateTasksError> {
    if cycle_budget == 0 {
        return Err(CreateTasksError::ZeroBudget);
    }
    for id in dfg.node_ids() {
        let d = specs.duration(id);
        if d > cycle_budget {
            return Err(CreateTasksError::OperationTooLong { node: id, duration: d });
        }
    }
    // Whole-graph schedulability check surfaces missing units early.
    let _ = list_schedule(dfg, specs, processor)?;

    let order = dfg.topo_order();
    let mut assignment = vec![0usize; dfg.len()];
    let mut task_cycles: Vec<u64> = Vec::new();
    let mut task = 0usize;
    let mut members: Vec<NodeId> = Vec::new();
    let mut accepted_cycles = 0u64;

    let mut i = 0usize;
    while i < order.len() {
        let id = order[i];
        members.push(id);
        let cycles = task_schedule_len(dfg, specs, processor, &members)?;
        if cycles <= cycle_budget {
            assignment[id.index()] = task;
            accepted_cycles = cycles;
            i += 1;
        } else {
            members.pop();
            if members.is_empty() {
                // Cannot happen: single ops fit (checked above) and an
                // empty task accepts any node.
                return Err(CreateTasksError::OperationTooLong {
                    node: id,
                    duration: specs.duration(id),
                });
            }
            task_cycles.push(accepted_cycles);
            task += 1;
            members.clear();
            accepted_cycles = 0;
        }
    }
    if !members.is_empty() {
        task_cycles.push(accepted_cycles);
    }
    let grouping = Grouping::new(dfg, task_cycles.len().max(1), assignment)
        .expect("assignment covers every node with non-empty groups");
    Ok(TaskSet { grouping, task_cycles })
}

/// Schedule length of one candidate task: its members' induced sub-graph
/// on the processor (cross-task values are assumed staged in registers,
/// so only intra-task precedence constrains the schedule).
fn task_schedule_len(
    dfg: &Dfg,
    specs: &NodeSpec,
    processor: &ResourceMap,
    members: &[NodeId],
) -> Result<u64, CreateTasksError> {
    use chop_dfg::DfgBuilder;
    let mut b = DfgBuilder::new();
    let mut map = vec![None; dfg.len()];
    for &id in members {
        let node = dfg.node(id);
        map[id.index()] = Some(b.node(node.op(), node.width()));
    }
    for (_, e) in dfg.edges() {
        if let (Some(s), Some(d)) = (map[e.src().index()], map[e.dst().index()]) {
            b.connect_with_width(s, d, e.width()).expect("ids valid");
        }
    }
    let sub = b.build().expect("non-empty member set");
    let sub_specs = NodeSpec::from_fn(
        &sub,
        |id| {
            // Recover the original node's duration via position: members
            // were added in order.
            specs.duration(members[id.index()])
        },
        |id| sub.node(id).op().class(),
    );
    let schedule = list_schedule(&sub, &sub_specs, processor)?;
    Ok(schedule.makespan())
}

#[cfg(test)]
mod tests {
    use chop_dfg::{benchmarks, OpClass};
    use chop_sched::NodeSpec;

    use super::*;

    fn processor(adds: usize, muls: usize) -> ResourceMap {
        [(OpClass::Addition, adds), (OpClass::Multiplication, muls)].into_iter().collect()
    }

    #[test]
    fn zero_budget_rejected() {
        let g = benchmarks::fir_filter(2);
        let specs = NodeSpec::uniform(&g, 1);
        assert!(matches!(
            create_tasks(&g, &specs, &processor(1, 1), 0),
            Err(CreateTasksError::ZeroBudget)
        ));
    }

    #[test]
    fn long_operation_rejected() {
        let g = benchmarks::fir_filter(2);
        let specs = NodeSpec::uniform(&g, 10);
        assert!(matches!(
            create_tasks(&g, &specs, &processor(1, 1), 5),
            Err(CreateTasksError::OperationTooLong { .. })
        ));
    }

    #[test]
    fn missing_units_rejected() {
        let g = benchmarks::fir_filter(2);
        let specs = NodeSpec::uniform(&g, 1);
        let no_mul = processor(1, 0);
        assert!(matches!(
            create_tasks(&g, &specs, &no_mul, 5),
            Err(CreateTasksError::Schedule(_))
        ));
    }

    #[test]
    fn every_task_fits_the_budget() {
        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        for budget in [3u64, 6, 12] {
            let tasks = create_tasks(&g, &specs, &processor(1, 2), budget).unwrap();
            assert!(tasks.task_cycles.iter().all(|&c| c <= budget), "budget {budget}");
            assert_eq!(tasks.grouping.group_count(), tasks.len());
        }
    }

    #[test]
    fn tasks_are_forward_only() {
        let g = benchmarks::dct8();
        let specs = NodeSpec::uniform(&g, 1);
        let tasks = create_tasks(&g, &specs, &processor(2, 2), 4).unwrap();
        for (_, e) in g.edges() {
            assert!(
                tasks.grouping.group_of(e.src()) <= tasks.grouping.group_of(e.dst()),
                "task slicing must follow the data flow"
            );
        }
        assert!(tasks.grouping.check_no_mutual_dependency(&g).is_ok());
    }

    #[test]
    fn bigger_budget_means_fewer_tasks() {
        let g = benchmarks::elliptic_wave_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let small = create_tasks(&g, &specs, &processor(1, 1), 4).unwrap();
        let large = create_tasks(&g, &specs, &processor(1, 1), 16).unwrap();
        assert!(large.len() < small.len());
        // Total work is conserved within scheduling slack.
        assert!(large.total_cycles() <= small.total_cycles());
    }

    #[test]
    fn tasks_feed_back_into_partitioning() {
        use crate::spec::PartitioningBuilder;
        use chop_library::standard::table2_packages;
        use chop_library::ChipSet;

        let g = benchmarks::ar_lattice_filter();
        let specs = NodeSpec::uniform(&g, 1);
        let tasks = create_tasks(&g, &specs, &processor(2, 4), 3).unwrap();
        let k = tasks.grouping.group_count();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p =
            PartitioningBuilder::new(g, chips).with_grouping(tasks.grouping).build().unwrap();
        assert_eq!(p.partition_count(), k);
    }
}
