//! The crate-wide error type.

use std::fmt;

use chop_bad::PredictError;
use chop_dfg::grouping::GroupingError;
use chop_sched::urgency::UrgencyError;

use crate::spec::SpecError;

/// Any error CHOP can report to the designer.
#[derive(Debug)]
pub enum ChopError {
    /// The tentative partitioning itself is malformed.
    Spec(SpecError),
    /// The node grouping is malformed (empty group, mutual dependency…).
    Grouping(GroupingError),
    /// BAD could not predict implementations for a partition.
    Predict {
        /// The partition whose prediction failed.
        partition: usize,
        /// The underlying predictor error.
        source: PredictError,
    },
    /// Task scheduling failed during system integration.
    Integration(UrgencyError),
    /// A combination evaluation panicked inside a search worker; the
    /// panic was contained and converted into this error.
    EvalPanicked {
        /// Best-effort panic message.
        message: String,
    },
    /// Level-1 pruning removed every prediction of a partition — no
    /// implementation of that partition can meet the constraints.
    NoFeasiblePrediction {
        /// The partition with no surviving predictions.
        partition: usize,
    },
    /// An [`OptimizeSpec`](crate::optimize::OptimizeSpec) names nodes or
    /// constraints inconsistent with the session's partitioning.
    InvalidOptimizeSpec(
        /// What is wrong with the spec.
        String,
    ),
}

impl fmt::Display for ChopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChopError::Spec(e) => write!(f, "invalid partitioning: {e}"),
            ChopError::Grouping(e) => write!(f, "invalid grouping: {e}"),
            ChopError::Predict { partition, source } => {
                write!(f, "prediction failed for partition P{}: {source}", partition + 1)
            }
            ChopError::Integration(e) => write!(f, "system integration failed: {e}"),
            ChopError::EvalPanicked { message } => {
                write!(f, "combination evaluation panicked: {message}")
            }
            ChopError::NoFeasiblePrediction { partition } => write!(
                f,
                "no predicted implementation of partition P{} meets the constraints",
                partition + 1
            ),
            ChopError::InvalidOptimizeSpec(message) => {
                write!(f, "invalid optimize spec: {message}")
            }
        }
    }
}

impl std::error::Error for ChopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChopError::Spec(e) => Some(e),
            ChopError::Grouping(e) => Some(e),
            ChopError::Predict { source, .. } => Some(source),
            ChopError::Integration(e) => Some(e),
            ChopError::EvalPanicked { .. } => None,
            ChopError::NoFeasiblePrediction { .. } => None,
            ChopError::InvalidOptimizeSpec(_) => None,
        }
    }
}

impl From<SpecError> for ChopError {
    fn from(e: SpecError) -> Self {
        ChopError::Spec(e)
    }
}

impl From<GroupingError> for ChopError {
    fn from(e: GroupingError) -> Self {
        ChopError::Grouping(e)
    }
}

impl From<UrgencyError> for ChopError {
    fn from(e: UrgencyError) -> Self {
        ChopError::Integration(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChopError::NoFeasiblePrediction { partition: 1 };
        assert!(e.to_string().contains("P2"));
    }
}
