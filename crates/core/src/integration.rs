//! System-integration prediction: transfer bandwidths, urgency scheduling,
//! buffers, transfer modules, adjusted clock and the feasibility verdict.
//!
//! "System integration predictions basically involve predicting data
//! transfer module characteristics and, of course, the performance and
//! delay characteristics of the overall system" (paper §2.5).

use std::fmt;
use std::sync::Arc;

use chop_bad::area::PlaSpec;
use chop_bad::{ClockConfig, DesignStyle, PredictedDesign, PredictorParams};
use chop_library::Library;
use chop_sched::urgency::{ResourceId, TaskGraph, TaskId};
use chop_stat::units::{Bits, Cycles, Nanos};
use chop_stat::Estimate;
use serde::{Deserialize, Serialize};

use crate::error::ChopError;
use crate::feasibility::{Constraints, FeasibilityCriteria, Verdict, Violation};
use crate::spec::{MemoryAssignment, Partitioning};
use crate::testability::TestabilityOverhead;
use crate::transfer::{
    chip_of_endpoint, is_off_chip, pin_budgets, transfer_specs, Endpoint, PinBudget,
    TransferSpec,
};

/// Predicted characteristics of one data-transfer module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModulePrediction {
    /// The transfer this module implements.
    pub spec: TransferSpec,
    /// Pins used on each involved chip during the transfer.
    pub pins: u32,
    /// Transfer duration `X` in main-clock cycles.
    pub duration: Cycles,
    /// Wait time `W` before the transfer starts, in main-clock cycles.
    pub wait: Cycles,
    /// Predicted buffer size `B = D·(⌈W/l⌉ + X/l)` in bits.
    pub buffer_bits: Bits,
    /// The module's PLA controller.
    pub controller: PlaSpec,
}

impl fmt::Display for TransferModulePrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} pins, X={}, W={}, buffer {}",
            self.spec,
            self.pins,
            self.duration.value(),
            self.wait.value(),
            self.buffer_bits
        )
    }
}

/// The integrated prediction for one combination of partition
/// implementations at one initiation interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPrediction {
    /// System initiation interval in main-clock cycles.
    pub initiation_interval: Cycles,
    /// System delay (task-graph makespan) in main-clock cycles.
    pub delay: Cycles,
    /// Adjusted clock-cycle estimate in ns (main clock plus integration
    /// overhead).
    pub clock: Estimate,
    /// Initiation interval in ns.
    pub initiation_ns: Estimate,
    /// System delay in ns.
    pub delay_ns: Estimate,
    /// Per-chip area estimates (partitions + transfer modules + memories +
    /// pin multiplexing).
    pub chip_areas: Vec<Estimate>,
    /// Total system power estimate in mW (partitions + transfer modules).
    pub power: Estimate,
    /// Per-transfer module predictions.
    pub transfer_modules: Vec<TransferModulePrediction>,
    /// The feasibility verdict.
    pub verdict: Verdict,
}

impl SystemPrediction {
    /// Most-likely adjusted clock period.
    #[must_use]
    pub fn clock_ns(&self) -> Nanos {
        Nanos::new(self.clock.likely())
    }

    /// Whether this prediction dominates another on (II, delay) in ns —
    /// the inferiority relation used to report only non-inferior designs.
    #[must_use]
    pub fn dominates(&self, other: &SystemPrediction) -> bool {
        let le = self.initiation_ns.likely() <= other.initiation_ns.likely()
            && self.delay_ns.likely() <= other.delay_ns.likely();
        let lt = self.initiation_ns.likely() < other.initiation_ns.likely()
            || self.delay_ns.likely() < other.delay_ns.likely();
        le && lt
    }
}

impl fmt::Display for SystemPrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "II={} delay={} clock={:.0} ns [{}]",
            self.initiation_interval.value(),
            self.delay.value(),
            self.clock.likely(),
            self.verdict
        )
    }
}

/// Read-only view of one design choice per partition. The public
/// [`IntegrationContext::evaluate`] takes the reference-slice form; the
/// engine's scoring hot path uses [`IndexedSelection`] to evaluate through
/// index slices into the shared prediction lists without materializing a
/// `Vec<&PredictedDesign>` per candidate.
pub(crate) trait SelectionView {
    /// Number of partitions selected for.
    fn len(&self) -> usize;
    /// The chosen design of `partition`.
    fn design(&self, partition: usize) -> &PredictedDesign;
}

impl SelectionView for &[&PredictedDesign] {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn design(&self, partition: usize) -> &PredictedDesign {
        self[partition]
    }
}

/// Allocation-free selection: one index per partition into the engine's
/// per-partition prediction lists.
pub(crate) struct IndexedSelection<'a> {
    /// Per-partition prediction lists, in partition order.
    pub lists: &'a [Arc<[PredictedDesign]>],
    /// Chosen design index per partition, in partition order.
    pub indices: &'a [u32],
}

impl SelectionView for IndexedSelection<'_> {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn design(&self, partition: usize) -> &PredictedDesign {
        &self.lists[partition][self.indices[partition] as usize]
    }
}

/// The selection-independent task-graph skeleton used by the search's
/// branch-and-bound delay lower bound: transfer durations are fixed per
/// partitioning, only the per-partition task weights (latencies) vary with
/// the candidate. Node ids: `0..partitions` are partition tasks,
/// `partitions + t` is transfer task `t`.
#[derive(Debug, Clone)]
pub(crate) struct DelayGraph {
    partitions: usize,
    /// Duration (main cycles) of each transfer task.
    xfer_weights: Vec<u64>,
    /// Outgoing dependency edges per node.
    successors: Vec<Vec<u32>>,
    /// All nodes in topological order; empty when the graph is cyclic
    /// (then the bound degrades to "no pruning").
    topo: Vec<u32>,
}

impl DelayGraph {
    /// Longest dependency path (ignoring resource contention) with the
    /// given per-partition weights — a lower bound on every schedule
    /// makespan over this skeleton. `dist` is caller-owned scratch so the
    /// search loop stays allocation-free.
    pub(crate) fn longest_path(&self, pu_weights: &[u64], dist: &mut Vec<u64>) -> u64 {
        if self.topo.is_empty() {
            return 0;
        }
        let weight = |v: usize| {
            if v < self.partitions {
                pu_weights[v]
            } else {
                self.xfer_weights[v - self.partitions]
            }
        };
        dist.clear();
        dist.extend((0..self.partitions + self.xfer_weights.len()).map(weight));
        let mut best = 0u64;
        for &v in &self.topo {
            let dv = dist[v as usize];
            best = best.max(dv);
            for &to in &self.successors[v as usize] {
                let reach = dv.saturating_add(weight(to as usize));
                if reach > dist[to as usize] {
                    dist[to as usize] = reach;
                }
            }
        }
        best
    }
}

/// Reusable integration context for one partitioning: transfers and pin
/// budgets are computed once, then [`IntegrationContext::evaluate`] is
/// called per candidate combination.
#[derive(Debug)]
pub struct IntegrationContext<'a> {
    partitioning: &'a Partitioning,
    library: &'a Library,
    clocks: ClockConfig,
    params: PredictorParams,
    criteria: FeasibilityCriteria,
    constraints: Constraints,
    testability: TestabilityOverhead,
    transfers: Vec<TransferSpec>,
    budgets: Vec<PinBudget>,
}

impl<'a> IntegrationContext<'a> {
    /// Builds the context (creates data-transfer tasks and pin budgets).
    #[must_use]
    pub fn new(
        partitioning: &'a Partitioning,
        library: &'a Library,
        clocks: ClockConfig,
        params: PredictorParams,
        criteria: FeasibilityCriteria,
        constraints: Constraints,
    ) -> Self {
        let transfers = transfer_specs(partitioning);
        let budgets = pin_budgets(partitioning, &transfers);
        Self {
            partitioning,
            library,
            clocks,
            params,
            criteria,
            constraints,
            testability: TestabilityOverhead::none(),
            transfers,
            budgets,
        }
    }

    /// Applies a testability discipline: scan pins come off every chip's
    /// data-pin budget; area and clock overheads are applied during
    /// evaluation (paper §5 future work).
    ///
    /// # Panics
    ///
    /// Panics if the overhead fractions are invalid.
    #[must_use]
    pub fn with_testability(mut self, testability: TestabilityOverhead) -> Self {
        testability.assert_valid();
        self.testability = testability;
        for b in &mut self.budgets {
            b.data = b.data.saturating_sub(testability.scan_pins);
        }
        self
    }

    /// The partitioning under evaluation.
    #[must_use]
    pub fn partitioning(&self) -> &Partitioning {
        self.partitioning
    }

    /// The data-transfer requirements of this partitioning.
    #[must_use]
    pub fn transfers(&self) -> &[TransferSpec] {
        &self.transfers
    }

    /// The per-chip pin budgets.
    #[must_use]
    pub fn budgets(&self) -> &[PinBudget] {
        &self.budgets
    }

    /// The hard constraints in force.
    #[must_use]
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The smallest initiation interval any combination could reach, from
    /// the transfer side alone (every transfer must fit in one interval).
    #[must_use]
    pub fn min_transfer_ii(&self) -> Cycles {
        let mut worst = 1u64;
        for (i, t) in self.transfers.iter().enumerate() {
            let _ = i;
            if let Some((x, _)) = self.transfer_duration(t) {
                worst = worst.max(x.value());
            }
        }
        Cycles::new(worst)
    }

    /// The feasibility criteria in force.
    pub(crate) fn criteria(&self) -> &FeasibilityCriteria {
        &self.criteria
    }

    /// Pin-sharing multiplexer-tree clock overhead of one chip — the
    /// selection-independent part of the integration overhead computed in
    /// [`IntegrationContext::evaluate`] (the datapath term, when the
    /// datapath runs on the main clock, is `max`ed on top of this).
    fn chip_mux_overhead(&self, chip: chop_library::ChipId) -> Estimate {
        let mux = self.library.multiplexer();
        let n_transfers = self
            .transfers
            .iter()
            .filter(|t| {
                is_off_chip(self.partitioning, t)
                    && (chip_of_endpoint(self.partitioning, t.src) == Some(chip)
                        || chip_of_endpoint(self.partitioning, t.dst) == Some(chip))
            })
            .count() as u64;
        let levels = if n_transfers <= 1 { 0 } else { 64 - (n_transfers - 1).leading_zeros() };
        let mux_delay = mux.map_or(4.0, |m| m.delay().value());
        Estimate::with_spread(
            mux_delay * f64::from(levels) + 2.0, // + pad-side wiring
            self.params.delay_spread_above,
        )
    }

    /// A pointwise lower bound on the adjusted clock of *every* candidate
    /// combination: main period plus the selection-independent multiplexer
    /// overhead, scaled by the testability fraction. When the datapath is
    /// not on the main clock this *is* the adjusted clock exactly; with a
    /// main-clock datapath the per-design overhead only `max`es on top, so
    /// every actual clock estimate dominates this floor component-wise.
    pub(crate) fn clock_floor(&self) -> Estimate {
        let mut overhead = Estimate::zero();
        for (chip, _) in self.partitioning.chips().iter() {
            overhead = overhead.max(self.chip_mux_overhead(chip));
        }
        (Estimate::exact(self.clocks.main_cycle().value()) + overhead)
            * (1.0 + self.testability.clock_fraction)
    }

    /// The smallest initiation interval at which the *deterministic*
    /// integration checks (pin-time conservation, memory bandwidth, pin
    /// exhaustion) can pass — they depend only on the partitioning, never
    /// on the selected designs. Every combination evaluated at a smaller
    /// interval is provably infeasible; `u64::MAX` means no interval works
    /// (a transfer has no pins at all).
    pub(crate) fn deterministic_ii_floor(&self) -> u64 {
        let mut durations: Vec<(u64, u32)> = Vec::with_capacity(self.transfers.len());
        for t in &self.transfers {
            match self.transfer_duration(t) {
                Some((x, w)) => durations.push((x.value(), w)),
                None => return u64::MAX,
            }
        }
        let mut floor = 1u64;
        for (chip, _) in self.partitioning.chips().iter() {
            let pin_time: u64 = self
                .transfers
                .iter()
                .zip(&durations)
                .filter(|(t, (_, w))| {
                    *w > 0
                        && (chip_of_endpoint(self.partitioning, t.src) == Some(chip)
                            || chip_of_endpoint(self.partitioning, t.dst) == Some(chip))
                })
                .map(|(_, (x, w))| x * u64::from(*w))
                .sum();
            let pins = u64::from(self.budgets[chip.index()].data);
            if pin_time > 0 {
                if pins == 0 {
                    return u64::MAX;
                }
                floor = floor.max(pin_time.div_ceil(pins));
            }
        }
        for mi in 0..self.partitioning.memories().len() {
            let busy: u64 = self
                .transfers
                .iter()
                .zip(&durations)
                .filter(|(t, _)| {
                    matches!(t.src, Endpoint::Memory(m) if m.index() == mi)
                        || matches!(t.dst, Endpoint::Memory(m) if m.index() == mi)
                })
                .map(|(_, (x, _))| x)
                .sum();
            floor = floor.max(busy);
        }
        floor
    }

    /// Builds the selection-independent task-graph skeleton used for the
    /// search's delay lower bound (see [`DelayGraph`]). Transfers without
    /// usable pins are treated as zero-length (the deterministic floor
    /// already rules the whole space infeasible in that case).
    pub(crate) fn delay_graph(&self) -> DelayGraph {
        let k = self.partitioning.partition_count();
        let n = k + self.transfers.len();
        let xfer_weights: Vec<u64> = self
            .transfers
            .iter()
            .map(|t| self.transfer_duration(t).map_or(0, |(x, _)| x.value()))
            .collect();
        let mut successors: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (i, t) in self.transfers.iter().enumerate() {
            if let Endpoint::Partition(p) = t.src {
                successors[p.index()].push((k + i) as u32);
                indegree[k + i] += 1;
            }
            if let Endpoint::Partition(p) = t.dst {
                successors[k + i].push(p.index() as u32);
                indegree[p.index()] += 1;
            }
        }
        let mut topo: Vec<u32> = Vec::with_capacity(n);
        let mut queue: Vec<u32> =
            (0..n as u32).filter(|&v| indegree[v as usize] == 0).collect();
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &to in &successors[v as usize] {
                indegree[to as usize] -= 1;
                if indegree[to as usize] == 0 {
                    queue.push(to);
                }
            }
        }
        if topo.len() != n {
            topo.clear(); // cyclic skeleton: the delay bound degrades to "never prune"
        }
        DelayGraph { partitions: k, xfer_weights, successors, topo }
    }

    /// Duration (main cycles) and pin width of a transfer, or `None` when a
    /// required chip has no data pins.
    fn transfer_duration(&self, t: &TransferSpec) -> Option<(Cycles, u32)> {
        if !is_off_chip(self.partitioning, t) {
            return Some((Cycles::zero(), 0));
        }
        let mut width = u32::MAX;
        for chip in [
            chip_of_endpoint(self.partitioning, t.src),
            chip_of_endpoint(self.partitioning, t.dst),
        ]
        .into_iter()
        .flatten()
        {
            width = width.min(self.budgets[chip.index()].data);
        }
        if width == 0 {
            return None;
        }
        if width == u32::MAX {
            // Both endpoints off the chip set (external→external) — not a
            // real hardware transfer.
            return Some((Cycles::zero(), 0));
        }
        let width = width.min(u32::try_from(t.bits.value()).unwrap_or(u32::MAX)).max(1);
        // Pin-limited transfer time plus one pad-pipeline fill cycle.
        let mut xfer_cycles = t.bits.transfers_at_width(Bits::new(u64::from(width))) + 1;
        // Memory-side rate limit.
        for e in [t.src, t.dst] {
            if let Endpoint::Memory(m) = e {
                let mem = &self.partitioning.memories()[m.index()];
                let accesses = t.bits.transfers_at_width(mem.bandwidth_per_access());
                let access_cycles =
                    self.clocks.transfer_cycle().cycles_to_cover(mem.access_time()).max(1);
                xfer_cycles = xfer_cycles.max(accesses * access_cycles);
            }
        }
        Some((Cycles::new(self.clocks.transfer_to_main(xfer_cycles).value()), width))
    }

    /// Evaluates one combination of partition implementations (one design
    /// per partition, in partition order) at system initiation interval
    /// `ii` (main cycles).
    ///
    /// Always produces a [`SystemPrediction`] whose verdict records any
    /// violations; hard structural failures (cyclic task graphs) become
    /// [`ChopError::Integration`].
    ///
    /// # Errors
    ///
    /// Returns [`ChopError::Integration`] if task scheduling fails
    /// structurally.
    ///
    /// # Panics
    ///
    /// Panics if `selection` length differs from the partition count or
    /// `ii` is zero.
    pub fn evaluate(
        &self,
        selection: &[&PredictedDesign],
        ii: Cycles,
    ) -> Result<SystemPrediction, ChopError> {
        self.evaluate_impl(&selection, ii)
    }

    /// Allocation-free variant of [`IntegrationContext::evaluate`] for the
    /// engine's scoring hot path: the selection is one index per partition
    /// into the shared per-partition prediction lists.
    ///
    /// # Errors
    ///
    /// As [`IntegrationContext::evaluate`].
    pub(crate) fn evaluate_indexed(
        &self,
        lists: &[Arc<[PredictedDesign]>],
        indices: &[u32],
        ii: Cycles,
    ) -> Result<SystemPrediction, ChopError> {
        self.evaluate_impl(&IndexedSelection { lists, indices }, ii)
    }

    fn evaluate_impl<S: SelectionView>(
        &self,
        selection: &S,
        ii: Cycles,
    ) -> Result<SystemPrediction, ChopError> {
        assert_eq!(
            selection.len(),
            self.partitioning.partition_count(),
            "one design per partition required"
        );
        assert!(ii.value() >= 1, "initiation interval must be positive");
        let l = ii.value();
        let k = selection.len();
        let mut violations = Vec::new();

        // Data-rate compatibility: every partition must keep up with the
        // system rate; pipelined partitions must not be rate-mismatched
        // with it ("if any 2 or more partition implementations … have
        // pipelined design styles and different data rates, then the global
        // implementation is [in]feasible due to a data rate mismatch").
        let mut pipelined_ii: Option<u64> = None;
        let mut rate_mismatch = false;
        for p in 0..k {
            let d = selection.design(p);
            if d.style() == DesignStyle::Pipelined {
                let d_ii = d.initiation_interval().value();
                match pipelined_ii {
                    Some(first) if first != d_ii => rate_mismatch = true,
                    Some(_) => {}
                    None => pipelined_ii = Some(d_ii),
                }
            }
        }
        if rate_mismatch {
            violations.push(Violation::DataRateMismatch);
        }
        if (0..k).any(|p| selection.design(p).initiation_interval().value() > l) {
            violations.push(Violation::Performance {
                probability: chop_stat::Probability::impossible(),
            });
        }

        // Transfer durations and pin demands.
        let mut durations: Vec<(Cycles, u32)> = Vec::with_capacity(self.transfers.len());
        for (i, t) in self.transfers.iter().enumerate() {
            match self.transfer_duration(t) {
                Some((x, w)) => {
                    if x.value() > l {
                        violations.push(Violation::DataClash { transfer: i });
                    }
                    durations.push((x, w));
                }
                None => {
                    let chip = chip_of_endpoint(self.partitioning, t.src)
                        .or(chip_of_endpoint(self.partitioning, t.dst))
                        .map_or(0, |c| c.index());
                    violations.push(Violation::PinsExhausted { chip });
                    durations.push((Cycles::zero(), 0));
                }
            }
        }

        // Steady-state pin-time conservation: in a pipelined overall
        // process every initiation interval must accommodate all of a
        // chip's transfers ("an urgency scheduling is performed to confirm
        // feasibility of sharing the data pins of chips"). Pin-time used
        // per interval (Σ X·w) cannot exceed the interval's pin capacity
        // (l · data pins).
        for (chip, _) in self.partitioning.chips().iter() {
            let pin_time: u64 = self
                .transfers
                .iter()
                .zip(&durations)
                .filter(|(t, (_, w))| {
                    *w > 0
                        && (chip_of_endpoint(self.partitioning, t.src) == Some(chip)
                            || chip_of_endpoint(self.partitioning, t.dst) == Some(chip))
                })
                .map(|(_, (x, w))| x.value() * u64::from(*w))
                .sum();
            let capacity = l * u64::from(self.budgets[chip.index()].data);
            if pin_time > capacity {
                violations.push(Violation::PinBandwidth { chip: chip.index() });
            }
        }

        // Memory bandwidth per initiation: total busy time per block ≤ l.
        for (mi, _mem) in self.partitioning.memories().iter().enumerate() {
            let busy: u64 = self
                .transfers
                .iter()
                .zip(&durations)
                .filter(|(t, _)| {
                    matches!(t.src, Endpoint::Memory(m) if m.index() == mi)
                        || matches!(t.dst, Endpoint::Memory(m) if m.index() == mi)
                })
                .map(|(_, (x, _))| x.value())
                .sum();
            if busy > l {
                violations.push(Violation::MemoryBandwidth { memory: mi });
            }
        }

        if !violations.is_empty() {
            // Rate/structural violations make the rest of the model
            // meaningless; report immediately (CHOP's immediate pruning).
            return Ok(self.infeasible_stub(selection, ii, violations));
        }

        // Task graph: PU tasks + transfer tasks over chip-pin and
        // memory-port resources.
        let n_chips = self.partitioning.chips().len();
        let mut graph = TaskGraph::new();
        let capacities: Vec<u64> = self
            .budgets
            .iter()
            .map(|b| u64::from(b.data))
            .chain(self.partitioning.memories().iter().map(|m| u64::from(m.ports())))
            .collect();
        let mem_resource = |m: usize| ResourceId::new((n_chips + m) as u32);

        let pu_tasks: Vec<TaskId> = self
            .partitioning
            .partition_ids()
            .map(|p| {
                graph.add_task(
                    format!("{p}"),
                    selection.design(p.index()).latency().value(),
                    vec![],
                )
            })
            .collect();
        let mut xfer_tasks: Vec<TaskId> = Vec::with_capacity(self.transfers.len());
        for (t, (x, w)) in self.transfers.iter().zip(&durations) {
            let mut demands = Vec::new();
            if *w > 0 {
                for chip in [
                    chip_of_endpoint(self.partitioning, t.src),
                    chip_of_endpoint(self.partitioning, t.dst),
                ]
                .into_iter()
                .flatten()
                {
                    demands.push((ResourceId::new(chip.index() as u32), u64::from(*w)));
                }
            }
            for e in [t.src, t.dst] {
                if let Endpoint::Memory(m) = e {
                    demands.push((mem_resource(m.index()), 1));
                }
            }
            let id = graph.add_task(format!("{t}"), x.value(), demands);
            xfer_tasks.push(id);
        }
        for (i, t) in self.transfers.iter().enumerate() {
            if let Endpoint::Partition(p) = t.src {
                graph.add_dep(pu_tasks[p.index()], xfer_tasks[i])?;
            }
            if let Endpoint::Partition(p) = t.dst {
                graph.add_dep(xfer_tasks[i], pu_tasks[p.index()])?;
            }
        }
        let schedule = graph.schedule(&capacities)?;
        let delay_cycles = Cycles::new(schedule.makespan());

        // Adjusted clock: main period + per-chip integration overhead
        // (pin-sharing multiplexer tree and, when the datapath runs on the
        // main clock, the datapath's own overhead).
        let mut overhead = Estimate::zero();
        for (chip, _) in self.partitioning.chips().iter() {
            let mut chip_overhead = self.chip_mux_overhead(chip);
            if self.clocks.datapath_on_main_clock() {
                for p in self.partitioning.partitions_on(chip) {
                    chip_overhead = chip_overhead.max(
                        Estimate::with_spread(2.0, self.params.delay_spread_above)
                            + selection.design(p.index()).clock_overhead(),
                    );
                }
            }
            overhead = overhead.max(chip_overhead);
        }
        let clock = (Estimate::exact(self.clocks.main_cycle().value()) + overhead)
            * (1.0 + self.testability.clock_fraction);
        let initiation_ns = clock * l as f64;
        let delay_ns = clock * delay_cycles.value() as f64;

        // Transfer modules: buffer B = D·(⌈W/l⌉ + X/l) and a PLA per module.
        let mut transfer_modules = Vec::with_capacity(self.transfers.len());
        for ((t, (x, w)), task) in self.transfers.iter().zip(&durations).zip(&xfer_tasks) {
            let wait = Cycles::new(schedule.wait_before(&graph, *task));
            let b_bits = if *w == 0 {
                0
            } else {
                let d = t.bits.value() as f64;
                (d * ((wait.value() as f64 / l as f64).ceil() + x.value() as f64 / l as f64))
                    .ceil() as u64
            };
            let states = wait.value() + x.value();
            let controller = PlaSpec::for_fsm(states.max(1), w.div_ceil(8).max(1) + 2, 2);
            transfer_modules.push(TransferModulePrediction {
                spec: *t,
                pins: *w,
                duration: *x,
                wait,
                buffer_bits: Bits::new(b_bits),
                controller,
            });
        }

        // Per-chip area: partitions + on-chip memories + transfer modules +
        // pin-sharing multiplexers.
        let register = self.library.register();
        let mut chip_areas: Vec<Estimate> =
            vec![Estimate::zero(); self.partitioning.chips().len()];
        for p in self.partitioning.partition_ids() {
            let chip = self.partitioning.chip_of(p);
            chip_areas[chip.index()] += selection.design(p.index()).area();
        }
        for (mi, mem) in self.partitioning.memories().iter().enumerate() {
            if let MemoryAssignment::OnChip(c) =
                self.partitioning.memory_assignment(chop_library::MemoryId::new(mi as u32))
            {
                chip_areas[c.index()] += Estimate::exact(mem.area().value());
            }
        }
        let mux_area = self.library.multiplexer().map_or(18.0, |m| m.area().value());
        for (tm, t) in transfer_modules.iter().zip(&self.transfers) {
            if tm.pins == 0 {
                continue; // on-chip transfer: plain wiring, no module
            }
            let pla = tm.controller.area(&self.params).value();
            // Interface steering onto the shared data pins: one 2:1 slice
            // per transferred bit, independent of the bus width chosen
            // (wider buses steer more bits per cycle, narrower buses steer
            // the same bits over more cycles).
            let steer = mux_area * t.bits.value() as f64;
            let buffer = register.map_or(31.0 * tm.buffer_bits.value() as f64, |r| {
                r.area_at_width(tm.buffer_bits).value()
            });
            // Input-side module holds the buffer; output side just the PLA
            // and steering.
            if let Some(c) = chip_of_endpoint(self.partitioning, t.dst) {
                chip_areas[c.index()] += Estimate::with_spreads(
                    pla + steer + buffer,
                    self.params.area_spread_below,
                    self.params.area_spread_above,
                );
            }
            if let Some(c) = chip_of_endpoint(self.partitioning, t.src) {
                chip_areas[c.index()] += Estimate::with_spreads(
                    pla + steer,
                    self.params.area_spread_below,
                    self.params.area_spread_above,
                );
            }
        }

        // System power: partitions at their predicted utilization plus
        // transfer-module overhead (controller + buffer + steering).
        let mut power = Estimate::zero();
        for p in self.partitioning.partition_ids() {
            power += selection.design(p.index()).power();
        }
        for (tm, t) in transfer_modules.iter().zip(&self.transfers) {
            if tm.pins == 0 {
                continue;
            }
            let module_area = tm.controller.area(&self.params).value()
                + mux_area * t.bits.value() as f64
                + 31.0 * tm.buffer_bits.value() as f64;
            power += Estimate::exact(module_area * chop_library::DEFAULT_POWER_DENSITY * 0.5);
        }

        // Testability area overhead (scan registers, test controller).
        if self.testability.area_fraction > 0.0 {
            for a in &mut chip_areas {
                *a = *a * (1.0 + self.testability.area_fraction);
            }
        }

        // Feasibility analysis.
        for (ci, (chip, pkg)) in self.partitioning.chips().iter().enumerate() {
            let _ = chip;
            let p = chip_areas[ci].probability_le(pkg.usable_area().value());
            if !p.meets(self.criteria.area) {
                violations.push(Violation::ChipArea { chip: ci, probability: p });
            }
        }
        let p_perf = initiation_ns.probability_le(self.constraints.performance().value());
        if !p_perf.meets(self.criteria.performance) {
            violations.push(Violation::Performance { probability: p_perf });
        }
        let p_delay = delay_ns.probability_le(self.constraints.delay().value());
        if !p_delay.meets(self.criteria.delay) {
            violations.push(Violation::Delay { probability: p_delay });
        }
        if let Some(limit) = self.constraints.power_limit() {
            let p_power = power.probability_le(limit.value());
            if !p_power.meets(self.criteria.power) {
                violations.push(Violation::Power { probability: p_power });
            }
        }

        let verdict = if violations.is_empty() {
            Verdict::feasible()
        } else {
            Verdict::infeasible(violations)
        };
        Ok(SystemPrediction {
            initiation_interval: ii,
            delay: delay_cycles,
            clock,
            initiation_ns,
            delay_ns,
            chip_areas,
            power,
            transfer_modules,
            verdict,
        })
    }

    /// Minimal prediction for combinations rejected before scheduling.
    fn infeasible_stub<S: SelectionView>(
        &self,
        selection: &S,
        ii: Cycles,
        violations: Vec<Violation>,
    ) -> SystemPrediction {
        let clock = Estimate::exact(self.clocks.main_cycle().value());
        let delay = Cycles::new(
            (0..selection.len())
                .map(|p| selection.design(p).latency().value())
                .max()
                .unwrap_or(1),
        );
        // Partition areas only (no transfer modules were sized): keeps
        // keep-all design-space dumps meaningful for rejected points.
        let mut chip_areas = vec![Estimate::zero(); self.partitioning.chips().len()];
        for p in self.partitioning.partition_ids() {
            let chip = self.partitioning.chip_of(p);
            chip_areas[chip.index()] += selection.design(p.index()).area();
        }
        let power = (0..selection.len()).map(|p| selection.design(p).power()).sum();
        SystemPrediction {
            initiation_interval: ii,
            delay,
            clock,
            initiation_ns: clock * ii.value() as f64,
            delay_ns: clock * delay.value() as f64,
            chip_areas,
            power,
            transfer_modules: Vec::new(),
            verdict: Verdict::infeasible(violations),
        }
    }
}

#[cfg(test)]
mod tests {
    use chop_bad::{ArchitectureStyle, Predictor};
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::ChipSet;
    use chop_stat::units::Nanos;

    use super::*;
    use crate::spec::PartitioningBuilder;

    fn setup(
        k: usize,
        pkg: usize,
    ) -> (Partitioning, Library, ClockConfig, Vec<Vec<PredictedDesign>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[pkg].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let designs: Vec<Vec<PredictedDesign>> = p
            .partition_ids()
            .map(|pid| predictor.predict(&p.partition_dfg(pid)).unwrap())
            .collect();
        (p, lib, clocks, designs)
    }

    fn ctx<'a>(
        p: &'a Partitioning,
        lib: &'a Library,
        clocks: ClockConfig,
    ) -> IntegrationContext<'a> {
        IntegrationContext::new(
            p,
            lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    #[test]
    fn single_partition_evaluates() {
        let (p, lib, clocks, designs) = setup(1, 1);
        let c = ctx(&p, &lib, clocks);
        // Pick the smallest-area design; evaluate at its own II.
        let d = designs[0]
            .iter()
            .min_by(|a, b| a.area().likely().partial_cmp(&b.area().likely()).unwrap())
            .unwrap();
        let ii = Cycles::new(d.initiation_interval().value().max(c.min_transfer_ii().value()));
        let s = c.evaluate(&[d], ii).unwrap();
        assert!(s.delay.value() >= d.latency().value());
        assert!(s.clock.likely() >= 300.0);
        assert_eq!(s.chip_areas.len(), 1);
    }

    #[test]
    fn some_combination_is_feasible_for_paper_constraints() {
        let (p, lib, clocks, designs) = setup(1, 1);
        let c = ctx(&p, &lib, clocks);
        let min_ii = c.min_transfer_ii().value();
        let feasible = designs[0].iter().any(|d| {
            let ii = Cycles::new(d.initiation_interval().value().max(min_ii));
            c.evaluate(&[d], ii).map(|s| s.verdict.feasible).unwrap_or(false)
        });
        assert!(feasible, "no single-chip combination feasible (Table 4 row 1 exists)");
    }

    #[test]
    fn transfer_modules_have_paper_buffer_formula() {
        let (p, lib, clocks, designs) = setup(2, 1);
        let c = ctx(&p, &lib, clocks);
        let sel: Vec<&PredictedDesign> = designs
            .iter()
            .map(|list| list.iter().min_by_key(|d| d.initiation_interval().value()).unwrap())
            .collect();
        let ii_needed = sel
            .iter()
            .map(|d| d.initiation_interval().value())
            .max()
            .unwrap()
            .max(c.min_transfer_ii().value());
        let s = c.evaluate(&sel, Cycles::new(ii_needed)).unwrap();
        let l = ii_needed;
        for tm in &s.transfer_modules {
            if tm.pins == 0 {
                continue;
            }
            let d = tm.spec.bits.value() as f64;
            let expect = (d
                * ((tm.wait.value() as f64 / l as f64).ceil()
                    + tm.duration.value() as f64 / l as f64))
                .ceil() as u64;
            assert_eq!(tm.buffer_bits.value(), expect);
        }
    }

    #[test]
    fn data_clash_detected_at_tiny_ii() {
        let (p, lib, clocks, designs) = setup(2, 0);
        let c = ctx(&p, &lib, clocks);
        let sel: Vec<&PredictedDesign> = designs.iter().map(|l| l.first().unwrap()).collect();
        let s = c.evaluate(&sel, Cycles::new(1)).unwrap();
        assert!(!s.verdict.feasible);
        assert!(s
            .verdict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DataClash { .. } | Violation::Performance { .. })));
    }

    #[test]
    fn fewer_pins_never_speed_up_transfers() {
        let (p64, lib, clocks, _) = setup(2, 0);
        let (p84, _, _, _) = setup(2, 1);
        let c64 = ctx(&p64, &lib, clocks);
        let c84 = ctx(&p84, &lib, clocks);
        assert!(c64.min_transfer_ii().value() >= c84.min_transfer_ii().value());
    }

    #[test]
    fn pin_bandwidth_violation_detected() {
        use chop_bad::PredictorParams;
        // Two chips at the minimum rate: the transfer chain's combined
        // pin-time cannot fit a 1-cycle... use a tiny ii just above each
        // transfer but below the chip's aggregate demand.
        let (p, lib, clocks, designs) = setup(2, 0);
        let c = ctx(&p, &lib, clocks);
        let _ = PredictorParams::default();
        let sel: Vec<&PredictedDesign> = designs
            .iter()
            .map(|l| l.iter().min_by_key(|d| d.initiation_interval().value()).unwrap())
            .collect();
        // At exactly the per-transfer minimum, a chip carrying several
        // full-width transfers can exceed l × pins.
        let ii = Cycles::new(
            c.min_transfer_ii()
                .value()
                .max(sel.iter().map(|d| d.initiation_interval().value()).max().unwrap()),
        );
        let s = c.evaluate(&sel, ii).unwrap();
        // Not asserted to *always* trigger (depends on widths); instead
        // verify the invariant directly against the reported modules.
        for (chip, _) in p.chips().iter() {
            let pin_time: u64 = s
                .transfer_modules
                .iter()
                .filter(|tm| {
                    tm.pins > 0
                        && (crate::transfer::chip_of_endpoint(&p, tm.spec.src) == Some(chip)
                            || crate::transfer::chip_of_endpoint(&p, tm.spec.dst) == Some(chip))
                })
                .map(|tm| tm.duration.value() * u64::from(tm.pins))
                .sum();
            let capacity = ii.value() * u64::from(c.budgets()[chip.index()].data);
            let flagged = s.verdict.violations.iter().any(
                |v| matches!(v, Violation::PinBandwidth { chip: ci } if *ci == chip.index()),
            );
            assert_eq!(
                pin_time > capacity,
                flagged,
                "chip {chip}: pin_time={pin_time} capacity={capacity}"
            );
        }
    }

    #[test]
    fn memory_bandwidth_violation_detected() {
        use crate::spec::{MemoryAssignment, PartitioningBuilder};
        use chop_bad::PredictorParams;
        use chop_dfg::{DfgBuilder, MemoryRef, Operation};
        use chop_library::standard::example_off_shelf_ram;
        use chop_stat::units::Bits;

        // Heavy two-way traffic to one slow single-port memory block.
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let m = MemoryRef::new(0);
        let addr = b.node(Operation::Input, w);
        let mut accum = None;
        for _ in 0..8 {
            let r = b.node(Operation::MemRead(m), w);
            b.connect(addr, r).unwrap();
            let x = match accum {
                Some(prev) => {
                    let a = b.node(Operation::Add, w);
                    b.connect(prev, a).unwrap();
                    b.connect(r, a).unwrap();
                    a
                }
                None => r,
            };
            let wr = b.node(Operation::MemWrite(m), w);
            b.connect(addr, wr).unwrap();
            b.connect(x, wr).unwrap();
            accum = Some(x);
        }
        let o = b.node(Operation::Output, w);
        b.connect(accum.unwrap(), o).unwrap();
        let g = b.build().unwrap();

        let chips = chop_library::ChipSet::uniform(table2_packages()[1].clone(), 1);
        let p = PartitioningBuilder::new(g, chips)
            .with_memory(example_off_shelf_ram(), MemoryAssignment::External)
            .build()
            .unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 1, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::multi_cycle(),
            PredictorParams::default(),
        );
        let designs =
            predictor.predict(&p.partition_dfg(crate::spec::PartitionId::new(0))).unwrap();
        let c = IntegrationContext::new(
            &p,
            &lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        // Evaluate at an II big enough for each single transfer but too
        // small for the block's combined read+write busy time.
        let d = designs.iter().min_by_key(|d| d.initiation_interval()).expect("non-empty");
        let per_transfer_max = c.min_transfer_ii().value();
        let memory_transfers = c
            .transfers()
            .iter()
            .filter(|t| {
                matches!(t.src, Endpoint::Memory(_)) || matches!(t.dst, Endpoint::Memory(_))
            })
            .count() as u64;
        assert_eq!(memory_transfers, 2, "one read stream, one write stream");
        let total_busy = memory_transfers * per_transfer_max;
        let ii = Cycles::new(per_transfer_max.max(d.initiation_interval().value()));
        assert!(
            total_busy > ii.value(),
            "test setup must oversubscribe the memory: busy {total_busy} vs II {}",
            ii.value()
        );
        let s = c.evaluate(&[d], ii).unwrap();
        assert!(
            s.verdict
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MemoryBandwidth { memory: 0 })),
            "expected memory bandwidth violation, got {}",
            s.verdict
        );
    }

    #[test]
    fn mismatched_pipelined_rates_rejected() {
        let (p, lib, clocks, designs) = setup(2, 1);
        let c = ctx(&p, &lib, clocks);
        // Find two pipelined designs with different IIs.
        let mut pick: Vec<&PredictedDesign> = Vec::new();
        'outer: for a in designs[0].iter().filter(|d| d.style() == DesignStyle::Pipelined) {
            for b in designs[1].iter().filter(|d| d.style() == DesignStyle::Pipelined) {
                if a.initiation_interval() != b.initiation_interval() {
                    pick = vec![a, b];
                    break 'outer;
                }
            }
        }
        if pick.len() == 2 {
            let ii = pick
                .iter()
                .map(|d| d.initiation_interval().value())
                .max()
                .unwrap()
                .max(c.min_transfer_ii().value());
            let s = c.evaluate(&pick, Cycles::new(ii)).unwrap();
            assert!(s
                .verdict
                .violations
                .iter()
                .any(|v| matches!(v, Violation::DataRateMismatch)));
        }
    }
}
