//! The designer-facing session: predict, prune, search, report.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use chop_bad::prune::{prune, PredictionStats};
use chop_bad::{
    ArchitectureStyle, ClockConfig, PartitionEnvelope, PredictError, PredictedDesign,
    Predictor, PredictorParams,
};
use chop_library::{ChipSet, Library};

use crate::budget::{BudgetTimer, Completion, SearchBudget};
use crate::error::ChopError;
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::feasibility::{Constraints, FeasibilityCriteria};
use crate::heuristics::{self, HeuristicResult};
use crate::integration::IntegrationContext;
use crate::spec::Partitioning;
use crate::testability::TestabilityOverhead;

pub use crate::heuristics::{DesignPoint, FeasibleImplementation};

/// Which combination-search heuristic to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Heuristic **E**: explicit enumeration of all combinations.
    Enumeration,
    /// Heuristic **I**: iterative serialization (Fig. 5).
    Iterative,
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Heuristic::Enumeration => write!(f, "E"),
            Heuristic::Iterative => write!(f, "I"),
        }
    }
}

/// The result of one exploration run — the fields of one row block in the
/// paper's Tables 4 and 6, plus the recorded design space.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Heuristic that produced this outcome.
    pub heuristic: Heuristic,
    /// Feasible, non-inferior global implementations.
    pub feasible: Vec<FeasibleImplementation>,
    /// Global combinations examined ("Partitioning Imp. Trials").
    pub trials: usize,
    /// Feasible trials.
    pub feasible_trials: usize,
    /// Per-partition BAD statistics (Tables 3 and 5).
    pub prediction_stats: Vec<PredictionStats>,
    /// Wall-clock search time (the "CPU Time" column analogue).
    pub elapsed: Duration,
    /// Every design point examined (keep-all mode only).
    pub points: Vec<DesignPoint>,
    /// How the run ended: complete, truncated by a budget, or degraded.
    /// Truncation takes precedence over degradation here; `degraded`
    /// records the E→I switch unconditionally.
    pub completion: Completion,
    /// Whether a requested heuristic-E search was degraded to heuristic I.
    pub degraded: bool,
}

impl SearchOutcome {
    /// Total BAD predictions across partitions (Tables 3/5 "Total number
    /// of predictions").
    #[must_use]
    pub fn total_predictions(&self) -> usize {
        self.prediction_stats.iter().map(|s| s.total).sum()
    }

    /// Feasible BAD predictions across partitions.
    #[must_use]
    pub fn feasible_predictions(&self) -> usize {
        self.prediction_stats.iter().map(|s| s.feasible).sum()
    }

    /// Number of unique design points among those examined (Figures 7/8
    /// report "13411 (699 unique) designs").
    #[must_use]
    pub fn unique_points(&self) -> usize {
        let mut keys: Vec<_> = self.points.iter().map(DesignPoint::unique_key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heuristic {}: {} trials, {} feasible ({} non-inferior kept) in {:.2?}",
            self.heuristic,
            self.trials,
            self.feasible_trials,
            self.feasible.len(),
            self.elapsed
        )?;
        if self.completion != Completion::Complete {
            write!(f, " [{}]", self.completion)?;
        }
        Ok(())
    }
}

/// A CHOP session: one tentative partitioning plus the prediction and
/// feasibility configuration, with what-if modification methods
/// (paper §2.7).
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Session {
    partitioning: Partitioning,
    library: Library,
    clocks: ClockConfig,
    style: ArchitectureStyle,
    params: PredictorParams,
    constraints: Constraints,
    criteria: FeasibilityCriteria,
    testability: TestabilityOverhead,
    prune: bool,
    keep_all: bool,
    budget: SearchBudget,
    #[cfg(feature = "fault-inject")]
    fault_plan: Option<FaultPlan>,
}

impl Session {
    /// Creates a session with the paper's default feasibility criteria,
    /// pruning enabled and keep-all disabled.
    #[must_use]
    pub fn new(
        partitioning: Partitioning,
        library: Library,
        clocks: ClockConfig,
        style: ArchitectureStyle,
        params: PredictorParams,
        constraints: Constraints,
    ) -> Self {
        Self {
            partitioning,
            library,
            clocks,
            style,
            params,
            constraints,
            criteria: FeasibilityCriteria::paper_defaults(),
            testability: TestabilityOverhead::none(),
            prune: true,
            keep_all: false,
            budget: SearchBudget::default(),
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Applies a testability discipline to every chip (§5 future work).
    ///
    /// # Panics
    ///
    /// Panics if the overhead fractions are invalid.
    #[must_use]
    pub fn with_testability(mut self, testability: TestabilityOverhead) -> Self {
        testability.assert_valid();
        self.testability = testability;
        self
    }

    /// Overrides the feasibility criteria.
    #[must_use]
    pub fn with_criteria(mut self, criteria: FeasibilityCriteria) -> Self {
        self.criteria = criteria;
        self
    }

    /// Enables or disables level-1/2 pruning (disable to observe the whole
    /// design space, at the cost the paper quantifies in §3.1).
    #[must_use]
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Enables keep-all recording of every examined design point
    /// (Figures 7/8).
    #[must_use]
    pub fn with_keep_all(mut self, keep_all: bool) -> Self {
        self.keep_all = keep_all;
        self
    }

    /// Sets the resource budget for exploration runs (deadline, trial and
    /// point caps, E→I degradation threshold).
    #[must_use]
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The search budget in force.
    #[must_use]
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Attaches a scripted fault plan to the prediction phase (testing
    /// only; compiled with the `fault-inject` feature).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The tentative partitioning under study.
    #[must_use]
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The hard constraints in force.
    #[must_use]
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The clock configuration in force.
    #[must_use]
    pub fn clocks(&self) -> &ClockConfig {
        &self.clocks
    }

    /// The component library in force.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// What-if: replaces the partitioning (operation migration, partition
    /// migration — build the new [`Partitioning`] first).
    #[must_use]
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// What-if: replaces the target chip set (§2.7 "Target chip set").
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::spec::SpecError`] if the set is
    /// empty or too small for the current assignment.
    pub fn with_chip_set(mut self, chips: ChipSet) -> Result<Self, crate::spec::SpecError> {
        self.partitioning = self.partitioning.with_chip_set(chips)?;
        Ok(self)
    }

    /// What-if: replaces the constraints (§2.7 "Constraints").
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Runs BAD on every partition and applies level-1 pruning (unless
    /// disabled), returning the surviving lists and the Table 3/5
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ChopError::Predict`] if BAD cannot serve a partition —
    /// including a predictor *panic*, which is contained with
    /// `catch_unwind` and reported as [`chop_bad::PredictError::Panicked`]
    /// for the offending partition only.
    pub fn predict_partitions(
        &self,
    ) -> Result<(Vec<Vec<PredictedDesign>>, Vec<PredictionStats>), ChopError> {
        let (lists, stats, _) = self.predict_partitions_with(&BudgetTimer::unlimited())?;
        Ok((lists, stats))
    }

    /// Budget-aware prediction sweep: checks the deadline before each
    /// partition and stops early with `Some(TruncatedDeadline)` plus the
    /// lists and statistics gathered so far.
    fn predict_partitions_with(
        &self,
        timer: &BudgetTimer,
    ) -> Result<PartialPredictions, ChopError> {
        let predictor =
            Predictor::new(self.library.clone(), self.clocks, self.style, self.params);
        let mut lists = Vec::with_capacity(self.partitioning.partition_count());
        let mut stats = Vec::with_capacity(self.partitioning.partition_count());
        for p in self.partitioning.partition_ids() {
            if timer.deadline_exceeded() {
                return Ok((lists, stats, Some(Completion::TruncatedDeadline)));
            }
            let sub = self.partitioning.partition_dfg(p);
            // A panic anywhere in BAD poisons only this partition: it is
            // caught here and reported as a typed Predict error.
            let predicted = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &self.fault_plan {
                    plan.before_predict(p.index());
                }
                #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                let mut designs = predictor.predict(&sub)?;
                // Post-prediction corruption stays inside the guard: a
                // poisoned estimate that trips a numeric invariant (e.g.
                // `Estimate` rejecting NaN) is contained the same way.
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &self.fault_plan {
                    plan.corrupt(p.index(), &mut designs);
                }
                Ok(designs)
            }));
            let designs = match predicted {
                Ok(Ok(designs)) => designs,
                Ok(Err(source)) => {
                    return Err(ChopError::Predict { partition: p.index(), source })
                }
                Err(payload) => {
                    return Err(ChopError::Predict {
                        partition: p.index(),
                        source: PredictError::Panicked(panic_message(payload.as_ref())),
                    })
                }
            };
            let chip = self.partitioning.chips().chip(self.partitioning.chip_of(p));
            let envelope = PartitionEnvelope::new(
                chip.usable_area(),
                self.constraints.performance(),
                self.constraints.delay(),
            )
            .with_thresholds(self.criteria.area, self.criteria.performance, self.criteria.delay);
            if self.prune {
                let (kept, s) = prune(designs, &envelope, &self.clocks);
                lists.push(kept);
                stats.push(s);
            } else {
                // Statistics still reflect what pruning *would* keep.
                let total = designs.len();
                let feasible = designs
                    .iter()
                    .filter(|d| envelope.admits(d, &self.clocks))
                    .count();
                stats.push(PredictionStats { total, feasible, non_inferior: total });
                lists.push(designs);
            }
        }
        Ok((lists, stats, None))
    }

    /// Runs the full CHOP flow: per-partition prediction, level-1 pruning,
    /// combination search with the chosen heuristic and system-integration
    /// feasibility analysis — all under the session's [`SearchBudget`].
    ///
    /// A tripped budget is a *normal outcome*: the returned
    /// [`SearchOutcome`] holds whatever was found before the trip, tagged
    /// with the truncating [`Completion`]. Likewise, a heuristic-E request
    /// whose predicted combination count (the product of surviving
    /// per-partition predictions) exceeds the budget's degradation
    /// threshold runs heuristic I instead; `outcome.heuristic` reports the
    /// heuristic that actually ran and `outcome.degraded` records the
    /// switch.
    ///
    /// # Errors
    ///
    /// Returns a [`ChopError`] for prediction or structural integration
    /// failures; an infeasible partitioning is a normal outcome with an
    /// empty `feasible` list.
    pub fn explore(&self, heuristic: Heuristic) -> Result<SearchOutcome, ChopError> {
        let timer = BudgetTimer::start(self.budget);
        let (lists, stats, predict_truncation) = self.predict_partitions_with(&timer)?;
        if let Some(status) = predict_truncation {
            return Ok(SearchOutcome {
                heuristic,
                feasible: Vec::new(),
                trials: 0,
                feasible_trials: 0,
                prediction_stats: stats,
                elapsed: timer.elapsed(),
                points: Vec::new(),
                completion: status,
                degraded: false,
            });
        }
        let ctx = IntegrationContext::new(
            &self.partitioning,
            &self.library,
            self.clocks,
            self.params,
            self.criteria,
            self.constraints,
        )
        .with_testability(self.testability);
        let mut effective = heuristic;
        let mut degraded = false;
        if heuristic == Heuristic::Enumeration {
            let combinations = predicted_combinations(&lists);
            if self.budget.should_degrade(combinations) {
                effective = Heuristic::Iterative;
                degraded = true;
            }
        }
        let start = Instant::now();
        let result: HeuristicResult = match effective {
            Heuristic::Enumeration => {
                heuristics::enumeration::run(&ctx, &lists, self.prune, self.keep_all, &timer)?
            }
            Heuristic::Iterative => heuristics::iterative::run(
                &ctx,
                &lists,
                self.clocks.main_cycle(),
                self.keep_all,
                &timer,
            )?,
        };
        let elapsed = start.elapsed();
        let completion = if result.completion.is_truncated() {
            result.completion
        } else if degraded {
            Completion::DegradedToIterative
        } else {
            Completion::Complete
        };
        Ok(SearchOutcome {
            heuristic: effective,
            feasible: result.feasible,
            trials: result.trials,
            feasible_trials: result.feasible_trials,
            prediction_stats: stats,
            elapsed,
            points: result.points,
            completion,
            degraded,
        })
    }
}

/// The lists/statistics gathered before a deadline trip, plus the trip
/// status (`None` when the sweep finished).
type PartialPredictions =
    (Vec<Vec<PredictedDesign>>, Vec<PredictionStats>, Option<Completion>);

/// Heuristic E's search-space size: the product of surviving per-partition
/// prediction counts, saturating at `u128::MAX`.
fn predicted_combinations(lists: &[Vec<PredictedDesign>]) -> u128 {
    lists
        .iter()
        .try_fold(1u128, |acc, list| acc.checked_mul(list.len() as u128))
        .unwrap_or(u128::MAX)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_stat::units::Nanos;

    use super::*;
    use crate::spec::PartitioningBuilder;

    fn session(k: usize) -> Session {
        let p = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[1].clone(), k),
        )
        .split_horizontal(k)
        .build()
        .unwrap();
        Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    #[test]
    fn both_heuristics_find_feasible_designs() {
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let outcome = session(1).explore(h).unwrap();
            assert!(outcome.feasible_trials >= 1, "{h} found nothing");
            assert!(!outcome.feasible.is_empty());
        }
    }

    #[test]
    fn heuristics_agree_on_best_initiation_interval_single_chip() {
        let e = session(1).explore(Heuristic::Enumeration).unwrap();
        let i = session(1).explore(Heuristic::Iterative).unwrap();
        let best = |o: &SearchOutcome| {
            o.feasible
                .iter()
                .map(|f| f.system.initiation_interval.value())
                .min()
                .unwrap()
        };
        assert_eq!(best(&e), best(&i));
    }

    #[test]
    fn keep_all_mode_records_points() {
        let outcome = session(1)
            .with_pruning(false)
            .with_keep_all(true)
            .explore(Heuristic::Enumeration)
            .unwrap();
        assert_eq!(outcome.points.len(), outcome.trials);
        assert!(outcome.unique_points() > 0);
        assert!(outcome.unique_points() <= outcome.points.len());
    }

    #[test]
    fn stats_cover_each_partition() {
        let outcome = session(2).explore(Heuristic::Iterative).unwrap();
        assert_eq!(outcome.prediction_stats.len(), 2);
        assert!(outcome.total_predictions() > 0);
    }

    #[test]
    fn outcome_display_is_informative() {
        let outcome = session(1).explore(Heuristic::Iterative).unwrap();
        let text = outcome.to_string();
        assert!(text.contains("heuristic I"));
        assert!(text.contains("trials"));
    }

    #[test]
    fn what_if_constraint_change_applies() {
        let s = session(1);
        let tightened = s
            .clone()
            .with_constraints(Constraints::new(Nanos::new(300.0), Nanos::new(300.0)));
        let loose = s.explore(Heuristic::Iterative).unwrap();
        let tight = tightened.explore(Heuristic::Iterative).unwrap();
        assert!(tight.feasible.len() <= loose.feasible.len());
    }
}
