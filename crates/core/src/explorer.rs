//! The designer-facing session: predict, prune, search, report.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use chop_bad::prune::PredictionStats;
use chop_bad::{ArchitectureStyle, ClockConfig, PredictedDesign, PredictorParams};
use chop_dfg::grouping::GroupingError;
use chop_dfg::NodeId;
use chop_library::{ChipSet, Library};

use crate::budget::{BudgetTimer, Completion, SearchBudget};
use crate::cache::{CacheStats, PredictionCache};
use crate::engine;
use crate::engine::trace::{ExploreTrace, TraceRecorder};
use crate::error::ChopError;
#[cfg(feature = "fault-inject")]
use crate::fault::FaultPlan;
use crate::feasibility::{Constraints, FeasibilityCriteria};
use crate::spec::{PartitionId, Partitioning};
use crate::testability::TestabilityOverhead;

pub use crate::heuristics::{DesignPoint, FeasibleImplementation};

/// Which combination-search heuristic to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Heuristic **E**: explicit enumeration of all combinations.
    Enumeration,
    /// Heuristic **I**: iterative serialization (Fig. 5).
    Iterative,
}

impl fmt::Display for Heuristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Heuristic::Enumeration => write!(f, "E"),
            Heuristic::Iterative => write!(f, "I"),
        }
    }
}

/// The result of one exploration run — the fields of one row block in the
/// paper's Tables 4 and 6, plus the recorded design space and the run's
/// pipeline instrumentation.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Heuristic that produced this outcome.
    pub heuristic: Heuristic,
    /// Feasible, non-inferior global implementations. Selections index
    /// into [`SearchOutcome::predictions`]; resolve them with
    /// [`SearchOutcome::selected_designs`].
    pub feasible: Vec<FeasibleImplementation>,
    /// Global combinations examined ("Partitioning Imp. Trials").
    pub trials: usize,
    /// Feasible trials.
    pub feasible_trials: usize,
    /// Per-partition BAD statistics (Tables 3 and 5).
    pub prediction_stats: Vec<PredictionStats>,
    /// Wall-clock search time (the "CPU Time" column analogue).
    pub elapsed: Duration,
    /// Every design point examined (keep-all mode only).
    pub points: Vec<DesignPoint>,
    /// How the run ended: complete, truncated by a budget, or degraded.
    /// Truncation takes precedence over degradation here; `degraded`
    /// records the E→I switch unconditionally.
    pub completion: Completion,
    /// Whether a requested heuristic-E search was degraded to heuristic I.
    pub degraded: bool,
    /// The surviving per-partition prediction lists the search ran over
    /// (shared with the session's prediction cache).
    pub predictions: Vec<Arc<[PredictedDesign]>>,
    /// Pipeline counters and stage spans for this run.
    pub trace: ExploreTrace,
    /// Prediction-cache activity during this run (counter deltas plus the
    /// current entry/byte gauges).
    pub cache: CacheStats,
}

impl SearchOutcome {
    /// Total BAD predictions across partitions (Tables 3/5 "Total number
    /// of predictions").
    #[must_use]
    pub fn total_predictions(&self) -> usize {
        self.prediction_stats.iter().map(|s| s.total).sum()
    }

    /// Feasible BAD predictions across partitions.
    #[must_use]
    pub fn feasible_predictions(&self) -> usize {
        self.prediction_stats.iter().map(|s| s.feasible).sum()
    }

    /// Number of unique design points among those examined (Figures 7/8
    /// report "13411 (699 unique) designs").
    #[must_use]
    pub fn unique_points(&self) -> usize {
        let mut keys: Vec<_> = self.points.iter().map(DesignPoint::unique_key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Resolves one feasible implementation's selection indices into the
    /// per-partition predicted designs they name.
    ///
    /// # Panics
    ///
    /// Panics if `implementation` does not belong to this outcome (its
    /// indices must address [`SearchOutcome::predictions`]).
    #[must_use]
    pub fn selected_designs(
        &self,
        implementation: &FeasibleImplementation,
    ) -> Vec<&PredictedDesign> {
        implementation
            .selection
            .iter()
            .zip(&self.predictions)
            .map(|(&i, list)| &list[i as usize])
            .collect()
    }

    /// A canonical fingerprint of the run's *results*: heuristic,
    /// feasible-trial count, completion, per-partition prediction
    /// statistics and list lengths, every feasible implementation
    /// (selection indices plus the exact bit patterns of its system
    /// estimates) and every recorded design point.
    ///
    /// Wall-clock measurements (`elapsed`, `trace`) and cache counters are
    /// excluded: they legitimately differ between runs and thread counts
    /// (two workers may race to predict identical partitions, shifting
    /// hit/miss counts without changing any result). The raw `trials`
    /// count is excluded too: under branch-and-bound it counts *visited*
    /// combinations, which sound pruning is free to reduce without
    /// changing any retained result — the per-partition list lengths
    /// already pin the search space. Two runs with equal digests found
    /// exactly the same designs — the determinism tests assert digest
    /// equality across `--jobs 1/2/8` and across pruning modes.
    #[must_use]
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "h={};feasible_trials={};completion={:?};degraded={};",
            self.heuristic, self.feasible_trials, self.completion, self.degraded
        );
        for (i, (list, s)) in self.predictions.iter().zip(&self.prediction_stats).enumerate() {
            let _ = write!(
                out,
                "p{}:{}/{}/{}/{};",
                i,
                list.len(),
                s.total,
                s.feasible,
                s.non_inferior
            );
        }
        for f in &self.feasible {
            let _ = write!(out, "f:");
            for &i in &f.selection {
                let _ = write!(out, "{i},");
            }
            let sys = &f.system;
            let _ = write!(
                out,
                "ii={};delay={};ii_ns={:016x};delay_ns={:016x};feas={};",
                sys.initiation_interval.value(),
                sys.delay.value(),
                sys.initiation_ns.likely().to_bits(),
                sys.delay_ns.likely().to_bits(),
                sys.verdict.feasible
            );
        }
        for p in &self.points {
            let _ = write!(
                out,
                "d:{:016x}/{:016x}/{:016x}/{};",
                p.area.to_bits(),
                p.delay_ns.to_bits(),
                p.initiation_ns.to_bits(),
                p.feasible
            );
        }
        out
    }
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heuristic {}: {} trials, {} feasible ({} non-inferior kept) in {:.2?}",
            self.heuristic,
            self.trials,
            self.feasible_trials,
            self.feasible.len(),
            self.elapsed
        )?;
        if self.completion != Completion::Complete {
            write!(f, " [{}]", self.completion)?;
        }
        Ok(())
    }
}

/// Per-partition surviving prediction lists plus their Table 3/5
/// pruning statistics, as returned by [`Session::predict_partitions`].
pub type PartitionPredictions = (Vec<Arc<[PredictedDesign]>>, Vec<PredictionStats>);

/// A CHOP session: one tentative partitioning plus the prediction and
/// feasibility configuration, with what-if modification methods
/// (paper §2.7).
///
/// See the [crate-level documentation](crate) for a complete example.
///
/// # Builder contract
///
/// This is the one normative statement of the `Session` builder rules;
/// every builder method's own doc comment defers to it.
///
/// * `with_*` methods are infallible: they take values whose invariants
///   their own types already enforce (flags, budgets, thread counts) and
///   always return the modified session.
/// * Methods whose argument must be *validated* — against the session's
///   state or against invariants the argument's type cannot express — are
///   named `try_with_*` and return `Result<Self, SpecError>`:
///   [`Session::try_with_chip_set`] (chip set vs. partition assignment),
///   [`Session::try_with_partitioning`] (structural re-validation) and
///   [`Session::try_with_constraints`] (positive, finite bounds).
/// * Fallible what-if edits that *derive* a new session keep their verb
///   names ([`Session::repartition`], [`Session::apply_moves`],
///   [`Session::optimize`]).
/// * There are no panicking variants: the former `with_partitioning` /
///   `with_constraints` shims are gone, and every validation failure is
///   a typed `Result`.
#[derive(Debug, Clone)]
pub struct Session {
    pub(crate) partitioning: Partitioning,
    pub(crate) library: Library,
    pub(crate) clocks: ClockConfig,
    pub(crate) style: ArchitectureStyle,
    pub(crate) params: PredictorParams,
    pub(crate) constraints: Constraints,
    pub(crate) criteria: FeasibilityCriteria,
    pub(crate) testability: TestabilityOverhead,
    pub(crate) prune: bool,
    pub(crate) keep_all: bool,
    pub(crate) branch_and_bound: bool,
    pub(crate) budget: SearchBudget,
    pub(crate) jobs: usize,
    /// Shared with every session cloned or derived from this one, so a
    /// what-if dialogue pays for each distinct partition prediction once.
    pub(crate) cache: Arc<PredictionCache>,
    #[cfg(feature = "fault-inject")]
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl Session {
    /// Creates a session with the paper's default feasibility criteria,
    /// pruning enabled, keep-all disabled, one worker thread and a fresh
    /// prediction cache.
    #[must_use]
    pub fn new(
        partitioning: Partitioning,
        library: Library,
        clocks: ClockConfig,
        style: ArchitectureStyle,
        params: PredictorParams,
        constraints: Constraints,
    ) -> Self {
        Self {
            partitioning,
            library,
            clocks,
            style,
            params,
            constraints,
            criteria: FeasibilityCriteria::paper_defaults(),
            testability: TestabilityOverhead::none(),
            prune: true,
            keep_all: false,
            branch_and_bound: true,
            budget: SearchBudget::default(),
            jobs: 1,
            cache: Arc::new(PredictionCache::new()),
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Applies a testability discipline to every chip (§5 future work).
    ///
    /// # Panics
    ///
    /// Panics if the overhead fractions are invalid.
    #[must_use]
    pub fn with_testability(mut self, testability: TestabilityOverhead) -> Self {
        testability.assert_valid();
        self.testability = testability;
        self
    }

    /// Overrides the feasibility criteria.
    #[must_use]
    pub fn with_criteria(mut self, criteria: FeasibilityCriteria) -> Self {
        self.criteria = criteria;
        self
    }

    /// Enables or disables level-1/2 pruning (disable to observe the whole
    /// design space, at the cost the paper quantifies in §3.1).
    #[must_use]
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Enables keep-all recording of every examined design point
    /// (Figures 7/8).
    #[must_use]
    pub fn with_keep_all(mut self, keep_all: bool) -> Self {
        self.keep_all = keep_all;
        self
    }

    /// Enables or disables branch-and-bound subtree skipping inside
    /// heuristic E (enabled by default). Only active when pruning is on
    /// and keep-all is off; it removes provably infeasible combinations
    /// from the walk without changing the retained feasible set or
    /// [`SearchOutcome::digest`] — disable it to measure the exhaustive
    /// odometer, or when the `trials` count must equal the full
    /// cross-product size.
    #[must_use]
    pub fn with_branch_and_bound(mut self, branch_and_bound: bool) -> Self {
        self.branch_and_bound = branch_and_bound;
        self
    }

    /// Whether branch-and-bound subtree skipping is enabled.
    #[must_use]
    pub fn branch_and_bound(&self) -> bool {
        self.branch_and_bound
    }

    /// Sets the resource budget for exploration runs (deadline, trial and
    /// point caps, E→I degradation threshold).
    #[must_use]
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread allowance for the prediction and
    /// combination-scoring stages (`0` is clamped to `1`, i.e. serial).
    /// Exploration results are identical for every value — only wall-clock
    /// time and the trace's span split change; see
    /// [`SearchOutcome::digest`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The search budget in force.
    #[must_use]
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// The worker-thread allowance in force.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Replaces the session's prediction cache with a fresh one holding
    /// at most `capacity` entries (`0` disables memoization entirely).
    /// Unlike the other `with_*` builders this *detaches* the session
    /// from the cache shared with its clones — useful for ablation
    /// measurements and for bounding memory on huge design spaces.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(PredictionCache::with_capacity(capacity));
        self
    }

    /// Like [`Session::with_cache_capacity`], but also sizing the lock
    /// stripe: the fresh cache is split over `shards` independently
    /// locked shards (rounded up to a power of two; see
    /// [`recommended_shards`](crate::cache::recommended_shards) for
    /// sizing to a `--jobs` count). Shard count never affects results —
    /// only contention.
    #[must_use]
    pub fn with_cache_config(mut self, capacity: usize, shards: usize) -> Self {
        self.cache = Arc::new(PredictionCache::with_config(capacity, shards));
        self
    }

    /// Attaches an externally owned prediction cache, replacing the
    /// session's current one. This is how a *service* shares one cache
    /// across many independent sessions: entries are content-addressed
    /// (configuration fingerprint + partition structural hash), so two
    /// sessions exploring identical partitions under identical
    /// configurations hit each other's entries, and differing
    /// configurations can never collide. The cache is thread-safe; handing
    /// the same `Arc` to sessions exploring concurrently is sound.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The session's prediction cache handle (shared with every session
    /// cloned or derived from this one, and with any session given the
    /// same cache via [`Session::with_shared_cache`]).
    #[must_use]
    pub fn shared_cache(&self) -> Arc<PredictionCache> {
        Arc::clone(&self.cache)
    }

    /// Lifetime statistics of the session's shared prediction cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Attaches a scripted fault plan to the prediction phase (testing
    /// only; compiled with the `fault-inject` feature). Fault-injected
    /// sessions bypass the prediction cache: plans script per-call
    /// behavior, which memoization would suppress.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The tentative partitioning under study.
    #[must_use]
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The hard constraints in force.
    #[must_use]
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The clock configuration in force.
    #[must_use]
    pub fn clocks(&self) -> &ClockConfig {
        &self.clocks
    }

    /// The component library in force.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// What-if: replaces the partitioning (operation migration, partition
    /// migration — build the new [`Partitioning`] first), re-validating
    /// its structural invariants per the [builder contract](Session). The
    /// prediction cache is kept: unchanged partitions of the new
    /// partitioning are served from it.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::spec::SpecError`] found by
    /// [`Partitioning::validate`].
    pub fn try_with_partitioning(
        mut self,
        partitioning: Partitioning,
    ) -> Result<Self, crate::spec::SpecError> {
        partitioning.validate()?;
        self.partitioning = partitioning;
        Ok(self)
    }

    /// What-if: moves one DFG node to another partition, returning the
    /// re-keyed session (paper §2.7 "operation migration"). The derived
    /// session shares this session's prediction cache, so a follow-up
    /// [`explore`](Session::explore) re-predicts only the source and
    /// destination partitions and serves every other partition from the
    /// cache — check [`SearchOutcome::cache`] and
    /// [`ExploreTrace::predictor_calls`] to observe it.
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] if `node` is unknown, `to` is not a
    /// valid partition, or the move would empty the node's partition.
    pub fn repartition(&self, node: NodeId, to: PartitionId) -> Result<Self, GroupingError> {
        let mut next = self.clone();
        next.partitioning = self.partitioning.clone().with_node_moved(node, to)?;
        Ok(next)
    }

    /// What-if: replaces the target chip set (§2.7 "Target chip set").
    /// Fallible — the set is cross-validated against the current partition
    /// assignment — hence `try_with_*`; see the builder contract in the
    /// [type docs](Session).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::spec::SpecError`] if the set is
    /// empty or too small for the current assignment.
    pub fn try_with_chip_set(mut self, chips: ChipSet) -> Result<Self, crate::spec::SpecError> {
        self.partitioning = self.partitioning.with_chip_set(chips)?;
        Ok(self)
    }

    /// What-if: replaces the constraints (§2.7 "Constraints"), validating
    /// that every bound is positive and finite per the
    /// [builder contract](Session).
    ///
    /// # Errors
    ///
    /// Returns [`crate::spec::SpecError::InvalidConstraint`] naming the
    /// offending bound.
    pub fn try_with_constraints(
        mut self,
        constraints: Constraints,
    ) -> Result<Self, crate::spec::SpecError> {
        constraints.validate()?;
        self.constraints = constraints;
        Ok(self)
    }

    /// Runs BAD on every partition and applies level-1 pruning (unless
    /// disabled), returning the surviving lists and the Table 3/5
    /// statistics. Served from the session's prediction cache where
    /// possible; uncached partitions fan across [`Session::jobs`] workers.
    ///
    /// # Errors
    ///
    /// Returns [`ChopError::Predict`] if BAD cannot serve a partition —
    /// including a predictor *panic*, which is contained with
    /// `catch_unwind` and reported as [`chop_bad::PredictError::Panicked`]
    /// for the offending partition only.
    pub fn predict_partitions(&self) -> Result<PartitionPredictions, ChopError> {
        let trace = TraceRecorder::new(self.jobs);
        let output = engine::predict::predict_stage(self, &BudgetTimer::unlimited(), &trace)?;
        Ok((output.lists, output.stats))
    }

    /// Runs the full CHOP flow through the staged [`engine`]: cached
    /// per-partition prediction, level-1 pruning, combination search with
    /// the chosen heuristic and system-integration feasibility analysis —
    /// all under the session's [`SearchBudget`], fanned across
    /// [`Session::jobs`] worker threads, and instrumented in the outcome's
    /// [`trace`](SearchOutcome::trace).
    ///
    /// A tripped budget is a *normal outcome*: the returned
    /// [`SearchOutcome`] holds whatever was found before the trip, tagged
    /// with the truncating [`Completion`]. Likewise, a heuristic-E request
    /// whose predicted combination count (the product of surviving
    /// per-partition predictions) exceeds the budget's degradation
    /// threshold runs heuristic I instead; `outcome.heuristic` reports the
    /// heuristic that actually ran and `outcome.degraded` records the
    /// switch.
    ///
    /// # Errors
    ///
    /// Returns a [`ChopError`] for prediction or structural integration
    /// failures; an infeasible partitioning is a normal outcome with an
    /// empty `feasible` list.
    pub fn explore(&self, heuristic: Heuristic) -> Result<SearchOutcome, ChopError> {
        engine::explore(self, heuristic)
    }
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_stat::units::Nanos;

    use super::*;
    use crate::spec::PartitioningBuilder;

    fn session(k: usize) -> Session {
        let p = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[1].clone(), k),
        )
        .split_horizontal(k)
        .build()
        .unwrap();
        Session::new(
            p,
            table1_library(),
            ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap(),
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    #[test]
    fn both_heuristics_find_feasible_designs() {
        for h in [Heuristic::Enumeration, Heuristic::Iterative] {
            let outcome = session(1).explore(h).unwrap();
            assert!(outcome.feasible_trials >= 1, "{h} found nothing");
            assert!(!outcome.feasible.is_empty());
        }
    }

    #[test]
    fn heuristics_agree_on_best_initiation_interval_single_chip() {
        let e = session(1).explore(Heuristic::Enumeration).unwrap();
        let i = session(1).explore(Heuristic::Iterative).unwrap();
        let best = |o: &SearchOutcome| {
            o.feasible.iter().map(|f| f.system.initiation_interval.value()).min().unwrap()
        };
        assert_eq!(best(&e), best(&i));
    }

    #[test]
    fn keep_all_mode_records_points() {
        let outcome = session(1)
            .with_pruning(false)
            .with_keep_all(true)
            .explore(Heuristic::Enumeration)
            .unwrap();
        assert_eq!(outcome.points.len(), outcome.trials);
        assert!(outcome.unique_points() > 0);
        assert!(outcome.unique_points() <= outcome.points.len());
    }

    #[test]
    fn stats_cover_each_partition() {
        let outcome = session(2).explore(Heuristic::Iterative).unwrap();
        assert_eq!(outcome.prediction_stats.len(), 2);
        assert!(outcome.total_predictions() > 0);
    }

    #[test]
    fn outcome_display_is_informative() {
        let outcome = session(1).explore(Heuristic::Iterative).unwrap();
        let text = outcome.to_string();
        assert!(text.contains("heuristic I"));
        assert!(text.contains("trials"));
    }

    #[test]
    fn what_if_constraint_change_applies() {
        let s = session(1);
        let tightened = s
            .clone()
            .try_with_constraints(Constraints::new(Nanos::new(300.0), Nanos::new(300.0)))
            .unwrap();
        let loose = s.explore(Heuristic::Iterative).unwrap();
        let tight = tightened.explore(Heuristic::Iterative).unwrap();
        assert!(tight.feasible.len() <= loose.feasible.len());
    }

    #[test]
    fn selected_designs_resolve_selection_indices() {
        let outcome = session(2).explore(Heuristic::Enumeration).unwrap();
        let best = outcome.feasible.first().expect("a feasible implementation");
        let designs = outcome.selected_designs(best);
        assert_eq!(designs.len(), 2);
    }

    #[test]
    fn explore_populates_trace_and_cache_stats() {
        let outcome = session(2).explore(Heuristic::Enumeration).unwrap();
        assert_eq!(outcome.trace.jobs, 1);
        assert_eq!(outcome.trace.predictor_calls, 2);
        assert_eq!(outcome.cache.misses, 2);
        assert_eq!(outcome.cache.entries, 2);
        assert!(outcome.trace.evaluations > 0);
        assert!(outcome.trace.predict_ns > 0);
    }

    #[test]
    fn second_explore_is_served_from_the_cache() {
        let s = session(2);
        let first = s.explore(Heuristic::Iterative).unwrap();
        assert_eq!(first.trace.cache_hits, 0);
        let second = s.explore(Heuristic::Iterative).unwrap();
        assert_eq!(second.trace.predictor_calls, 0);
        assert_eq!(second.trace.cache_hits, 2);
        assert_eq!(first.digest(), second.digest());
    }

    #[test]
    fn session_and_cache_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<PredictionCache>();
        assert_send_sync::<SearchOutcome>();
    }

    #[test]
    fn try_with_partitioning_accepts_validated_values() {
        let s = session(2);
        let p = s.partitioning().clone();
        let moved = s.try_with_partitioning(p).unwrap();
        assert_eq!(moved.partitioning().partition_count(), 2);
    }

    #[test]
    fn try_with_constraints_rejects_zero_bounds() {
        let err = session(1)
            .try_with_constraints(Constraints::new(Nanos::zero(), Nanos::new(1.0)))
            .unwrap_err();
        assert_eq!(err, crate::spec::SpecError::InvalidConstraint("performance"));
    }

    #[test]
    fn shared_cache_serves_sibling_sessions() {
        let a = session(2);
        let b = session(2).with_shared_cache(a.shared_cache());
        let first = a.explore(Heuristic::Iterative).unwrap();
        assert_eq!(first.trace.cache_hits, 0);
        // Identical configuration + partitions → b is served entirely
        // from a's entries.
        let second = b.explore(Heuristic::Iterative).unwrap();
        assert_eq!(second.trace.predictor_calls, 0);
        assert_eq!(second.trace.cache_hits, 2);
        assert_eq!(first.digest(), second.digest());
    }

    #[test]
    fn digest_ignores_timing_but_not_results() {
        let a = session(1).explore(Heuristic::Enumeration).unwrap();
        let b = session(1).explore(Heuristic::Enumeration).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = session(1)
            .try_with_constraints(Constraints::new(Nanos::new(3_000.0), Nanos::new(3_000.0)))
            .unwrap()
            .explore(Heuristic::Enumeration)
            .unwrap();
        assert_ne!(a.digest(), c.digest());
    }
}
