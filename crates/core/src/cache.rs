//! Content-addressed memoization of per-partition BAD predictions.
//!
//! CHOP is interactive: the designer edits one partition, asks again, and
//! should not pay for re-predicting the other partitions. The exploration
//! engine therefore keys each partition's (predicted, level-1-pruned)
//! design list by a stable fingerprint of everything the prediction
//! depends on — the partition's [structural hash](chop_dfg::hash), the
//! chip's usable area and the predictor/clock/style/constraint
//! configuration — and memoizes the result in a [`PredictionCache`].
//!
//! The cache is shared between the sessions of one what-if dialogue:
//! [`Session::repartition`](crate::Session::repartition) keeps the cache
//! of the parent session, so a follow-up [`explore`](crate::Session::explore)
//! re-predicts only the partitions whose fingerprint changed.
//!
//! Entries are bounded ([`DEFAULT_CACHE_CAPACITY`]) with least-recently-used
//! eviction; [`CacheStats`] reports hits, misses, evictions and the
//! approximate resident bytes, and each [`SearchOutcome`](crate::SearchOutcome)
//! carries the per-run delta.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use chop_bad::prune::PredictionStats;
use chop_bad::PredictedDesign;
use serde::{Deserialize, Serialize};

/// Default bound on the number of cached partition entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Aggregate cache counters.
///
/// `hits`, `misses` and `evictions` are lifetime counters of the cache
/// (monotonically increasing); `entries` and `bytes` are point-in-time
/// gauges. A [`SearchOutcome`](crate::SearchOutcome) reports the counter
/// *delta* of its run via [`CacheStats::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the predictor.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident (design structs only; heap
    /// detail inside designs is estimated, not measured).
    pub bytes: u64,
}

impl CacheStats {
    /// The counters accumulated since `earlier` (for `hits`/`misses`/
    /// `evictions`); `entries`/`bytes` are reported as the current gauges.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
            bytes: self.bytes,
        }
    }
}

/// One memoized prediction: the pruned design list and its Table 3/5
/// statistics.
#[derive(Debug, Clone)]
struct Entry {
    designs: Arc<[PredictedDesign]>,
    stats: PredictionStats,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    bytes: u64,
}

/// A bounded, thread-safe LRU cache of per-partition predictions.
///
/// Lookup keys are the content-addressed fingerprints computed by the
/// exploration engine (see the [module docs](self)). The cache hands out
/// `Arc<[PredictedDesign]>` so hits share one allocation with every
/// session and worker thread that uses them.
#[derive(Debug)]
pub struct PredictionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictionCache {
    /// Creates a cache bounded at [`DEFAULT_CACHE_CAPACITY`] entries.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a cache bounded at `capacity` entries. A capacity of zero
    /// disables memoization (every lookup misses, nothing is retained).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), capacity }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked while holding the lock cannot leave the
        // map structurally broken (all mutations are single-step inserts/
        // removes), so recover instead of propagating the poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<(Arc<[PredictedDesign]>, PredictionStats)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let out = (Arc::clone(&entry.designs), entry.stats);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used
    /// entries beyond the capacity bound.
    pub fn insert(&self, key: u64, designs: Arc<[PredictedDesign]>, stats: PredictionStats) {
        if self.capacity == 0 {
            return;
        }
        let bytes = approximate_bytes(&designs);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) =
            inner.map.insert(key, Entry { designs, stats, bytes, last_used: tick })
        {
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes += bytes;
        while inner.map.len() > self.capacity {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(evicted.bytes);
                inner.evictions += 1;
            }
        }
    }

    /// A point-in-time snapshot of the cache counters and gauges.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry-capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Approximate resident size of a design list. `PredictedDesign` owns
/// small maps and strings whose heap size is not walked; the struct size
/// plus a fixed per-design overhead is close enough for an eviction gauge.
fn approximate_bytes(designs: &[PredictedDesign]) -> u64 {
    const PER_DESIGN_HEAP_GUESS: usize = 160;
    ((std::mem::size_of::<PredictedDesign>() + PER_DESIGN_HEAP_GUESS) * designs.len()
        + std::mem::size_of::<Entry>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> (Arc<[PredictedDesign]>, PredictionStats) {
        let designs: Arc<[PredictedDesign]> = Vec::new().into();
        let _ = n;
        (designs, PredictionStats { total: n, feasible: n, non_inferior: n })
    }

    #[test]
    fn miss_then_hit() {
        let cache = PredictionCache::new();
        assert!(cache.get(1).is_none());
        let (d, s) = entry(3);
        cache.insert(1, d, s);
        let (_, got) = cache.get(1).expect("hit");
        assert_eq!(got.total, 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_drops_oldest() {
        let cache = PredictionCache::with_capacity(2);
        for key in 0..3u64 {
            let (d, s) = entry(key as usize);
            cache.insert(key, d, s);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Key 0 was least recently used.
        assert!(cache.get(0).is_none());
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn hit_refreshes_recency() {
        let cache = PredictionCache::with_capacity(2);
        let (d, s) = entry(0);
        cache.insert(0, d, s);
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        assert!(cache.get(0).is_some()); // refresh 0 → 1 becomes LRU
        let (d, s) = entry(2);
        cache.insert(2, d, s);
        assert!(cache.get(0).is_some());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = PredictionCache::with_capacity(0);
        let (d, s) = entry(1);
        cache.insert(9, d, s);
        assert!(cache.is_empty());
        assert!(cache.get(9).is_none());
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let cache = PredictionCache::new();
        let before = cache.stats();
        assert!(cache.get(7).is_none());
        let (d, s) = entry(1);
        cache.insert(7, d, s);
        assert!(cache.get(7).is_some());
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.entries), (1, 1, 1));
        assert!(delta.bytes > 0);
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let cache = PredictionCache::new();
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        let first = cache.stats().bytes;
        let (d, s) = entry(1);
        cache.insert(1, d, s);
        assert_eq!(cache.stats().bytes, first);
        assert_eq!(cache.stats().entries, 1);
    }
}
