//! Resource budgets for exploration: deadlines, trial caps and graceful
//! E→I degradation.
//!
//! A [`SearchBudget`] bounds what one [`Session::explore`] call may spend.
//! Budgets are *cooperative*: the heuristics check the budget between
//! trials and stop early, returning the partial result found so far tagged
//! with a [`Completion`] status — a tripped budget is a normal outcome, not
//! an error.
//!
//! [`Session::explore`]: crate::Session::explore

use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// How many combinations heuristic E is allowed before a default budget
/// degrades the search to heuristic I.
pub const DEFAULT_DEGRADE_THRESHOLD: u128 = 1_000_000;

/// How a search run ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Completion {
    /// The search examined the whole (heuristic-defined) space.
    #[default]
    Complete,
    /// The wall-clock deadline tripped; the outcome is partial.
    TruncatedDeadline,
    /// A count budget (max trials or max retained points) tripped; the
    /// outcome is partial.
    TruncatedTrials,
    /// Heuristic E's predicted combination count exceeded the degradation
    /// threshold, so heuristic I ran instead — the outcome is complete
    /// *for heuristic I*.
    DegradedToIterative,
}

impl Completion {
    /// Whether the search stopped before finishing its space — the outcome
    /// may be missing feasible implementations.
    #[must_use]
    pub fn is_truncated(self) -> bool {
        matches!(self, Completion::TruncatedDeadline | Completion::TruncatedTrials)
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::TruncatedDeadline => write!(f, "truncated: deadline exceeded"),
            Completion::TruncatedTrials => write!(f, "truncated: trial/point budget exhausted"),
            Completion::DegradedToIterative => {
                write!(f, "degraded: enumeration too large, ran iterative heuristic")
            }
        }
    }
}

/// Bounds on one exploration run.
///
/// The default budget is unlimited in time and trial count but degrades
/// heuristic E to heuristic I past [`DEFAULT_DEGRADE_THRESHOLD`] predicted
/// combinations; [`SearchBudget::unlimited`] disables even that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Wall-clock limit for the whole run (prediction + search).
    pub deadline: Option<Duration>,
    /// Maximum global combinations to examine.
    pub max_trials: Option<usize>,
    /// Maximum design points to retain (feasible implementations plus
    /// keep-all recordings). Tripping reports [`Completion::TruncatedTrials`].
    pub max_points: Option<usize>,
    /// Degrade heuristic E to I when its predicted combination count
    /// exceeds this; `None` never degrades.
    pub degrade_threshold: Option<u128>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            deadline: None,
            max_trials: None,
            max_points: None,
            degrade_threshold: Some(DEFAULT_DEGRADE_THRESHOLD),
        }
    }
}

impl SearchBudget {
    /// A budget with no limits at all (no deadline, no caps, no
    /// degradation) — the pre-budget behavior.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { deadline: None, max_trials: None, max_points: None, degrade_threshold: None }
    }

    /// Sets a wall-clock deadline for the whole run.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the number of global combinations examined.
    #[must_use]
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = Some(max_trials);
        self
    }

    /// Caps the number of retained design points.
    #[must_use]
    pub fn with_max_points(mut self, max_points: usize) -> Self {
        self.max_points = Some(max_points);
        self
    }

    /// Sets the E→I degradation threshold.
    #[must_use]
    pub fn with_degrade_threshold(mut self, combinations: u128) -> Self {
        self.degrade_threshold = Some(combinations);
        self
    }

    /// Never degrade E to I, however large the combination space.
    #[must_use]
    pub fn without_degradation(mut self) -> Self {
        self.degrade_threshold = None;
        self
    }

    /// Whether heuristic E over `combinations` predicted combinations
    /// should degrade to heuristic I under this budget.
    #[must_use]
    pub fn should_degrade(&self, combinations: u128) -> bool {
        self.degrade_threshold.is_some_and(|t| combinations > t)
    }
}

/// A running budget: the limits plus the run's start instant.
///
/// Heuristics call [`BudgetTimer::check`] between trials; `Some` means
/// stop now and report the returned status.
#[derive(Debug, Clone, Copy)]
pub struct BudgetTimer {
    budget: SearchBudget,
    started: Instant,
}

impl BudgetTimer {
    /// Starts the clock on a budget.
    #[must_use]
    pub fn start(budget: SearchBudget) -> Self {
        Self { budget, started: Instant::now() }
    }

    /// A timer that never trips (for callers without a budget).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::start(SearchBudget::unlimited())
    }

    /// The budget being enforced.
    #[must_use]
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Time since the run started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the wall-clock deadline alone has passed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.budget.deadline.is_some_and(|d| self.started.elapsed() >= d)
    }

    /// The cooperative cancellation point: given the trials spent and the
    /// design points retained so far, decides whether the search must stop.
    /// The deadline is checked first so a late check never masks it.
    #[must_use]
    pub fn check(&self, trials: usize, retained_points: usize) -> Option<Completion> {
        if self.deadline_exceeded() {
            return Some(Completion::TruncatedDeadline);
        }
        if self.budget.max_trials.is_some_and(|m| trials >= m)
            || self.budget.max_points.is_some_and(|m| retained_points >= m)
        {
            return Some(Completion::TruncatedTrials);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_only_degrades() {
        let b = SearchBudget::default();
        assert!(b.deadline.is_none());
        assert!(b.max_trials.is_none());
        assert!(b.max_points.is_none());
        assert!(!b.should_degrade(DEFAULT_DEGRADE_THRESHOLD));
        assert!(b.should_degrade(DEFAULT_DEGRADE_THRESHOLD + 1));
    }

    #[test]
    fn unlimited_never_trips() {
        let t = BudgetTimer::unlimited();
        assert_eq!(t.check(usize::MAX, usize::MAX), None);
        assert!(!t.budget().should_degrade(u128::MAX));
    }

    #[test]
    fn trial_cap_trips_at_exact_count() {
        let t = BudgetTimer::start(SearchBudget::default().with_max_trials(10));
        assert_eq!(t.check(9, 0), None);
        assert_eq!(t.check(10, 0), Some(Completion::TruncatedTrials));
    }

    #[test]
    fn point_cap_trips() {
        let t = BudgetTimer::start(SearchBudget::default().with_max_points(5));
        assert_eq!(t.check(0, 4), None);
        assert_eq!(t.check(0, 5), Some(Completion::TruncatedTrials));
    }

    #[test]
    fn zero_deadline_trips_immediately_and_wins_over_trials() {
        let t = BudgetTimer::start(
            SearchBudget::default().with_deadline(Duration::ZERO).with_max_trials(0),
        );
        assert!(t.deadline_exceeded());
        assert_eq!(t.check(usize::MAX, 0), Some(Completion::TruncatedDeadline));
    }

    #[test]
    fn completion_flags_truncation() {
        assert!(!Completion::Complete.is_truncated());
        assert!(!Completion::DegradedToIterative.is_truncated());
        assert!(Completion::TruncatedDeadline.is_truncated());
        assert!(Completion::TruncatedTrials.is_truncated());
    }

    #[test]
    fn display_names_reason() {
        assert!(Completion::TruncatedDeadline.to_string().contains("deadline"));
        assert!(Completion::DegradedToIterative.to_string().contains("iterative"));
    }
}
