//! Designer-facing reports: §3.1-style guidelines, table rendering and the
//! Fig. 3-style task-graph export.

use std::fmt::Write as _;

use chop_library::Library;

use crate::explorer::{SearchOutcome, Session};
use crate::heuristics::FeasibleImplementation;
use crate::spec::{PartitionId, Partitioning};
use crate::transfer::{transfer_specs, Endpoint};

/// Renders the full designer guideline for one feasible implementation —
/// the per-partition design decisions plus the data-transfer module
/// predictions, in the format of the paper's §3.1 walkthrough.
///
/// The implementation's selection indices are resolved against `outcome`
/// (the run that produced it) via
/// [`SearchOutcome::selected_designs`](crate::SearchOutcome::selected_designs).
///
/// # Examples
///
/// ```
/// use chop_core::{report, Heuristic};
/// use chop_core::experiments::{experiment1_session, Exp1Config};
///
/// let session = experiment1_session(&Exp1Config { partitions: 1, package: 1 })?;
/// let outcome = session.explore(Heuristic::Iterative)?;
/// let text = report::guideline(&outcome, &outcome.feasible[0], session.library());
/// assert!(text.contains("Partition 1"));
/// assert!(text.contains("design style"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn guideline(
    outcome: &SearchOutcome,
    implementation: &FeasibleImplementation,
    library: &Library,
) -> String {
    let mut out = String::new();
    let s = &implementation.system;
    let _ = writeln!(
        out,
        "Predicted global implementation: initiation interval {} cycles, \
         system delay {} cycles, clock cycle {:.0} ns",
        s.initiation_interval.value(),
        s.delay.value(),
        s.clock.likely()
    );
    for (i, design) in outcome.selected_designs(implementation).iter().enumerate() {
        let p = PartitionId::new(i as u32);
        let _ = writeln!(out, "\nPartition {}:", p.index() + 1);
        out.push_str(&design.guideline(library));
    }
    if !s.transfer_modules.is_empty() {
        let _ = writeln!(out, "\nData transfer modules:");
        for tm in &s.transfer_modules {
            let _ = writeln!(out, "- {tm}");
        }
    }
    out
}

/// Renders a Table 3/5-style statistics block for a search outcome.
#[must_use]
pub fn prediction_stats_row(partition_count: usize, outcome: &SearchOutcome) -> String {
    format!(
        "{:>15} | {:>27} | {:>30}",
        partition_count,
        outcome.total_predictions(),
        outcome.feasible_predictions()
    )
}

/// Renders Table 4/6-style result rows for one search outcome: one line
/// per non-inferior feasible design, led by the trial statistics.
#[must_use]
pub fn results_rows(
    partition_count: usize,
    package: usize,
    outcome: &SearchOutcome,
) -> Vec<String> {
    let header = format!(
        "{:>5} | {:>7} | {} | {:>8.2} | {:>6} | {:>8}",
        partition_count,
        package,
        outcome.heuristic,
        outcome.elapsed.as_secs_f64(),
        outcome.trials,
        outcome.feasible_trials,
    );
    let mut rows = vec![header];
    for f in &outcome.feasible {
        rows.push(format!(
            "      |         |   |          |        |          | {:>10} | {:>6} | {:>6.0}",
            f.system.initiation_interval.value(),
            f.system.delay.value(),
            f.system.clock.likely(),
        ));
    }
    rows
}

/// Renders the partitioning's task graph — processing-unit tasks plus the
/// data-transfer tasks CHOP creates — in Graphviz DOT syntax, the visual
/// counterpart of the paper's Fig. 3.
///
/// # Examples
///
/// ```
/// use chop_core::report::task_graph_dot;
/// use chop_core::spec::PartitioningBuilder;
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table2_packages;
/// use chop_library::ChipSet;
///
/// let p = PartitioningBuilder::new(
///     benchmarks::ar_lattice_filter(),
///     ChipSet::uniform(table2_packages()[1].clone(), 2),
/// )
/// .split_horizontal(2)
/// .build()?;
/// let dot = task_graph_dot(&p);
/// assert!(dot.contains("digraph tasks"));
/// assert!(dot.contains("P1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn task_graph_dot(partitioning: &Partitioning) -> String {
    let mut out = String::from("digraph tasks {\n  rankdir=TB;\n");
    // One cluster per chip holding its PU tasks (Fig. 3 groups tasks by
    // chip).
    for (chip, pkg) in partitioning.chips().iter() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", chip.index());
        let _ = writeln!(out, "    label=\"{} ({} pins)\";", chip, pkg.pins());
        for p in partitioning.partitions_on(chip) {
            let _ = writeln!(out, "    {p} [shape=box,label=\"{p}\"];");
        }
        out.push_str("  }\n");
    }
    let _ = writeln!(out, "  external [shape=ellipse];");
    for (mi, mem) in partitioning.memories().iter().enumerate() {
        let _ = writeln!(out, "  M{mi} [shape=cylinder,label=\"{}\"];", mem.name());
    }
    let name = |e: Endpoint| match e {
        Endpoint::Partition(p) => format!("{p}"),
        Endpoint::External => "external".to_owned(),
        Endpoint::Memory(m) => format!("M{}", m.index()),
    };
    for (i, t) in transfer_specs(partitioning).iter().enumerate() {
        let _ =
            writeln!(out, "  T{i} [shape=diamond,label=\"T{i}\\n{} bits\"];", t.bits.value());
        let _ = writeln!(out, "  {} -> T{i};", name(t.src));
        let _ = writeln!(out, "  T{i} -> {};", name(t.dst));
    }
    out.push_str("}\n");
    out
}

/// Renders a complete markdown report of one exploration: environment,
/// specification profile, search statistics and every non-inferior
/// feasible design with its guideline.
///
/// # Examples
///
/// ```
/// use chop_core::{report, Heuristic};
/// use chop_core::experiments::{experiment1_session, Exp1Config};
///
/// let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 })?;
/// let outcome = session.explore(Heuristic::Iterative)?;
/// let md = report::markdown(&session, &outcome);
/// assert!(md.starts_with("# CHOP"));
/// assert!(md.contains("## Feasible implementations"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn markdown(session: &Session, outcome: &SearchOutcome) -> String {
    let mut out = String::new();
    let p = session.partitioning();
    let profile = chop_dfg::analysis::profile(p.dfg());
    let _ = writeln!(out, "# CHOP feasibility report\n");
    let _ = writeln!(out, "## Environment\n");
    let _ = writeln!(out, "- specification: {profile}");
    let _ = writeln!(
        out,
        "- partitioning: {} partition(s) on {} chip(s), {} memory block(s)",
        p.partition_count(),
        p.chips().len(),
        p.memories().len()
    );
    for (id, pkg) in p.chips().iter() {
        let _ = writeln!(out, "  - {id}: {pkg}");
    }
    let _ = writeln!(out, "- constraints: {}", session.constraints());
    let _ = writeln!(out, "- clocks: {}", session.clocks());
    let _ = writeln!(out, "\n## Search\n");
    let _ = writeln!(out, "- {outcome}");
    let _ = writeln!(
        out,
        "- BAD predictions: {} total, {} feasible after level-1 pruning",
        outcome.total_predictions(),
        outcome.feasible_predictions()
    );
    let _ = writeln!(out, "\n## Feasible implementations\n");
    if outcome.feasible.is_empty() {
        let _ = writeln!(
            out,
            "None. Consider more chips, a larger package, or weaker constraints."
        );
    } else {
        let _ = writeln!(out, "| II (cycles) | delay (cycles) | clock (ns) | power (mW) |");
        let _ = writeln!(out, "|---|---|---|---|");
        for f in &outcome.feasible {
            let _ = writeln!(
                out,
                "| {} | {} | {:.0} | {:.0} |",
                f.system.initiation_interval.value(),
                f.system.delay.value(),
                f.system.clock.likely(),
                f.system.power.likely()
            );
        }
        for (i, f) in outcome.feasible.iter().enumerate() {
            let _ = writeln!(out, "\n### Design {}\n", i + 1);
            let _ = writeln!(out, "```");
            out.push_str(&guideline(outcome, f, session.library()));
            let _ = writeln!(out, "```");
        }
    }
    out
}

/// Renders the session's environment (chips, constraints, clocks) — the
/// preamble a designer sees before results.
#[must_use]
pub fn environment(session: &Session) -> String {
    let mut out = String::new();
    let p = session.partitioning();
    let _ = writeln!(out, "{p}");
    for (id, pkg) in p.chips().iter() {
        let _ = writeln!(out, "  {id}: {pkg}");
    }
    let _ = writeln!(out, "  constraints: {}", session.constraints());
    let _ = writeln!(out, "  clocks: {}", session.clocks());
    out
}

#[cfg(test)]
mod tests {
    use crate::experiments::{experiment1_session, Exp1Config};
    use crate::explorer::Heuristic;

    use super::*;

    #[test]
    fn guideline_covers_all_partitions_and_transfers() {
        let session = experiment1_session(&Exp1Config { partitions: 2, package: 1 }).unwrap();
        let outcome = session.explore(Heuristic::Iterative).unwrap();
        assert!(!outcome.feasible.is_empty());
        let text = guideline(&outcome, &outcome.feasible[0], session.library());
        assert!(text.contains("Partition 1"));
        assert!(text.contains("Partition 2"));
        assert!(text.contains("Data transfer modules"));
    }

    #[test]
    fn task_graph_covers_every_transfer() {
        let session = experiment1_session(&Exp1Config { partitions: 3, package: 1 }).unwrap();
        let dot = task_graph_dot(session.partitioning());
        let transfers = crate::transfer::transfer_specs(session.partitioning());
        for i in 0..transfers.len() {
            assert!(dot.contains(&format!("T{i} ")));
        }
        assert!(dot.contains("external"));
        assert_eq!(dot.matches("subgraph cluster_").count(), 3);
    }

    #[test]
    fn rows_render() {
        let session = experiment1_session(&Exp1Config { partitions: 1, package: 1 }).unwrap();
        let outcome = session.explore(Heuristic::Enumeration).unwrap();
        let rows = results_rows(1, 2, &outcome);
        assert!(rows.len() >= 2);
        assert!(rows[0].contains('E'));
        let stats = prediction_stats_row(1, &outcome);
        assert!(stats.contains('|'));
        let env = environment(&session);
        assert!(env.contains("constraints"));
    }
}
