//! CHOP — a constraint-driven system-level partitioner for behavioral
//! specifications.
//!
//! This crate reproduces the partitioner of Küçükçakar and Parker (USC
//! CEng 90-26 / DAC 1991). The designer proposes a *tentative partitioning*
//! of a behavioral data-flow graph onto a chip set (with memory blocks
//! assigned to chips); CHOP decides its feasibility by
//!
//! 1. predicting implementations of every partition with the embedded BAD
//!    predictor ([`chop_bad`]) and pruning infeasible/inferior predictions
//!    (level-1 pruning),
//! 2. searching combinations of per-partition implementations with one of
//!    two heuristics — exhaustive [`enumeration`](heuristics::enumeration)
//!    or the [`iterative`](heuristics::iterative) serialization heuristic
//!    of the paper's Fig. 5,
//! 3. predicting **system-integration overhead** for each combination:
//!    pin-limited data-transfer bandwidth, urgency scheduling of transfer
//!    tasks on shared chip pins and memory ports, transfer-buffer sizing
//!    `B = D·(⌈W/l⌉ + X/l)`, data-transfer-module PLAs and the adjusted
//!    clock cycle, and
//! 4. checking the hard constraints — per-chip area, pin counts, system
//!    performance and system delay — probabilistically against the
//!    designer's feasibility criteria.
//!
//! # Quick start
//!
//! ```
//! use chop_core::{Constraints, Heuristic, Session};
//! use chop_core::spec::PartitioningBuilder;
//! use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
//! use chop_dfg::benchmarks;
//! use chop_library::standard::{table1_library, table2_packages};
//! use chop_library::ChipSet;
//! use chop_stat::units::Nanos;
//!
//! // The AR lattice filter split in two, each half on its own 84-pin chip.
//! let dfg = benchmarks::ar_lattice_filter();
//! let chips = ChipSet::uniform(table2_packages()[1].clone(), 2);
//! let partitioning = PartitioningBuilder::new(dfg, chips)
//!     .split_horizontal(2)
//!     .build()?;
//!
//! let session = Session::new(
//!     partitioning,
//!     table1_library(),
//!     ClockConfig::new(Nanos::new(300.0), 10, 1)?,
//!     ArchitectureStyle::single_cycle(),
//!     PredictorParams::default(),
//!     Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
//! );
//! let outcome = session.explore(Heuristic::Iterative)?;
//! assert!(outcome.trials > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod advise;
pub mod budget;
pub mod cache;
pub mod engine;
mod error;
pub mod experiments;
mod explorer;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod feasibility;
pub mod heuristics;
mod integration;
pub mod optimize;
pub mod prelude;
pub mod report;
pub mod spec;
pub mod tasks;
pub mod testability;
pub mod transfer;

pub use budget::{BudgetTimer, Completion, SearchBudget};
pub use cache::{CacheStats, PredictionCache};
pub use engine::trace::ExploreTrace;
pub use error::ChopError;
pub use explorer::{DesignPoint, Heuristic, PartitionPredictions, SearchOutcome, Session};
#[cfg(feature = "fault-inject")]
pub use fault::{AppendFault, FaultPlan, IoFaultPlan};
pub use feasibility::{Constraints, FeasibilityCriteria, Verdict, Violation};
pub use integration::{IntegrationContext, SystemPrediction, TransferModulePrediction};
pub use optimize::{AppliedMove, MoveKind, ObjectiveWeights, OptimizeResult, OptimizeSpec};
pub use spec::{MemoryAssignment, PartitionId, Partitioning};
