//! Data-transfer task creation and chip pin budgeting.
//!
//! "When the information about partition and memory block assignments is
//! available, data transfer tasks are created by CHOP to transfer data
//! among partitions … This process involves determining the manner and the
//! amount of data to be transferred, reserving enough pins for control
//! signals to assure proper communication between distributed controllers
//! and also for other necessary signal pins which are not shared (Select,
//! R/W lines for memory blocks)" (paper §2.4).

use std::fmt;

use chop_library::{ChipId, MemoryId};
use chop_stat::units::Bits;
use serde::{Deserialize, Serialize};

use crate::spec::{MemoryAssignment, PartitionId, Partitioning};

/// One side of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// A partition's processing unit.
    Partition(PartitionId),
    /// The outside world (primary inputs/outputs of the system).
    External,
    /// A memory block.
    Memory(MemoryId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Partition(p) => write!(f, "{p}"),
            Endpoint::External => write!(f, "external"),
            Endpoint::Memory(m) => write!(f, "{m}"),
        }
    }
}

/// A data-transfer requirement: `bits` moving from `src` to `dst` once per
/// initiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Producing endpoint.
    pub src: Endpoint,
    /// Consuming endpoint.
    pub dst: Endpoint,
    /// Bits moved per initiation.
    pub bits: Bits,
    /// Number of distinct values moved.
    pub values: usize,
}

impl fmt::Display for TransferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {} ({}, {} values)", self.src, self.dst, self.bits, self.values)
    }
}

/// Extracts every data-transfer requirement of a partitioning:
/// inter-partition cuts, primary I/O and memory traffic.
///
/// Transfers whose endpoints resolve to the *same chip* still appear here
/// (they cost on-chip wiring, not pins); [`is_off_chip`] distinguishes
/// them.
///
/// # Examples
///
/// ```
/// use chop_core::spec::PartitioningBuilder;
/// use chop_core::transfer::{transfer_specs, Endpoint};
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table2_packages;
/// use chop_library::ChipSet;
///
/// let p = PartitioningBuilder::new(
///     benchmarks::ar_lattice_filter(),
///     ChipSet::uniform(table2_packages()[1].clone(), 2),
/// )
/// .split_horizontal(2)
/// .build()?;
/// let specs = transfer_specs(&p);
/// // External inputs, the inter-partition cut, and external outputs.
/// assert!(specs.iter().any(|t| t.src == Endpoint::External));
/// assert!(specs.iter().any(|t| t.dst == Endpoint::External));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn transfer_specs(partitioning: &Partitioning) -> Vec<TransferSpec> {
    let dfg = partitioning.dfg();
    let grouping = partitioning.grouping();
    let mut specs = Vec::new();

    // Primary inputs/outputs per partition.
    for p in partitioning.partition_ids() {
        let mut in_bits = 0u64;
        let mut in_values = 0usize;
        let mut out_bits = 0u64;
        let mut out_values = 0usize;
        let mut mem_read: std::collections::BTreeMap<u32, (u64, usize)> = Default::default();
        let mut mem_write: std::collections::BTreeMap<u32, (u64, usize)> = Default::default();
        for id in grouping.members(p.index()) {
            let node = dfg.node(id);
            match node.op() {
                chop_dfg::Operation::Input => {
                    in_bits += node.width().value();
                    in_values += 1;
                }
                chop_dfg::Operation::Output => {
                    out_bits += node.width().value();
                    out_values += 1;
                }
                chop_dfg::Operation::MemRead(m) => {
                    let e = mem_read.entry(m.index()).or_insert((0, 0));
                    e.0 += node.width().value();
                    e.1 += 1;
                }
                chop_dfg::Operation::MemWrite(m) => {
                    let e = mem_write.entry(m.index()).or_insert((0, 0));
                    e.0 += node.width().value();
                    e.1 += 1;
                }
                _ => {}
            }
        }
        if in_bits > 0 {
            specs.push(TransferSpec {
                src: Endpoint::External,
                dst: Endpoint::Partition(p),
                bits: Bits::new(in_bits),
                values: in_values,
            });
        }
        if out_bits > 0 {
            specs.push(TransferSpec {
                src: Endpoint::Partition(p),
                dst: Endpoint::External,
                bits: Bits::new(out_bits),
                values: out_values,
            });
        }
        for (m, (bits, values)) in mem_read {
            specs.push(TransferSpec {
                src: Endpoint::Memory(MemoryId::new(m)),
                dst: Endpoint::Partition(p),
                bits: Bits::new(bits),
                values,
            });
        }
        for (m, (bits, values)) in mem_write {
            specs.push(TransferSpec {
                src: Endpoint::Partition(p),
                dst: Endpoint::Memory(MemoryId::new(m)),
                bits: Bits::new(bits),
                values,
            });
        }
    }

    // Inter-partition cuts (constants replicated, not transferred).
    for cut in partitioning.inter_partition_cuts() {
        specs.push(TransferSpec {
            src: Endpoint::Partition(PartitionId::new(cut.src_group as u32)),
            dst: Endpoint::Partition(PartitionId::new(cut.dst_group as u32)),
            bits: cut.bits,
            values: cut.values,
        });
    }
    specs
}

/// The chip an endpoint resides on, if any (external endpoints and
/// off-the-shelf memories have none).
#[must_use]
pub fn chip_of_endpoint(partitioning: &Partitioning, e: Endpoint) -> Option<ChipId> {
    match e {
        Endpoint::Partition(p) => Some(partitioning.chip_of(p)),
        Endpoint::External => None,
        Endpoint::Memory(m) => match partitioning.memory_assignment(m) {
            MemoryAssignment::OnChip(c) => Some(c),
            MemoryAssignment::External => None,
        },
    }
}

/// Whether a transfer crosses a chip boundary (and therefore consumes pins
/// on each chip involved).
#[must_use]
pub fn is_off_chip(partitioning: &Partitioning, t: &TransferSpec) -> bool {
    let a = chip_of_endpoint(partitioning, t.src);
    let b = chip_of_endpoint(partitioning, t.dst);
    match (a, b) {
        (Some(x), Some(y)) => x != y,
        // One side outside the chip set: always through pins.
        _ => true,
    }
}

/// Pin budget of one chip: total pins, reservations and shareable data
/// pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinBudget {
    /// Package pins.
    pub total: u32,
    /// Pins reserved for distributed-controller handshakes (2 per off-chip
    /// transfer touching the chip).
    pub control: u32,
    /// Pins reserved for non-shareable memory signals (Select and R/W per
    /// memory interface used from this chip).
    pub memory_control: u32,
    /// Remaining pins shareable for data transfer.
    pub data: u32,
}

impl PinBudget {
    /// Whether the reservations alone exceed the package.
    #[must_use]
    pub fn is_overcommitted(&self) -> bool {
        self.data == 0 && self.control + self.memory_control >= self.total
    }
}

impl fmt::Display for PinBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pins ({} control, {} memory, {} data)",
            self.total, self.control, self.memory_control, self.data
        )
    }
}

/// Computes every chip's pin budget for a set of transfers.
///
/// # Examples
///
/// ```
/// use chop_core::spec::PartitioningBuilder;
/// use chop_core::transfer::{pin_budgets, transfer_specs};
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table2_packages;
/// use chop_library::ChipSet;
///
/// let p = PartitioningBuilder::new(
///     benchmarks::ar_lattice_filter(),
///     ChipSet::uniform(table2_packages()[0].clone(), 2),
/// )
/// .split_horizontal(2)
/// .build()?;
/// let budgets = pin_budgets(&p, &transfer_specs(&p));
/// assert_eq!(budgets.len(), 2);
/// assert!(budgets[0].data < 64);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn pin_budgets(partitioning: &Partitioning, transfers: &[TransferSpec]) -> Vec<PinBudget> {
    let chips = partitioning.chips();
    let mut budgets: Vec<PinBudget> = chips
        .iter()
        .map(|(_, pkg)| PinBudget { total: pkg.pins(), control: 0, memory_control: 0, data: 0 })
        .collect();
    // Controller handshake pins: 2 per off-chip transfer per involved chip.
    for t in transfers {
        if !is_off_chip(partitioning, t) {
            continue;
        }
        for chip in
            [chip_of_endpoint(partitioning, t.src), chip_of_endpoint(partitioning, t.dst)]
                .into_iter()
                .flatten()
        {
            budgets[chip.index()].control += 2;
        }
    }
    // Memory Select/R-W reservations: per (chip, memory) interface in use.
    let mut seen: std::collections::BTreeSet<(usize, u32)> = Default::default();
    for t in transfers {
        let (mem, partner) = match (t.src, t.dst) {
            (Endpoint::Memory(m), other) | (other, Endpoint::Memory(m)) => (m, other),
            _ => continue,
        };
        let Some(chip) = chip_of_endpoint(partitioning, partner) else { continue };
        let mem_chip = chip_of_endpoint(partitioning, Endpoint::Memory(mem));
        if mem_chip == Some(chip) {
            continue; // same-chip memory access uses no pins
        }
        if seen.insert((chip.index(), mem.index() as u32)) {
            budgets[chip.index()].memory_control += 2;
        }
        // The memory's own chip (if on-chip elsewhere) also reserves lines.
        if let Some(mc) = mem_chip {
            if seen.insert((mc.index(), mem.index() as u32)) {
                budgets[mc.index()].memory_control += 2;
            }
        }
    }
    for b in &mut budgets {
        b.data = b.total.saturating_sub(b.control + b.memory_control);
    }
    budgets
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_library::standard::{example_off_shelf_ram, table2_packages};
    use chop_library::ChipSet;

    use super::*;
    use crate::spec::PartitioningBuilder;

    fn two_chip_ar() -> Partitioning {
        PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[1].clone(), 2),
        )
        .split_horizontal(2)
        .build()
        .unwrap()
    }

    #[test]
    fn ar_two_way_has_all_transfer_kinds() {
        let p = two_chip_ar();
        let specs = transfer_specs(&p);
        let inter = specs
            .iter()
            .filter(|t| {
                matches!(t.src, Endpoint::Partition(_))
                    && matches!(t.dst, Endpoint::Partition(_))
            })
            .count();
        assert!(inter >= 1, "horizontal cut must move data forward");
        // 8 inputs at 16 bits each somewhere, 4 outputs at 16 bits.
        let in_bits: u64 =
            specs.iter().filter(|t| t.src == Endpoint::External).map(|t| t.bits.value()).sum();
        assert_eq!(in_bits, 8 * 16);
        let out_bits: u64 =
            specs.iter().filter(|t| t.dst == Endpoint::External).map(|t| t.bits.value()).sum();
        assert_eq!(out_bits, 4 * 16);
    }

    #[test]
    fn off_chip_detection() {
        let p = two_chip_ar();
        for t in transfer_specs(&p) {
            if t.src == Endpoint::External || t.dst == Endpoint::External {
                assert!(is_off_chip(&p, &t));
            }
        }
        // Same-chip partitions: inter-partition transfer stays on chip.
        let same = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[1].clone(), 1),
        )
        .split_horizontal(2)
        .with_chip_assignment(vec![chop_library::ChipId::new(0); 2])
        .build()
        .unwrap();
        let inter: Vec<TransferSpec> = transfer_specs(&same)
            .into_iter()
            .filter(|t| {
                matches!(t.src, Endpoint::Partition(_))
                    && matches!(t.dst, Endpoint::Partition(_))
            })
            .collect();
        assert!(!inter.is_empty());
        for t in inter {
            assert!(!is_off_chip(&same, &t));
        }
    }

    #[test]
    fn pin_budgets_reserve_control() {
        let p = two_chip_ar();
        let specs = transfer_specs(&p);
        let budgets = pin_budgets(&p, &specs);
        for b in &budgets {
            assert!(b.control > 0);
            assert_eq!(b.total, 84);
            assert_eq!(b.data, b.total - b.control - b.memory_control);
        }
    }

    #[test]
    fn memory_reservations_counted_once_per_interface() {
        use chop_dfg::{DfgBuilder, MemoryRef, Operation};
        use chop_stat::units::Bits;
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let m = MemoryRef::new(0);
        let addr = b.node(Operation::Input, w);
        let r1 = b.node(Operation::MemRead(m), w);
        let r2 = b.node(Operation::MemRead(m), w);
        b.connect(addr, r1).unwrap();
        b.connect(addr, r2).unwrap();
        let a = b.node(Operation::Add, w);
        b.connect(r1, a).unwrap();
        b.connect(r2, a).unwrap();
        let o = b.node(Operation::Output, w);
        b.connect(a, o).unwrap();
        let g = b.build().unwrap();
        let p = PartitioningBuilder::new(g, ChipSet::uniform(table2_packages()[1].clone(), 1))
            .with_memory(example_off_shelf_ram(), crate::spec::MemoryAssignment::External)
            .build()
            .unwrap();
        let specs = transfer_specs(&p);
        let budgets = pin_budgets(&p, &specs);
        // One memory interface from chip 0, regardless of two reads.
        assert_eq!(budgets[0].memory_control, 2);
    }

    #[test]
    fn tiny_package_overcommits() {
        use chop_stat::units::{Mils, Nanos, SquareMils};
        let tiny = chop_library::ChipPackage::new(
            "tiny",
            Mils::new(100.0),
            Mils::new(100.0),
            4,
            Nanos::new(25.0),
            SquareMils::new(50.0),
        );
        let p = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(tiny, 2),
        )
        .split_horizontal(2)
        .build()
        .unwrap();
        let budgets = pin_budgets(&p, &transfer_specs(&p));
        // 3+ off-chip transfers × 2 control pins each exceeds 4 pins.
        assert!(budgets.iter().any(PinBudget::is_overcommitted));
        for b in &budgets {
            assert!(b.data == 0 || b.control + b.memory_control + b.data <= b.total);
        }
    }

    #[test]
    fn budget_display_renders() {
        let p = two_chip_ar();
        let budgets = pin_budgets(&p, &transfer_specs(&p));
        let text = budgets[0].to_string();
        assert!(text.contains("pins"));
        assert!(text.contains("data"));
    }

    #[test]
    fn fewer_package_pins_mean_fewer_data_pins() {
        let p64 = PartitioningBuilder::new(
            benchmarks::ar_lattice_filter(),
            ChipSet::uniform(table2_packages()[0].clone(), 2),
        )
        .split_horizontal(2)
        .build()
        .unwrap();
        let p84 = two_chip_ar();
        let b64 = pin_budgets(&p64, &transfer_specs(&p64));
        let b84 = pin_budgets(&p84, &transfer_specs(&p84));
        for (a, b) in b64.iter().zip(&b84) {
            assert!(a.data < b.data);
        }
    }
}
