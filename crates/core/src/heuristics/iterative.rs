//! Heuristic **I**: iterative serialization (Fig. 5 of the paper).
//!
//! For each feasible initiation interval the heuristic starts from the
//! fastest predicted implementation of every partition and iteratively
//! serializes partitions on chips whose area constraint is violated,
//! picking at each step the serialization with the minimum expected system
//! delay ("this selection generally favors the serialization of
//! off-critical-path partitions").

use std::sync::Arc;

use chop_bad::{DesignStyle, PredictedDesign};
use chop_stat::units::Nanos;

use crate::budget::{BudgetTimer, Completion};
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::feasibility::Violation;
use crate::heuristics::{
    finalize, Candidate, DesignPoint, FeasibleImplementation, HeuristicResult, ScoreBatch,
};
use crate::integration::IntegrationContext;

/// Runs the iterative heuristic.
///
/// `designs` holds the (already level-1-pruned) prediction list of each
/// partition; each list is re-sorted here by (initiation interval, latency)
/// as Fig. 5 requires, with the original index riding along so selections
/// are reported as indices into the engine's (unsorted) prediction lists.
/// Every system-integration estimate counts as one trial. With `keep_all`
/// on, every estimate is recorded as a design point.
///
/// Each round's tentative serializations are handed to the `score` batch
/// evaluator in one canonical-order batch (the engine parallelizes this);
/// the fold that follows consults the `timer` before every estimate and
/// picks the minimum-delay serialization with first-wins tie-breaking,
/// exactly as the original serial loop did — results are independent of
/// the scorer's worker count.
///
/// # Errors
///
/// Returns [`ChopError::Integration`] only for structural task-graph
/// failures.
pub(crate) fn run(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    base_clock: Nanos,
    keep_all: bool,
    timer: &BudgetTimer,
    score: &dyn ScoreBatch,
    trace: &TraceRecorder,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    if designs.iter().any(|list| list.is_empty()) {
        return Ok(result);
    }
    // Sorted prediction lists: increasing II, then increasing latency.
    let sorted: Vec<Vec<(u32, &PredictedDesign)>> = designs
        .iter()
        .map(|list| {
            let mut v: Vec<(u32, &PredictedDesign)> =
                list.iter().enumerate().map(|(i, d)| (i as u32, d)).collect();
            v.sort_by_key(|(_, d)| (d.initiation_interval(), d.latency()));
            v
        })
        .collect();

    for l in candidate_intervals(ctx, &sorted, base_clock) {
        // Initialize W_i: advance past implementations too fast to be
        // useful at rate l.
        let mut w: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut ok = true;
        for list in &sorted {
            match initial_index(list, l) {
                Some(i) => w.push(i),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        let budget: usize = sorted.iter().map(Vec::len).sum::<usize>() + 1;
        for _round in 0..budget {
            if let Some(status) = timer.check(result.trials, result.retained_points()) {
                result.completion = status;
                finalize(&mut result, trace);
                return Ok(result);
            }
            let current = candidate(&w, &sorted, l);
            result.trials += 1;
            let system = match score
                .score(std::slice::from_ref(&current))
                .into_iter()
                .next()
                .flatten()
            {
                Some(Ok(system)) => system,
                Some(Err(e)) => return Err(e),
                None => {
                    result.completion = Completion::TruncatedDeadline;
                    finalize(&mut result, trace);
                    return Ok(result);
                }
            };
            if keep_all {
                result.points.push(DesignPoint::from_system(&system));
            }
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result
                    .feasible
                    .push(FeasibleImplementation { selection: current.indices, system });
                break; // Q ← nil: nothing left to serialize at this l.
            }
            // Q: partitions on chips whose AREA constraint was violated.
            let violated_chips: Vec<usize> = system
                .verdict
                .violations
                .iter()
                .filter_map(|v| match v {
                    Violation::ChipArea { chip, .. } => Some(*chip),
                    _ => None,
                })
                .collect();
            if violated_chips.is_empty() {
                break; // serialization cannot fix non-area violations
            }
            let q: Vec<usize> = (0..sorted.len())
                .filter(|&p| {
                    violated_chips.contains(
                        &ctx.partitioning()
                            .chip_of(crate::spec::PartitionId::new(p as u32))
                            .index(),
                    ) && w[p] + 1 < sorted[p].len()
                })
                .collect();
            if q.is_empty() {
                break; // no partition can serialize further
            }
            // Tentatively serialize each candidate — scored as one batch —
            // and keep the one with the minimum expected system delay
            // (first wins on ties, as in the serial loop).
            let tentative: Vec<Candidate> = q
                .iter()
                .map(|&p| {
                    let mut trial_w = w.clone();
                    trial_w[p] += 1;
                    candidate(&trial_w, &sorted, l)
                })
                .collect();
            let mut slots = score.score(&tentative).into_iter();
            let mut best: Option<(usize, f64)> = None;
            for &p in &q {
                if let Some(status) = timer.check(result.trials, result.retained_points()) {
                    result.completion = status;
                    finalize(&mut result, trace);
                    return Ok(result);
                }
                result.trials += 1;
                let trial_system = match slots.next().flatten() {
                    Some(Ok(system)) => system,
                    Some(Err(e)) => return Err(e),
                    None => {
                        result.completion = Completion::TruncatedDeadline;
                        finalize(&mut result, trace);
                        return Ok(result);
                    }
                };
                if keep_all {
                    result.points.push(DesignPoint::from_system(&trial_system));
                }
                let delay = trial_system.delay_ns.likely();
                if best.is_none_or(|(_, d)| delay < d) {
                    best = Some((p, delay));
                }
            }
            // `q` is non-empty, so `best` is always set here; the guard
            // (rather than an `expect`) keeps the lib path panic-free.
            let Some((chosen, _)) = best else { break };
            w[chosen] += 1;
        }
    }
    finalize(&mut result, trace);
    Ok(result)
}

/// Builds the candidate for the current serialization state `w`.
fn candidate(w: &[usize], sorted: &[Vec<(u32, &PredictedDesign)>], ii: u64) -> Candidate {
    Candidate { indices: w.iter().zip(sorted).map(|(&i, list)| list[i].0).collect(), ii }
}

/// Fig. 5's initialization: the first (fastest) implementation advanced
/// "until L_i ≥ l or W_i is a non-pipelined implementation with L_i ≤ l".
fn initial_index(list: &[(u32, &PredictedDesign)], l: u64) -> Option<usize> {
    list.iter().position(|(_, d)| {
        let ii = d.initiation_interval().value();
        ii >= l || (d.style() == DesignStyle::NonPipelined && ii <= l)
    })
}

/// The feasible initiation intervals to sweep: every distinct prediction
/// II, raised to the transfer-imposed minimum, bounded by the performance
/// constraint at the base clock.
fn candidate_intervals(
    ctx: &IntegrationContext<'_>,
    sorted: &[Vec<(u32, &PredictedDesign)>],
    base_clock: Nanos,
) -> Vec<u64> {
    let min_ii = ctx.min_transfer_ii().value();
    let max_ii = (ctx.constraints().performance().value() / base_clock.value()).floor() as u64;
    let mut candidates: Vec<u64> = sorted
        .iter()
        .flatten()
        .map(|(_, d)| d.initiation_interval().value().max(min_ii))
        .filter(|&l| l <= max_ii)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use chop_bad::prune::prune;
    use chop_bad::{
        ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams,
    };
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::{ChipSet, Library};

    use super::*;
    use crate::engine::scorer::BatchScorer;
    use crate::feasibility::{Constraints, FeasibilityCriteria};
    use crate::spec::{Partitioning, PartitioningBuilder};

    fn setup(k: usize) -> (Partitioning, Library, ClockConfig, Vec<Arc<[PredictedDesign]>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let env = PartitionEnvelope::new(
            table2_packages()[1].usable_area(),
            Nanos::new(30_000.0),
            Nanos::new(30_000.0),
        );
        let designs: Vec<Arc<[PredictedDesign]>> = p
            .partition_ids()
            .map(|pid| {
                let (kept, _) =
                    prune(predictor.predict(&p.partition_dfg(pid)).unwrap(), &env, &clocks);
                kept.into()
            })
            .collect();
        (p, lib, clocks, designs)
    }

    fn make_ctx<'a>(
        p: &'a Partitioning,
        lib: &'a Library,
        clocks: ClockConfig,
    ) -> IntegrationContext<'a> {
        IntegrationContext::new(
            p,
            lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    fn run_serial(
        ctx: &IntegrationContext<'_>,
        designs: &[Arc<[PredictedDesign]>],
        keep_all: bool,
    ) -> HeuristicResult {
        let timer = BudgetTimer::unlimited();
        let trace = TraceRecorder::new(1);
        let scorer = BatchScorer { ctx, lists: designs, jobs: 1, timer: &timer, trace: &trace };
        run(ctx, designs, Nanos::new(300.0), keep_all, &timer, &scorer, &trace).unwrap()
    }

    #[test]
    fn iterative_finds_feasible_single_chip() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, false);
        assert!(r.feasible_trials >= 1);
        assert!(!r.feasible.is_empty());
    }

    #[test]
    fn iterative_uses_fewer_trials_than_enumeration_on_two_partitions() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let it = run_serial(&ctx, &designs, false);
        let timer = BudgetTimer::unlimited();
        let trace = TraceRecorder::new(1);
        let scorer =
            BatchScorer { ctx: &ctx, lists: &designs, jobs: 1, timer: &timer, trace: &trace };
        let en = crate::heuristics::enumeration::run(
            &ctx, &designs, true, false, false, &timer, &scorer, &trace,
        )
        .unwrap();
        // The paper's headline contrast (Table 4: 156 vs 9 trials).
        assert!(it.trials < en.trials, "iterative {} !< enumeration {}", it.trials, en.trials);
    }

    #[test]
    fn feasible_results_are_actually_feasible() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, false);
        for f in &r.feasible {
            assert!(f.system.verdict.feasible);
            assert_eq!(f.selection.len(), 2);
        }
    }

    #[test]
    fn initial_index_respects_fig5_rule() {
        let (_, _, _, designs) = setup(1);
        let mut list: Vec<(u32, &PredictedDesign)> =
            designs[0].iter().enumerate().map(|(i, d)| (i as u32, d)).collect();
        list.sort_by_key(|(_, d)| (d.initiation_interval(), d.latency()));
        if let Some(i) = initial_index(&list, 60) {
            let (_, d) = list[i];
            let ii = d.initiation_interval().value();
            assert!(ii >= 60 || (d.style() == DesignStyle::NonPipelined && ii <= 60));
        }
    }
}
