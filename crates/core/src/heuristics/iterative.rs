//! Heuristic **I**: iterative serialization (Fig. 5 of the paper).
//!
//! For each feasible initiation interval the heuristic starts from the
//! fastest predicted implementation of every partition and iteratively
//! serializes partitions on chips whose area constraint is violated,
//! picking at each step the serialization with the minimum expected system
//! delay ("this selection generally favors the serialization of
//! off-critical-path partitions").

use chop_bad::{DesignStyle, PredictedDesign};
use chop_stat::units::{Cycles, Nanos};

use crate::budget::BudgetTimer;
use crate::error::ChopError;
use crate::feasibility::Violation;
use crate::heuristics::{DesignPoint, FeasibleImplementation, HeuristicResult};
use crate::integration::IntegrationContext;

/// Runs the iterative heuristic.
///
/// `designs` holds the (already level-1-pruned) prediction list of each
/// partition; each list is re-sorted here by (initiation interval, latency)
/// as Fig. 5 requires. Every system-integration estimate counts as one
/// trial. With `keep_all` on, every estimate is recorded as a design point.
///
/// The `timer` is consulted before every integration estimate; a tripped
/// budget abandons the sweep and returns the partial result tagged with
/// the truncation status.
///
/// # Errors
///
/// Returns [`ChopError::Integration`] only for structural task-graph
/// failures.
pub fn run(
    ctx: &IntegrationContext<'_>,
    designs: &[Vec<PredictedDesign>],
    base_clock: Nanos,
    keep_all: bool,
    timer: &BudgetTimer,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    if designs.iter().any(Vec::is_empty) {
        return Ok(result);
    }
    // Sorted prediction lists: increasing II, then increasing latency.
    let sorted: Vec<Vec<&PredictedDesign>> = designs
        .iter()
        .map(|list| {
            let mut v: Vec<&PredictedDesign> = list.iter().collect();
            v.sort_by_key(|d| (d.initiation_interval(), d.latency()));
            v
        })
        .collect();

    for l in candidate_intervals(ctx, &sorted, base_clock) {
        // Initialize W_i: advance past implementations too fast to be
        // useful at rate l.
        let mut w: Vec<usize> = Vec::with_capacity(sorted.len());
        let mut ok = true;
        for list in &sorted {
            match initial_index(list, l) {
                Some(i) => w.push(i),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }

        let budget: usize = sorted.iter().map(Vec::len).sum::<usize>() + 1;
        for _round in 0..budget {
            if let Some(status) = timer.check(result.trials, result.retained_points()) {
                result.completion = status;
                result.retain_non_inferior();
                return Ok(result);
            }
            let selection: Vec<&PredictedDesign> =
                w.iter().zip(&sorted).map(|(&i, list)| list[i]).collect();
            result.trials += 1;
            let system = ctx.evaluate(&selection, Cycles::new(l))?;
            if keep_all {
                result.points.push(DesignPoint::from_system(&system));
            }
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result.feasible.push(FeasibleImplementation {
                    selection: selection.iter().map(|d| (*d).clone()).collect(),
                    system,
                });
                break; // Q ← nil: nothing left to serialize at this l.
            }
            // Q: partitions on chips whose AREA constraint was violated.
            let violated_chips: Vec<usize> = system
                .verdict
                .violations
                .iter()
                .filter_map(|v| match v {
                    Violation::ChipArea { chip, .. } => Some(*chip),
                    _ => None,
                })
                .collect();
            if violated_chips.is_empty() {
                break; // serialization cannot fix non-area violations
            }
            let q: Vec<usize> = (0..sorted.len())
                .filter(|&p| {
                    violated_chips.contains(
                        &ctx.partitioning()
                            .chip_of(crate::spec::PartitionId::new(p as u32))
                            .index(),
                    ) && w[p] + 1 < sorted[p].len()
                })
                .collect();
            if q.is_empty() {
                break; // no partition can serialize further
            }
            // Tentatively serialize each candidate; keep the one with the
            // minimum expected system delay.
            let mut best: Option<(usize, f64)> = None;
            for &p in &q {
                if let Some(status) = timer.check(result.trials, result.retained_points()) {
                    result.completion = status;
                    result.retain_non_inferior();
                    return Ok(result);
                }
                let mut trial_w = w.clone();
                trial_w[p] += 1;
                let trial_sel: Vec<&PredictedDesign> =
                    trial_w.iter().zip(&sorted).map(|(&i, list)| list[i]).collect();
                result.trials += 1;
                let trial_system = ctx.evaluate(&trial_sel, Cycles::new(l))?;
                if keep_all {
                    result.points.push(DesignPoint::from_system(&trial_system));
                }
                let delay = trial_system.delay_ns.likely();
                if best.is_none_or(|(_, d)| delay < d) {
                    best = Some((p, delay));
                }
            }
            let (chosen, _) = best.expect("q was non-empty");
            w[chosen] += 1;
        }
    }
    result.retain_non_inferior();
    Ok(result)
}

/// Fig. 5's initialization: the first (fastest) implementation advanced
/// "until L_i ≥ l or W_i is a non-pipelined implementation with L_i ≤ l".
fn initial_index(list: &[&PredictedDesign], l: u64) -> Option<usize> {
    list.iter().position(|d| {
        let ii = d.initiation_interval().value();
        ii >= l || (d.style() == DesignStyle::NonPipelined && ii <= l)
    })
}

/// The feasible initiation intervals to sweep: every distinct prediction
/// II, raised to the transfer-imposed minimum, bounded by the performance
/// constraint at the base clock.
fn candidate_intervals(
    ctx: &IntegrationContext<'_>,
    sorted: &[Vec<&PredictedDesign>],
    base_clock: Nanos,
) -> Vec<u64> {
    let min_ii = ctx.min_transfer_ii().value();
    let max_ii = (ctx.constraints().performance().value() / base_clock.value()).floor() as u64;
    let mut candidates: Vec<u64> = sorted
        .iter()
        .flatten()
        .map(|d| d.initiation_interval().value().max(min_ii))
        .filter(|&l| l <= max_ii)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use chop_bad::prune::prune;
    use chop_bad::{
        ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams,
    };
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::{ChipSet, Library};

    use super::*;
    use crate::feasibility::{Constraints, FeasibilityCriteria};
    use crate::spec::{Partitioning, PartitioningBuilder};

    fn setup(k: usize) -> (Partitioning, Library, ClockConfig, Vec<Vec<PredictedDesign>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let env = PartitionEnvelope::new(
            table2_packages()[1].usable_area(),
            Nanos::new(30_000.0),
            Nanos::new(30_000.0),
        );
        let designs: Vec<Vec<PredictedDesign>> = p
            .partition_ids()
            .map(|pid| {
                let (kept, _) =
                    prune(predictor.predict(&p.partition_dfg(pid)).unwrap(), &env, &clocks);
                kept
            })
            .collect();
        (p, lib, clocks, designs)
    }

    fn make_ctx<'a>(
        p: &'a Partitioning,
        lib: &'a Library,
        clocks: ClockConfig,
    ) -> IntegrationContext<'a> {
        IntegrationContext::new(
            p,
            lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    #[test]
    fn iterative_finds_feasible_single_chip() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run(&ctx, &designs, Nanos::new(300.0), false, &BudgetTimer::unlimited()).unwrap();
        assert!(r.feasible_trials >= 1);
        assert!(!r.feasible.is_empty());
    }

    #[test]
    fn iterative_uses_fewer_trials_than_enumeration_on_two_partitions() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let it = run(&ctx, &designs, Nanos::new(300.0), false, &BudgetTimer::unlimited()).unwrap();
        let en =
            crate::heuristics::enumeration::run(&ctx, &designs, true, false, &BudgetTimer::unlimited()).unwrap();
        // The paper's headline contrast (Table 4: 156 vs 9 trials).
        assert!(
            it.trials < en.trials,
            "iterative {} !< enumeration {}",
            it.trials,
            en.trials
        );
    }

    #[test]
    fn feasible_results_are_actually_feasible() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run(&ctx, &designs, Nanos::new(300.0), false, &BudgetTimer::unlimited()).unwrap();
        for f in &r.feasible {
            assert!(f.system.verdict.feasible);
            assert_eq!(f.selection.len(), 2);
        }
    }

    #[test]
    fn initial_index_respects_fig5_rule() {
        let (_, _, _, designs) = setup(1);
        let mut list: Vec<&PredictedDesign> = designs[0].iter().collect();
        list.sort_by_key(|d| (d.initiation_interval(), d.latency()));
        if let Some(i) = initial_index(&list, 60) {
            let d = list[i];
            let ii = d.initiation_interval().value();
            assert!(ii >= 60 || (d.style() == DesignStyle::NonPipelined && ii <= 60));
        }
    }
}
