//! Heuristic **E**: explicit enumeration of implementation combinations.
//!
//! "The heuristic searches all possible combinations of implementing the
//! global design (partitioning), given the predicted implementations of
//! individual partitions. … The heuristic assumes that the performance of
//! each combination is upper bounded and set by the slowest partition
//! implementation in the combination" (paper §2.4).
//!
//! With pruning on, the walk is a **branch-and-bound** over the odometer
//! tree (DESIGN.md §10): each partition's design list is canonically
//! sorted, per-chip suffix area minima and initiation-interval envelopes
//! are precomputed once, and any prefix assignment whose optimistic
//! completion already violates a constraint causes the walk to advance
//! the offending digit directly — the skipped subtree is tallied in
//! `subtrees_skipped`/`combinations_skipped` instead of being visited.
//! Every bound only ever removes *provably infeasible* combinations, so
//! the retained feasible set (and `SearchOutcome::digest`) is identical
//! to the exhaustive walk's. `keep_all` (Figure-7 dumps) forces the
//! exhaustive walk as before.

use std::sync::Arc;

use chop_bad::{DesignStyle, PredictedDesign};
use chop_stat::{Estimate, FeasibilityThreshold};

use crate::budget::{BudgetTimer, Completion};
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::heuristics::{
    finalize, Candidate, DesignPoint, FeasibleImplementation, HeuristicResult, ScoreBatch,
};
use crate::integration::{DelayGraph, IntegrationContext};

/// Candidates generated per scoring batch. Deliberately independent of the
/// worker count so that candidate/trial accounting — and therefore any
/// count-capped truncation point — is identical for every `--jobs` value.
const BLOCK: usize = 128;

/// How many branch-and-bound tree nodes are expanded between wall-clock
/// deadline polls during candidate generation.
const DEADLINE_POLL_NODES: u64 = 4096;

/// Cap for the initiation-interval / delay bound binary searches; a bound
/// that is still satisfiable here is treated as unbounded (no pruning).
const BOUND_SEARCH_CAP: u64 = 1 << 42;

/// Extra probability margin a bound must fail `meets` by before the
/// search prunes on it. The feasibility tolerance is 1e-9; pruning only
/// when the floor misses the threshold by 1e-6 keeps the bound sound
/// against floating-point wobble in the triangular-CDF evaluation (the
/// true probability is weakly decreasing in each estimate component, but
/// the computed one may wiggle by a few ulps).
const PRUNE_MARGIN: f64 = 1e-6;

/// Per-run lookup tables shared by both walk modes: partition→chip map,
/// per-chip usable areas and a reusable per-chip accumulator, computed
/// once so the per-candidate quick-reject path is allocation-free.
struct RunTables {
    /// Chip index of each partition, in partition order.
    chip_of: Vec<usize>,
    /// Usable area per chip (mil²).
    usable: Vec<f64>,
    /// Scratch per-chip area accumulator reused across candidates.
    scratch: Vec<f64>,
}

impl RunTables {
    fn new(ctx: &IntegrationContext<'_>, partitions: usize) -> Self {
        let chip_of = (0..partitions)
            .map(|p| {
                ctx.partitioning().chip_of(crate::spec::PartitionId::new(p as u32)).index()
            })
            .collect();
        let usable: Vec<f64> = ctx
            .partitioning()
            .chips()
            .iter()
            .map(|(_, pkg)| pkg.usable_area().value())
            .collect();
        let scratch = vec![0.0; usable.len()];
        Self { chip_of, usable, scratch }
    }

    /// Cheap level-2 pruning: reject when even the optimistic
    /// (lower-bound) partition areas overflow some chip's usable area.
    /// Accumulates in partition order into the reusable scratch slice —
    /// bit-identical to the branch-and-bound prefix sums.
    fn quick_area_reject(
        &mut self,
        designs: &[Arc<[PredictedDesign]>],
        index: &[usize],
    ) -> bool {
        self.scratch.fill(0.0);
        for (p, (&i, list)) in index.iter().zip(designs).enumerate() {
            self.scratch[self.chip_of[p]] += list[i].area().lo();
        }
        self.usable.iter().zip(&self.scratch).any(|(usable, used)| used > usable)
    }
}

/// Runs the enumeration heuristic.
///
/// `designs` holds the (already level-1-pruned) prediction list of each
/// partition. With `prune` on, combinations that transparently violate a
/// chip-area budget (even with every lower bound) are counted as trials
/// but not integrated — CHOP's "discard … immediately upon detection" —
/// and, when `branch_and_bound` is also on, whole subtrees of provably
/// infeasible combinations are skipped without being visited at all.
/// With `keep_all` on, every examined point is recorded for
/// Figure-7-style design-space dumps and the walk stays exhaustive.
///
/// The walk proceeds in three repeated stages: generate a block of
/// candidates, hand them to the `score` batch evaluator (the engine
/// parallelizes this), then fold the results back in canonical order —
/// consulting the `timer` before every combination exactly as the
/// original serial loop did, so results and budget accounting are
/// independent of the scorer's worker count.
///
/// # Errors
///
/// Returns [`ChopError::Integration`] only for structural task-graph
/// failures; infeasible combinations are recorded, not errors.
#[allow(clippy::too_many_arguments)] // three mode flags + the engine's shared plumbing
pub(crate) fn run(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    prune: bool,
    keep_all: bool,
    branch_and_bound: bool,
    timer: &BudgetTimer,
    score: &dyn ScoreBatch,
    trace: &TraceRecorder,
) -> Result<HeuristicResult, ChopError> {
    if designs.is_empty() || designs.iter().any(|list| list.is_empty()) {
        return Ok(HeuristicResult::default());
    }
    let mut tables = RunTables::new(ctx, designs.len());
    if prune && branch_and_bound && !keep_all {
        run_branch_and_bound(ctx, designs, &tables, timer, score, trace)
    } else {
        run_exhaustive(ctx, designs, &mut tables, prune, keep_all, timer, score, trace)
    }
}

/// The original odometer walk: visits every combination, quick-rejecting
/// one candidate at a time. Kept for `keep_all` dumps and as the
/// reference the branch-and-bound walk must stay byte-identical to.
#[allow(clippy::too_many_arguments)]
fn run_exhaustive(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    tables: &mut RunTables,
    prune: bool,
    keep_all: bool,
    timer: &BudgetTimer,
    score: &dyn ScoreBatch,
    trace: &TraceRecorder,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    let min_transfer_ii = ctx.min_transfer_ii().value();
    let mut index = vec![0usize; designs.len()];
    let mut exhausted = false;
    while !exhausted {
        // Stage A: generate a block of candidates (pure odometer walk,
        // with the cheap level-2 area pre-check applied eagerly; rejected
        // combinations are recorded as a flag only — no allocation).
        let mut rejected_flags: Vec<bool> = Vec::with_capacity(BLOCK);
        let mut to_score: Vec<Candidate> = Vec::with_capacity(BLOCK);
        while rejected_flags.len() < BLOCK && !exhausted {
            let rejected = prune && tables.quick_area_reject(designs, &index);
            if !rejected {
                let indices: Vec<u32> = index.iter().map(|&i| i as u32).collect();
                let ii = index
                    .iter()
                    .zip(designs)
                    .map(|(&i, list)| list[i].initiation_interval().value())
                    .max()
                    .map_or(min_transfer_ii, |m| m.max(min_transfer_ii));
                to_score.push(Candidate { indices, ii });
            }
            rejected_flags.push(rejected);
            exhausted = !advance(&mut index, designs);
        }
        // Stage B: score the surviving candidates (in parallel when the
        // scorer has workers).
        let mut slots = score.score(&to_score).into_iter();
        let mut candidates = to_score.into_iter();
        // Stage C: fold in canonical order, replaying the serial budget
        // semantics exactly.
        for rejected in rejected_flags {
            if let Some(status) = timer.check(result.trials, result.retained_points()) {
                result.completion = status;
                finalize(&mut result, trace);
                return Ok(result);
            }
            result.trials += 1;
            if rejected {
                trace.count_quick_reject();
                continue;
            }
            let Some(candidate) = candidates.next() else { break };
            let system = match slots.next().flatten() {
                Some(Ok(system)) => system,
                Some(Err(e)) => return Err(e),
                None => {
                    // The scorer abandoned the rest of the batch at the
                    // wall-clock deadline.
                    result.completion = Completion::TruncatedDeadline;
                    finalize(&mut result, trace);
                    return Ok(result);
                }
            };
            if keep_all {
                result.points.push(DesignPoint::from_system(&system));
            }
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result
                    .feasible
                    .push(FeasibleImplementation { selection: candidate.indices, system });
            }
        }
    }
    finalize(&mut result, trace);
    Ok(result)
}

/// The branch-and-bound walk: DFS over the canonically sorted lists with
/// subtree skipping; generated candidates are scored in the same batched,
/// jobs-independent fashion as the exhaustive walk.
fn run_branch_and_bound(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    tables: &RunTables,
    timer: &BudgetTimer,
    score: &dyn ScoreBatch,
    trace: &TraceRecorder,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    let mut walker = BnbWalker::new(ctx, designs, tables);
    let mut batch: Vec<Candidate> = Vec::with_capacity(BLOCK);
    loop {
        let status = walker.next_batch(timer, &mut batch);
        let mut slots = score.score(&batch).into_iter();
        for candidate in batch.drain(..) {
            if let Some(budget_status) = timer.check(result.trials, result.retained_points()) {
                result.completion = budget_status;
                return Ok(finish_bnb(result, &walker, trace));
            }
            result.trials += 1;
            let system = match slots.next().flatten() {
                Some(Ok(system)) => system,
                Some(Err(e)) => return Err(e),
                None => {
                    result.completion = Completion::TruncatedDeadline;
                    return Ok(finish_bnb(result, &walker, trace));
                }
            };
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result
                    .feasible
                    .push(FeasibleImplementation { selection: candidate.indices, system });
            }
        }
        match status {
            GenStatus::More => {}
            GenStatus::Exhausted => break,
            GenStatus::Deadline => {
                result.completion = Completion::TruncatedDeadline;
                return Ok(finish_bnb(result, &walker, trace));
            }
        }
    }
    Ok(finish_bnb(result, &walker, trace))
}

/// Flushes the walker's skip tallies, restores the exhaustive visiting
/// order for the feasible set (the DFS visits sorted-list order, but the
/// non-inferiority filter is insertion-order-sensitive) and finalizes.
fn finish_bnb(
    mut result: HeuristicResult,
    walker: &BnbWalker<'_>,
    trace: &TraceRecorder,
) -> HeuristicResult {
    result.subtrees_skipped = walker.subtrees_skipped;
    result.combinations_skipped = walker.combinations_skipped.min(u128::from(u64::MAX)) as u64;
    trace.add_skips(result.subtrees_skipped, result.combinations_skipped);
    // Lexicographic order over original indices == the exhaustive
    // odometer's generation order.
    result.feasible.sort_by(|a, b| a.selection.cmp(&b.selection));
    finalize(&mut result, trace);
    result
}

/// What a generation step ended with.
enum GenStatus {
    /// The batch filled up; more combinations remain.
    More,
    /// The whole tree has been walked (or pruned away).
    Exhausted,
    /// The wall-clock deadline passed mid-generation.
    Deadline,
}

/// Iterative DFS over the odometer tree with per-prefix lower bounds.
///
/// Digit `p` ranges over partition `p`'s design list *in canonical sorted
/// order* (ascending optimistic area, then latency, then interval, then
/// original index); candidates are emitted with the original indices so
/// scoring and the reported selections are unchanged. Sorting by
/// optimistic area makes the per-chip area bound monotone in the digit,
/// so an area violation kills the whole remaining row; the other bounds
/// are not monotone in the sort key and skip one digit value at a time.
struct BnbWalker<'a> {
    designs: &'a [Arc<[PredictedDesign]>],
    chip_of: &'a [usize],
    usable: &'a [f64],
    chips: usize,
    k: usize,
    lens: Vec<usize>,
    /// `order[p][j]` = original index of the `j`-th design of partition
    /// `p` in canonical order.
    order: Vec<Vec<u32>>,
    /// Whether the area bound may prune (a no-op area threshold — within
    /// the 1e-9 feasibility tolerance of zero — accepts even impossible
    /// areas, so nothing may be pruned on it).
    area_prune: bool,
    /// Largest initiation interval (cycles) the performance constraint
    /// can accept at the clock floor; `u64::MAX` when unbounded.
    ii_max: u64,
    /// Smallest interval at which the deterministic pin/memory
    /// feasibility checks can pass; `u64::MAX` when nothing can.
    ii_floor: u64,
    /// Largest schedule makespan (cycles) the delay constraint can accept
    /// at the clock floor; `u64::MAX` when unbounded.
    delay_max: u64,
    delay_graph: DelayGraph,
    /// `subtree[p]` = number of combinations below one digit-value cone
    /// at depth `p-1`, i.e. `∏_{q≥p} lens[q]` (and `subtree[k] = 1`).
    subtree: Vec<u128>,
    /// `suffix_area[p*chips + c]` = Σ of the minimal optimistic areas on
    /// chip `c` over positions `q ≥ p`.
    suffix_area: Vec<f64>,
    /// `suffix_ii_lb[p]` = the largest *minimum* interval any suffix
    /// position `q ≥ p` forces (lower bound on the suffix contribution).
    suffix_ii_lb: Vec<u64>,
    /// `suffix_ii_ub[p]` = the largest *maximum* interval any suffix
    /// position `q ≥ p` could contribute (upper bound).
    suffix_ii_ub: Vec<u64>,
    /// Minimal latency per position (optimistic delay-graph weights).
    min_lat: Vec<u64>,
    // --- DFS state ---
    pos: Vec<usize>,
    depth: usize,
    exhausted: bool,
    /// Prefix per-chip optimistic-area sums, one row per depth (a stack
    /// of rows rather than add/subtract updates, so the float rounding is
    /// bit-identical to the exhaustive quick-reject accumulation).
    area_stack: Vec<f64>,
    /// Prefix max interval, seeded with the transfer-side floor.
    prefix_ii: Vec<u64>,
    /// First pipelined design interval in the prefix, if any.
    pip_stack: Vec<Option<u64>>,
    /// Delay-graph weights: chosen latency for prefix positions, minimal
    /// latency for the rest.
    pu_weights: Vec<u64>,
    /// Longest-path scratch.
    dist: Vec<u64>,
    nodes: u64,
    subtrees_skipped: u64,
    combinations_skipped: u128,
}

impl<'a> BnbWalker<'a> {
    fn new(
        ctx: &IntegrationContext<'_>,
        designs: &'a [Arc<[PredictedDesign]>],
        tables: &'a RunTables,
    ) -> Self {
        let k = designs.len();
        let chips = tables.usable.len();
        let lens: Vec<usize> = designs.iter().map(|l| l.len()).collect();
        let order: Vec<Vec<u32>> = designs
            .iter()
            .map(|list| {
                let mut idx: Vec<u32> = (0..list.len() as u32).collect();
                idx.sort_by(|&a, &b| {
                    let (da, db) = (&list[a as usize], &list[b as usize]);
                    da.area()
                        .lo()
                        .total_cmp(&db.area().lo())
                        .then_with(|| da.latency().value().cmp(&db.latency().value()))
                        .then_with(|| {
                            da.initiation_interval()
                                .value()
                                .cmp(&db.initiation_interval().value())
                        })
                        .then_with(|| a.cmp(&b))
                });
                idx
            })
            .collect();

        let mut subtree = vec![1u128; k + 1];
        for p in (0..k).rev() {
            subtree[p] = subtree[p + 1].saturating_mul(lens[p] as u128);
        }
        let mut suffix_area = vec![0.0f64; (k + 1) * chips];
        let mut suffix_ii_lb = vec![0u64; k + 1];
        let mut suffix_ii_ub = vec![0u64; k + 1];
        let mut min_lat = vec![0u64; k];
        for p in (0..k).rev() {
            let (dst, src) = suffix_area.split_at_mut((p + 1) * chips);
            dst[p * chips..(p + 1) * chips].copy_from_slice(&src[..chips]);
            let min_area =
                designs[p].iter().map(|d| d.area().lo()).fold(f64::INFINITY, f64::min);
            suffix_area[p * chips + tables.chip_of[p]] += min_area;
            let (mut ii_lo, mut ii_hi, mut lat_lo) = (u64::MAX, 0u64, u64::MAX);
            for d in designs[p].iter() {
                ii_lo = ii_lo.min(d.initiation_interval().value());
                ii_hi = ii_hi.max(d.initiation_interval().value());
                lat_lo = lat_lo.min(d.latency().value());
            }
            suffix_ii_lb[p] = suffix_ii_lb[p + 1].max(ii_lo);
            suffix_ii_ub[p] = suffix_ii_ub[p + 1].max(ii_hi);
            min_lat[p] = lat_lo;
        }

        let criteria = ctx.criteria();
        let floor = ctx.clock_floor();
        let ii_max =
            bound_search(&floor, ctx.constraints().performance().value(), criteria.performance);
        let delay_max = bound_search(&floor, ctx.constraints().delay().value(), criteria.delay);
        let mut prefix_ii = vec![0u64; k + 1];
        prefix_ii[0] = ctx.min_transfer_ii().value();
        Self {
            designs,
            chip_of: &tables.chip_of,
            usable: &tables.usable,
            chips,
            k,
            lens,
            order,
            area_prune: criteria.area.probability().value() > 1e-9,
            ii_max,
            ii_floor: ctx.deterministic_ii_floor(),
            delay_max,
            delay_graph: ctx.delay_graph(),
            subtree,
            suffix_area,
            suffix_ii_lb,
            suffix_ii_ub,
            pu_weights: min_lat.clone(),
            min_lat,
            pos: vec![0usize; k],
            depth: 0,
            exhausted: false,
            area_stack: vec![0.0f64; (k + 1) * chips],
            prefix_ii,
            pip_stack: vec![None; k + 1],
            dist: Vec::new(),
            nodes: 0,
            subtrees_skipped: 0,
            combinations_skipped: 0,
        }
    }

    /// Tallies the cone below the current digit value (and, for a row
    /// kill, every later value of the digit) as skipped.
    fn tally_skip(&mut self, depth: usize, values: usize) {
        self.subtrees_skipped = self.subtrees_skipped.saturating_add(values as u64);
        self.combinations_skipped = self
            .combinations_skipped
            .saturating_add(self.subtree[depth + 1].saturating_mul(values as u128));
    }

    /// Generates up to [`BLOCK`] candidates into `out`.
    fn next_batch(&mut self, timer: &BudgetTimer, out: &mut Vec<Candidate>) -> GenStatus {
        out.clear();
        if self.exhausted {
            return GenStatus::Exhausted;
        }
        loop {
            if out.len() >= BLOCK {
                return GenStatus::More;
            }
            self.nodes += 1;
            if self.nodes.is_multiple_of(DEADLINE_POLL_NODES) && timer.deadline_exceeded() {
                return GenStatus::Deadline;
            }
            let p = self.depth;
            if self.pos[p] >= self.lens[p] {
                if p == 0 {
                    self.exhausted = true;
                    return GenStatus::Exhausted;
                }
                // Restore the exhausted row's delay weight to its
                // optimistic minimum: the delay bound at shallower depths
                // must never see a stale chosen latency for this position
                // (that would overestimate the lower bound and prune
                // feasible subtrees).
                self.pu_weights[p] = self.min_lat[p];
                self.depth = p - 1;
                self.pos[self.depth] += 1;
                continue;
            }
            let j = self.pos[p];
            let d = &self.designs[p][self.order[p][j] as usize];
            let c0 = self.chip_of[p];

            // Area row-kill: prefix + this digit + optimistic suffix on
            // the digit's chip. Later digit values have ≥ this area (the
            // canonical sort), so the whole remaining row dies with it.
            if self.area_prune {
                let bound = self.area_stack[p * self.chips + c0]
                    + d.area().lo()
                    + self.suffix_area[(p + 1) * self.chips + c0];
                if bound > self.usable[c0] {
                    self.tally_skip(p, self.lens[p] - j);
                    self.pos[p] = self.lens[p];
                    continue;
                }
            }

            // Pipelined data-rate conflict: deterministic mismatch, skip
            // this digit value.
            let d_ii = d.initiation_interval().value();
            let mut pip = self.pip_stack[p];
            if d.style() == DesignStyle::Pipelined {
                match pip {
                    Some(first) if first != d_ii => {
                        self.tally_skip(p, 1);
                        self.pos[p] += 1;
                        continue;
                    }
                    Some(_) => {}
                    None => pip = Some(d_ii),
                }
            }

            // Interval envelope vs. the performance ceiling and the
            // deterministic pin/memory floor.
            let prefix_ii = self.prefix_ii[p].max(d_ii);
            if prefix_ii.max(self.suffix_ii_lb[p + 1]) > self.ii_max
                || prefix_ii.max(self.suffix_ii_ub[p + 1]) < self.ii_floor
            {
                self.tally_skip(p, 1);
                self.pos[p] += 1;
                continue;
            }

            // Critical-path delay: dependency longest path with chosen
            // prefix latencies and minimal suffix latencies lower-bounds
            // every schedule makespan over this prefix.
            self.pu_weights[p] = d.latency().value();
            if self.delay_max != u64::MAX {
                let lp = self.delay_graph.longest_path(&self.pu_weights, &mut self.dist);
                if lp > self.delay_max {
                    self.tally_skip(p, 1);
                    self.pos[p] += 1;
                    continue;
                }
            }

            if p + 1 == self.k {
                // Leaf: emit with the original indices so scoring and the
                // reported selection are identical to the exhaustive walk.
                let indices: Vec<u32> =
                    (0..self.k).map(|q| self.order[q][self.pos[q]]).collect();
                out.push(Candidate { indices, ii: prefix_ii });
                self.pos[p] += 1;
            } else {
                let (row, next_row) = (p * self.chips, (p + 1) * self.chips);
                let (head, tail) = self.area_stack.split_at_mut(next_row);
                tail[..self.chips].copy_from_slice(&head[row..row + self.chips]);
                tail[c0] += d.area().lo();
                self.prefix_ii[p + 1] = prefix_ii;
                self.pip_stack[p + 1] = pip;
                self.depth = p + 1;
                self.pos[p + 1] = 0;
            }
        }
    }
}

/// Largest integer scale `l ≥ 1` at which `floor · l` still clearly
/// satisfies the probabilistic constraint — `0` when even `l = 1` fails,
/// `u64::MAX` when the constraint never clearly fails (no pruning).
/// "Clearly" leaves [`PRUNE_MARGIN`] headroom over the feasibility
/// tolerance so a bound failure implies every dominated actual estimate
/// fails too.
fn bound_search(floor: &Estimate, limit: f64, threshold: FeasibilityThreshold) -> u64 {
    let clearly_fails = |l: u64| {
        (*floor * l as f64).probability_le(limit).value() + PRUNE_MARGIN
            < threshold.probability().value()
    };
    if !clearly_fails(BOUND_SEARCH_CAP) {
        return u64::MAX;
    }
    if clearly_fails(1) {
        return 0;
    }
    let (mut ok, mut bad) = (1u64, BOUND_SEARCH_CAP);
    while bad - ok > 1 {
        let mid = ok + (bad - ok) / 2;
        if clearly_fails(mid) {
            bad = mid;
        } else {
            ok = mid;
        }
    }
    ok
}

/// Odometer increment from the rightmost position; returns `false` when
/// the combination space is exhausted.
fn advance(index: &mut [usize], designs: &[Arc<[PredictedDesign]>]) -> bool {
    let mut pos = index.len();
    loop {
        if pos == 0 {
            return false;
        }
        pos -= 1;
        index[pos] += 1;
        if index[pos] < designs[pos].len() {
            return true;
        }
        index[pos] = 0;
    }
}

#[cfg(test)]
mod tests {
    use chop_bad::prune::prune;
    use chop_bad::{
        ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams,
    };
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::{ChipSet, Library};
    use chop_stat::units::Nanos;

    use super::*;
    use crate::engine::scorer::BatchScorer;
    use crate::engine::trace::TraceRecorder;
    use crate::feasibility::{Constraints, FeasibilityCriteria};
    use crate::spec::{Partitioning, PartitioningBuilder};

    fn setup(k: usize) -> (Partitioning, Library, ClockConfig, Vec<Arc<[PredictedDesign]>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let env = PartitionEnvelope::new(
            table2_packages()[1].usable_area(),
            Nanos::new(30_000.0),
            Nanos::new(30_000.0),
        );
        let designs: Vec<Arc<[PredictedDesign]>> = p
            .partition_ids()
            .map(|pid| {
                let (kept, _) =
                    prune(predictor.predict(&p.partition_dfg(pid)).unwrap(), &env, &clocks);
                kept.into()
            })
            .collect();
        (p, lib, clocks, designs)
    }

    fn make_ctx<'a>(
        p: &'a Partitioning,
        lib: &'a Library,
        clocks: ClockConfig,
    ) -> IntegrationContext<'a> {
        IntegrationContext::new(
            p,
            lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    fn run_serial(
        ctx: &IntegrationContext<'_>,
        designs: &[Arc<[PredictedDesign]>],
        prune: bool,
        keep_all: bool,
        bnb: bool,
    ) -> HeuristicResult {
        let timer = BudgetTimer::unlimited();
        let trace = TraceRecorder::new(1);
        let scorer = BatchScorer { ctx, lists: designs, jobs: 1, timer: &timer, trace: &trace };
        run(ctx, designs, prune, keep_all, bnb, &timer, &scorer, &trace).unwrap()
    }

    #[test]
    fn enumeration_finds_feasible_single_chip() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, true, false, false);
        assert!(r.trials >= designs[0].len());
        assert!(r.feasible_trials >= 1, "Table 4 row 1: a feasible trial exists");
        assert!(!r.feasible.is_empty());
    }

    #[test]
    fn enumeration_trials_equal_product_of_list_sizes() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let product: u64 = designs.iter().map(|l| l.len() as u64).product();
        let naive = run_serial(&ctx, &designs, true, false, false);
        assert_eq!(naive.trials as u64, product);
        assert_eq!(naive.combinations_skipped, 0);
        // Branch-and-bound accounting stays honest: visited + skipped
        // covers the whole cross-product.
        let bnb = run_serial(&ctx, &designs, true, false, true);
        assert_eq!(bnb.trials as u64 + bnb.combinations_skipped, product);
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_feasible_set() {
        for k in [1usize, 2, 3] {
            let (p, lib, clocks, designs) = setup(k);
            let ctx = make_ctx(&p, &lib, clocks);
            let naive = run_serial(&ctx, &designs, false, false, false);
            let bnb = run_serial(&ctx, &designs, true, false, true);
            assert_eq!(naive.feasible_trials, bnb.feasible_trials, "k={k}");
            assert_eq!(naive.feasible.len(), bnb.feasible.len(), "k={k}");
            for (a, b) in naive.feasible.iter().zip(&bnb.feasible) {
                assert_eq!(a.selection, b.selection, "k={k}");
                assert_eq!(a.system, b.system, "k={k}");
            }
        }
    }

    #[test]
    fn keep_all_records_every_evaluated_point() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        // keep_all forces the exhaustive walk even when branch-and-bound
        // is requested.
        let r = run_serial(&ctx, &designs, false, true, true);
        assert_eq!(r.points.len(), r.trials);
        assert_eq!(r.combinations_skipped, 0);
    }

    #[test]
    fn empty_design_list_is_graceful() {
        let (p, lib, clocks, _) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let empty: Vec<Arc<[PredictedDesign]>> = vec![Vec::new().into()];
        for bnb in [false, true] {
            let r = run_serial(&ctx, &empty, true, false, bnb);
            assert_eq!(r.trials, 0);
            assert!(r.feasible.is_empty());
        }
    }

    #[test]
    fn selection_indices_resolve_into_design_lists() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        for bnb in [false, true] {
            let r = run_serial(&ctx, &designs, true, false, bnb);
            for f in &r.feasible {
                assert_eq!(f.selection.len(), designs.len());
                for (&i, list) in f.selection.iter().zip(&designs) {
                    assert!((i as usize) < list.len());
                }
            }
        }
    }
}
