//! Heuristic **E**: explicit enumeration of implementation combinations.
//!
//! "The heuristic searches all possible combinations of implementing the
//! global design (partitioning), given the predicted implementations of
//! individual partitions. … The heuristic assumes that the performance of
//! each combination is upper bounded and set by the slowest partition
//! implementation in the combination" (paper §2.4).

use chop_bad::PredictedDesign;
use chop_stat::units::Cycles;

use crate::budget::BudgetTimer;
use crate::error::ChopError;
use crate::heuristics::{DesignPoint, FeasibleImplementation, HeuristicResult};
use crate::integration::IntegrationContext;

/// Runs the enumeration heuristic.
///
/// `designs` holds the (already level-1-pruned) prediction list of each
/// partition. With `prune` on, combinations that transparently violate a
/// chip-area budget (even with every lower bound) are counted as trials
/// but not integrated — CHOP's "discard … immediately upon detection".
/// With `keep_all` on, every examined point is recorded for Figure-7-style
/// design-space dumps.
///
/// The `timer` is consulted before every combination; a tripped budget
/// stops the odometer and returns the partial result tagged with the
/// truncation status.
///
/// # Errors
///
/// Returns [`ChopError::Integration`] only for structural task-graph
/// failures; infeasible combinations are recorded, not errors.
pub fn run(
    ctx: &IntegrationContext<'_>,
    designs: &[Vec<PredictedDesign>],
    prune: bool,
    keep_all: bool,
    timer: &BudgetTimer,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    if designs.iter().any(Vec::is_empty) {
        return Ok(result);
    }
    let min_transfer_ii = ctx.min_transfer_ii().value();
    let mut index = vec![0usize; designs.len()];
    loop {
        if let Some(status) = timer.check(result.trials, result.retained_points()) {
            result.completion = status;
            result.retain_non_inferior();
            return Ok(result);
        }
        let selection: Vec<&PredictedDesign> =
            index.iter().zip(designs).map(|(&i, list)| &list[i]).collect();
        result.trials += 1;

        let ii = selection
            .iter()
            .map(|d| d.initiation_interval().value())
            .max()
            .expect("non-empty selection")
            .max(min_transfer_ii);

        let quick_reject = prune && quick_area_reject(ctx, &selection);
        if !quick_reject {
            let system = ctx.evaluate(&selection, Cycles::new(ii))?;
            if keep_all {
                result.points.push(DesignPoint::from_system(&system));
            }
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result.feasible.push(FeasibleImplementation {
                    selection: selection.iter().map(|d| (*d).clone()).collect(),
                    system,
                });
            }
        }

        // Odometer increment.
        let mut pos = designs.len();
        loop {
            if pos == 0 {
                result.retain_non_inferior();
                return Ok(result);
            }
            pos -= 1;
            index[pos] += 1;
            if index[pos] < designs[pos].len() {
                break;
            }
            index[pos] = 0;
        }
    }
}

/// Cheap level-2 pruning: reject when even the optimistic (lower-bound)
/// partition areas overflow some chip's usable area.
fn quick_area_reject(ctx: &IntegrationContext<'_>, selection: &[&PredictedDesign]) -> bool {
    let partitioning_chips = ctx.budgets().len();
    let mut lo = vec![0.0f64; partitioning_chips];
    for (p, d) in selection.iter().enumerate() {
        let chip = ctx_chip_of(ctx, p);
        lo[chip] += d.area().lo();
    }
    ctx_chips_usable(ctx)
        .iter()
        .zip(&lo)
        .any(|(usable, used)| used > usable)
}

// Small accessors over the context's partitioning (kept here to avoid
// widening IntegrationContext's public surface).
fn ctx_chip_of(ctx: &IntegrationContext<'_>, partition: usize) -> usize {
    ctx.partitioning()
        .chip_of(crate::spec::PartitionId::new(partition as u32))
        .index()
}

fn ctx_chips_usable(ctx: &IntegrationContext<'_>) -> Vec<f64> {
    ctx.partitioning()
        .chips()
        .iter()
        .map(|(_, pkg)| pkg.usable_area().value())
        .collect()
}

#[cfg(test)]
mod tests {
    use chop_bad::prune::prune;
    use chop_bad::{
        ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams,
    };
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::{ChipSet, Library};
    use chop_stat::units::Nanos;

    use super::*;
    use crate::feasibility::{Constraints, FeasibilityCriteria};
    use crate::spec::{Partitioning, PartitioningBuilder};

    fn setup(k: usize) -> (Partitioning, Library, ClockConfig, Vec<Vec<PredictedDesign>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let env = PartitionEnvelope::new(
            table2_packages()[1].usable_area(),
            Nanos::new(30_000.0),
            Nanos::new(30_000.0),
        );
        let designs: Vec<Vec<PredictedDesign>> = p
            .partition_ids()
            .map(|pid| {
                let (kept, _) =
                    prune(predictor.predict(&p.partition_dfg(pid)).unwrap(), &env, &clocks);
                kept
            })
            .collect();
        (p, lib, clocks, designs)
    }

    #[test]
    fn enumeration_finds_feasible_single_chip() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = IntegrationContext::new(
            &p,
            &lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        let r = run(&ctx, &designs, true, false, &BudgetTimer::unlimited()).unwrap();
        assert!(r.trials >= designs[0].len());
        assert!(r.feasible_trials >= 1, "Table 4 row 1: a feasible trial exists");
        assert!(!r.feasible.is_empty());
    }

    #[test]
    fn enumeration_trials_equal_product_of_list_sizes() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = IntegrationContext::new(
            &p,
            &lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        let r = run(&ctx, &designs, true, false, &BudgetTimer::unlimited()).unwrap();
        let product: usize = designs.iter().map(Vec::len).product();
        assert_eq!(r.trials, product);
    }

    #[test]
    fn keep_all_records_every_evaluated_point() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = IntegrationContext::new(
            &p,
            &lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        let r = run(&ctx, &designs, false, true, &BudgetTimer::unlimited()).unwrap();
        assert_eq!(r.points.len(), r.trials);
    }

    #[test]
    fn empty_design_list_is_graceful() {
        let (p, lib, clocks, _) = setup(1);
        let ctx = IntegrationContext::new(
            &p,
            &lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        );
        let r = run(&ctx, &[Vec::new()], true, false, &BudgetTimer::unlimited()).unwrap();
        assert_eq!(r.trials, 0);
        assert!(r.feasible.is_empty());
    }
}
