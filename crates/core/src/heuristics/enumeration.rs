//! Heuristic **E**: explicit enumeration of implementation combinations.
//!
//! "The heuristic searches all possible combinations of implementing the
//! global design (partitioning), given the predicted implementations of
//! individual partitions. … The heuristic assumes that the performance of
//! each combination is upper bounded and set by the slowest partition
//! implementation in the combination" (paper §2.4).

use std::sync::Arc;

use chop_bad::PredictedDesign;

use crate::budget::{BudgetTimer, Completion};
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::heuristics::{
    finalize, Candidate, DesignPoint, FeasibleImplementation, HeuristicResult, ScoreBatch,
};
use crate::integration::IntegrationContext;

/// Candidates generated per scoring batch. Deliberately independent of the
/// worker count so that candidate/trial accounting — and therefore any
/// count-capped truncation point — is identical for every `--jobs` value.
const BLOCK: usize = 128;

/// Runs the enumeration heuristic.
///
/// `designs` holds the (already level-1-pruned) prediction list of each
/// partition. With `prune` on, combinations that transparently violate a
/// chip-area budget (even with every lower bound) are counted as trials
/// but not integrated — CHOP's "discard … immediately upon detection".
/// With `keep_all` on, every examined point is recorded for Figure-7-style
/// design-space dumps.
///
/// The odometer walk proceeds in three repeated stages: generate a block
/// of candidates, hand the survivors of the cheap area pre-check to the
/// `score` batch evaluator (the engine parallelizes this), then fold the
/// results back in canonical order — consulting the `timer` before every
/// combination exactly as the original serial loop did, so results and
/// budget accounting are independent of the scorer's worker count.
///
/// # Errors
///
/// Returns [`ChopError::Integration`] only for structural task-graph
/// failures; infeasible combinations are recorded, not errors.
pub(crate) fn run(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    prune: bool,
    keep_all: bool,
    timer: &BudgetTimer,
    score: &dyn ScoreBatch,
    trace: &TraceRecorder,
) -> Result<HeuristicResult, ChopError> {
    let mut result = HeuristicResult::default();
    if designs.iter().any(|list| list.is_empty()) {
        return Ok(result);
    }
    let min_transfer_ii = ctx.min_transfer_ii().value();
    let mut index = vec![0usize; designs.len()];
    let mut exhausted = false;
    while !exhausted {
        // Stage A: generate a block of candidates (pure odometer walk,
        // with the cheap level-2 area pre-check applied eagerly).
        let mut block: Vec<(Candidate, bool)> = Vec::with_capacity(BLOCK);
        while block.len() < BLOCK && !exhausted {
            let indices: Vec<u32> = index.iter().map(|&i| i as u32).collect();
            let ii = index
                .iter()
                .zip(designs)
                .map(|(&i, list)| list[i].initiation_interval().value())
                .max()
                .expect("non-empty selection")
                .max(min_transfer_ii);
            let rejected = prune && quick_area_reject(ctx, designs, &index);
            block.push((Candidate { indices, ii }, rejected));
            exhausted = !advance(&mut index, designs);
        }
        // Stage B: score the surviving candidates (in parallel when the
        // scorer has workers).
        let to_score: Vec<Candidate> =
            block.iter().filter(|(_, rejected)| !rejected).map(|(c, _)| c.clone()).collect();
        let mut slots = score.score(&to_score).into_iter();
        // Stage C: fold in canonical order, replaying the serial budget
        // semantics exactly.
        for (candidate, rejected) in block {
            if let Some(status) = timer.check(result.trials, result.retained_points()) {
                result.completion = status;
                finalize(&mut result, trace);
                return Ok(result);
            }
            result.trials += 1;
            if rejected {
                trace.count_quick_reject();
                continue;
            }
            let system = match slots.next().flatten() {
                Some(Ok(system)) => system,
                Some(Err(e)) => return Err(e),
                None => {
                    // The scorer abandoned the rest of the batch at the
                    // wall-clock deadline.
                    result.completion = Completion::TruncatedDeadline;
                    finalize(&mut result, trace);
                    return Ok(result);
                }
            };
            if keep_all {
                result.points.push(DesignPoint::from_system(&system));
            }
            if system.verdict.feasible {
                result.feasible_trials += 1;
                result
                    .feasible
                    .push(FeasibleImplementation { selection: candidate.indices, system });
            }
        }
    }
    finalize(&mut result, trace);
    Ok(result)
}

/// Odometer increment from the rightmost position; returns `false` when
/// the combination space is exhausted.
fn advance(index: &mut [usize], designs: &[Arc<[PredictedDesign]>]) -> bool {
    let mut pos = index.len();
    loop {
        if pos == 0 {
            return false;
        }
        pos -= 1;
        index[pos] += 1;
        if index[pos] < designs[pos].len() {
            return true;
        }
        index[pos] = 0;
    }
}

/// Cheap level-2 pruning: reject when even the optimistic (lower-bound)
/// partition areas overflow some chip's usable area.
fn quick_area_reject(
    ctx: &IntegrationContext<'_>,
    designs: &[Arc<[PredictedDesign]>],
    index: &[usize],
) -> bool {
    let partitioning_chips = ctx.budgets().len();
    let mut lo = vec![0.0f64; partitioning_chips];
    for (p, (&i, list)) in index.iter().zip(designs).enumerate() {
        let chip = ctx_chip_of(ctx, p);
        lo[chip] += list[i].area().lo();
    }
    ctx_chips_usable(ctx).iter().zip(&lo).any(|(usable, used)| used > usable)
}

// Small accessors over the context's partitioning (kept here to avoid
// widening IntegrationContext's public surface).
fn ctx_chip_of(ctx: &IntegrationContext<'_>, partition: usize) -> usize {
    ctx.partitioning().chip_of(crate::spec::PartitionId::new(partition as u32)).index()
}

fn ctx_chips_usable(ctx: &IntegrationContext<'_>) -> Vec<f64> {
    ctx.partitioning().chips().iter().map(|(_, pkg)| pkg.usable_area().value()).collect()
}

#[cfg(test)]
mod tests {
    use chop_bad::prune::prune;
    use chop_bad::{
        ArchitectureStyle, ClockConfig, PartitionEnvelope, Predictor, PredictorParams,
    };
    use chop_dfg::benchmarks;
    use chop_library::standard::{table1_library, table2_packages};
    use chop_library::{ChipSet, Library};
    use chop_stat::units::Nanos;

    use super::*;
    use crate::engine::scorer::BatchScorer;
    use crate::engine::trace::TraceRecorder;
    use crate::feasibility::{Constraints, FeasibilityCriteria};
    use crate::spec::{Partitioning, PartitioningBuilder};

    fn setup(k: usize) -> (Partitioning, Library, ClockConfig, Vec<Arc<[PredictedDesign]>>) {
        let dfg = benchmarks::ar_lattice_filter();
        let chips = ChipSet::uniform(table2_packages()[1].clone(), k);
        let p = PartitioningBuilder::new(dfg, chips).split_horizontal(k).build().unwrap();
        let lib = table1_library();
        let clocks = ClockConfig::new(Nanos::new(300.0), 10, 1).unwrap();
        let predictor = Predictor::new(
            lib.clone(),
            clocks,
            ArchitectureStyle::single_cycle(),
            PredictorParams::default(),
        );
        let env = PartitionEnvelope::new(
            table2_packages()[1].usable_area(),
            Nanos::new(30_000.0),
            Nanos::new(30_000.0),
        );
        let designs: Vec<Arc<[PredictedDesign]>> = p
            .partition_ids()
            .map(|pid| {
                let (kept, _) =
                    prune(predictor.predict(&p.partition_dfg(pid)).unwrap(), &env, &clocks);
                kept.into()
            })
            .collect();
        (p, lib, clocks, designs)
    }

    fn make_ctx<'a>(
        p: &'a Partitioning,
        lib: &'a Library,
        clocks: ClockConfig,
    ) -> IntegrationContext<'a> {
        IntegrationContext::new(
            p,
            lib,
            clocks,
            PredictorParams::default(),
            FeasibilityCriteria::paper_defaults(),
            Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
        )
    }

    fn run_serial(
        ctx: &IntegrationContext<'_>,
        designs: &[Arc<[PredictedDesign]>],
        prune: bool,
        keep_all: bool,
    ) -> HeuristicResult {
        let timer = BudgetTimer::unlimited();
        let trace = TraceRecorder::new(1);
        let scorer = BatchScorer { ctx, lists: designs, jobs: 1, timer: &timer, trace: &trace };
        run(ctx, designs, prune, keep_all, &timer, &scorer, &trace).unwrap()
    }

    #[test]
    fn enumeration_finds_feasible_single_chip() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, true, false);
        assert!(r.trials >= designs[0].len());
        assert!(r.feasible_trials >= 1, "Table 4 row 1: a feasible trial exists");
        assert!(!r.feasible.is_empty());
    }

    #[test]
    fn enumeration_trials_equal_product_of_list_sizes() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, true, false);
        let product: usize = designs.iter().map(|l| l.len()).product();
        assert_eq!(r.trials, product);
    }

    #[test]
    fn keep_all_records_every_evaluated_point() {
        let (p, lib, clocks, designs) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, false, true);
        assert_eq!(r.points.len(), r.trials);
    }

    #[test]
    fn empty_design_list_is_graceful() {
        let (p, lib, clocks, _) = setup(1);
        let ctx = make_ctx(&p, &lib, clocks);
        let empty: Vec<Arc<[PredictedDesign]>> = vec![Vec::new().into()];
        let r = run_serial(&ctx, &empty, true, false);
        assert_eq!(r.trials, 0);
        assert!(r.feasible.is_empty());
    }

    #[test]
    fn selection_indices_resolve_into_design_lists() {
        let (p, lib, clocks, designs) = setup(2);
        let ctx = make_ctx(&p, &lib, clocks);
        let r = run_serial(&ctx, &designs, true, false);
        for f in &r.feasible {
            assert_eq!(f.selection.len(), designs.len());
            for (&i, list) in f.selection.iter().zip(&designs) {
                assert!((i as usize) < list.len());
            }
        }
    }
}
