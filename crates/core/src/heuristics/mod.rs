//! The two search heuristics over combinations of partition
//! implementations.
//!
//! "The designer may choose between two separate heuristics at run-time.
//! … Neither of the heuristics can be claimed to be better than the other
//! in terms of the quality of results or run-time but they explore the
//! design space differently" (paper §2.4).

pub mod enumeration;
pub mod iterative;

use serde::{Deserialize, Serialize};

use crate::budget::Completion;
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::integration::SystemPrediction;

/// One feasible global implementation: the chosen design per partition
/// (as an index into the outcome's per-partition prediction lists) and its
/// integrated system prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibleImplementation {
    /// Chosen design index per partition, in partition order, indexing
    /// into [`SearchOutcome::predictions`](crate::SearchOutcome::predictions).
    /// Resolve with [`SearchOutcome::selected_designs`](crate::SearchOutcome::selected_designs).
    pub selection: Vec<u32>,
    /// The integrated prediction (feasible verdict).
    pub system: SystemPrediction,
}

/// One candidate combination handed to a [`ScoreBatch`] scorer: the chosen
/// design index per partition plus the initiation interval (main-clock
/// cycles) the combination is evaluated at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Candidate {
    /// Chosen design index per partition, in partition order.
    pub(crate) indices: Vec<u32>,
    /// Initiation interval (cycles) to evaluate the combination at.
    pub(crate) ii: u64,
}

/// One scored slot: `None` when the scorer abandoned the candidate because
/// the wall-clock deadline passed before it was reached.
pub(crate) type ScoreSlot = Option<Result<SystemPrediction, ChopError>>;

/// Batch evaluator for candidate combinations.
///
/// The heuristics stay single-threaded and deterministic: they generate
/// candidates in canonical order, hand them over in batches, and fold the
/// returned slots back in the same order. Implementations (the engine's
/// parallel scorer) may evaluate a batch's candidates concurrently but
/// must return exactly one slot per candidate, in candidate order.
pub(crate) trait ScoreBatch: Sync {
    /// Scores every candidate of `batch`, preserving order.
    fn score(&self, batch: &[Candidate]) -> Vec<ScoreSlot>;
}

/// One explored design point, recorded for the paper's Figures 7/8 when
/// keep-all mode is on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Total most-likely area over all chips, mil².
    pub area: f64,
    /// System delay, ns (most likely).
    pub delay_ns: f64,
    /// Initiation interval, ns (most likely).
    pub initiation_ns: f64,
    /// Whether the point was feasible.
    pub feasible: bool,
}

impl DesignPoint {
    /// Key used to count *unique* designs (rounded to whole ns / mil²).
    #[must_use]
    pub fn unique_key(&self) -> (u64, u64, u64) {
        (
            self.area.round() as u64,
            self.delay_ns.round() as u64,
            self.initiation_ns.round() as u64,
        )
    }

    pub(crate) fn from_system(s: &SystemPrediction) -> Self {
        DesignPoint {
            area: s.chip_areas.iter().map(chop_stat::Estimate::likely).sum(),
            delay_ns: s.delay_ns.likely(),
            initiation_ns: s.initiation_ns.likely(),
            feasible: s.verdict.feasible,
        }
    }
}

/// Outcome of one heuristic search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub(crate) struct HeuristicResult {
    /// Feasible, non-inferior global implementations found.
    pub feasible: Vec<FeasibleImplementation>,
    /// Global implementation combinations examined ("Partitioning Imp.
    /// Trials" of Tables 4/6).
    pub trials: usize,
    /// Trials that were feasible ("Feasible Trials").
    pub feasible_trials: usize,
    /// Every point examined (populated only in keep-all mode).
    pub points: Vec<DesignPoint>,
    /// Whether the search ran to completion or a budget tripped.
    pub completion: Completion,
    /// Odometer subtrees (digit-value cones) eliminated by the
    /// branch-and-bound lower bounds without being visited.
    pub subtrees_skipped: u64,
    /// Combinations inside the skipped subtrees: on a completed run
    /// `trials + combinations_skipped` equals the cross-product size.
    pub combinations_skipped: u64,
}

impl HeuristicResult {
    /// Count of retained design points (feasible implementations plus
    /// keep-all recordings) — what a `max_points` budget caps.
    pub(crate) fn retained_points(&self) -> usize {
        self.points.len() + self.feasible.len()
    }

    /// Keeps only non-inferior feasible implementations (by most-likely
    /// initiation interval and delay in ns).
    pub(crate) fn retain_non_inferior(&mut self) {
        let mut kept: Vec<FeasibleImplementation> = Vec::new();
        for f in self.feasible.drain(..) {
            if kept.iter().any(|k| k.system.dominates(&f.system)) {
                continue;
            }
            kept.retain(|k| !f.system.dominates(&k.system));
            // Drop exact duplicates.
            if kept.iter().any(|k| {
                k.system.initiation_ns.likely() == f.system.initiation_ns.likely()
                    && k.system.delay_ns.likely() == f.system.delay_ns.likely()
            }) {
                continue;
            }
            kept.push(f);
        }
        kept.sort_by(|a, b| {
            a.system
                .initiation_ns
                .likely()
                .partial_cmp(&b.system.initiation_ns.likely())
                .expect("finite")
        });
        self.feasible = kept;
    }
}

/// Applies the non-inferiority filter, timing it as the trace's
/// feasibility span. Every heuristic exit path funnels through here.
pub(crate) fn finalize(result: &mut HeuristicResult, trace: &TraceRecorder) {
    let started = std::time::Instant::now();
    result.retain_non_inferior();
    trace.add_feasibility(started.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use chop_stat::units::Cycles;
    use chop_stat::Estimate;

    fn system(ii: f64, delay: f64) -> SystemPrediction {
        SystemPrediction {
            initiation_interval: Cycles::new(ii as u64),
            delay: Cycles::new(delay as u64),
            clock: Estimate::exact(1.0),
            initiation_ns: Estimate::exact(ii),
            delay_ns: Estimate::exact(delay),
            chip_areas: vec![],
            power: Estimate::exact(0.0),
            transfer_modules: vec![],
            verdict: crate::feasibility::Verdict::feasible(),
        }
    }

    #[test]
    fn non_inferior_filter_keeps_pareto_front() {
        let mut r = HeuristicResult {
            feasible: vec![
                FeasibleImplementation { selection: vec![], system: system(10.0, 100.0) },
                FeasibleImplementation { selection: vec![], system: system(20.0, 50.0) },
                FeasibleImplementation { selection: vec![], system: system(20.0, 120.0) },
                FeasibleImplementation { selection: vec![], system: system(10.0, 100.0) },
            ],
            ..Default::default()
        };
        r.retain_non_inferior();
        assert_eq!(r.feasible.len(), 2);
        assert_eq!(r.feasible[0].system.initiation_ns.likely(), 10.0);
    }

    #[test]
    fn design_point_key_rounds() {
        let a = DesignPoint { area: 10.4, delay_ns: 5.0, initiation_ns: 2.0, feasible: true };
        let b = DesignPoint { area: 10.0, delay_ns: 5.0, initiation_ns: 2.0, feasible: false };
        assert_eq!(a.unique_key(), b.unique_key());
    }
}
