//! The tentative partitioning: partitions, chip assignments and memories.

use std::fmt;

use chop_dfg::grouping::{extract_group, Grouping, GroupingError};
use chop_dfg::{Dfg, NodeId};
use chop_library::{ChipId, ChipSet, MemoryId, MemoryModule, MemoryPlacement};
use serde::{Deserialize, Serialize};

/// Identifier of a partition within one [`Partitioning`].
///
/// # Examples
///
/// ```
/// use chop_core::PartitionId;
///
/// assert_eq!(PartitionId::new(0).to_string(), "P1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PartitionId(u32);

impl PartitionId {
    /// Creates a partition id from a zero-based index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The zero-based index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper numbering is one-based (P1…P5 in Fig. 2).
        write!(f, "P{}", self.0 + 1)
    }
}

/// Where a memory block lives relative to the chip set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryAssignment {
    /// Placed on a chip of the set (consumes that chip's project area).
    OnChip(ChipId),
    /// An off-the-shelf part outside the chip set (consumes pins only).
    External,
}

impl fmt::Display for MemoryAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryAssignment::OnChip(c) => write!(f, "on {c}"),
            MemoryAssignment::External => write!(f, "external"),
        }
    }
}

/// Error validating a [`Partitioning`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The chip set is empty.
    NoChips,
    /// The partition→chip assignment does not cover every partition.
    ChipAssignmentLength {
        /// Partitions in the grouping.
        partitions: usize,
        /// Assignments supplied.
        assignments: usize,
    },
    /// A partition was assigned to a chip outside the set.
    UnknownChip(ChipId),
    /// The DFG references a memory block that was not declared.
    UndeclaredMemory(u32),
    /// A memory declared [`MemoryPlacement::OnChip`] was assigned
    /// [`MemoryAssignment::External`] or vice versa.
    PlacementMismatch(MemoryId),
    /// A memory was assigned to a chip outside the set.
    MemoryOnUnknownChip(MemoryId, ChipId),
    /// The memory assignment list does not match the memory list.
    MemoryAssignmentLength {
        /// Declared memories.
        memories: usize,
        /// Assignments supplied.
        assignments: usize,
    },
    /// A constraint value is not a positive, finite quantity (the named
    /// field is the offender).
    InvalidConstraint(&'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoChips => write!(f, "chip set is empty"),
            SpecError::ChipAssignmentLength { partitions, assignments } => {
                write!(f, "{assignments} chip assignments supplied for {partitions} partitions")
            }
            SpecError::UnknownChip(c) => write!(f, "partition assigned to unknown {c}"),
            SpecError::UndeclaredMemory(m) => {
                write!(f, "data flow graph references undeclared memory block M{m}")
            }
            SpecError::PlacementMismatch(m) => {
                write!(f, "memory {m} placement style conflicts with its assignment")
            }
            SpecError::MemoryOnUnknownChip(m, c) => {
                write!(f, "memory {m} assigned to unknown {c}")
            }
            SpecError::MemoryAssignmentLength { memories, assignments } => {
                write!(f, "{assignments} memory assignments supplied for {memories} memories")
            }
            SpecError::InvalidConstraint(what) => {
                write!(f, "constraint {what} must be a positive, finite quantity")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A validated tentative partitioning: the behavioral DFG, its node
/// grouping into partitions, the chip set, the partition→chip map and the
/// memory blocks with their chip assignments.
///
/// Multiple partitions may share one chip, and memory blocks may share
/// chips with partitions — exactly the flexibility of the paper's Fig. 2
/// example.
///
/// Construct through [`PartitioningBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    dfg: Dfg,
    grouping: Grouping,
    chips: ChipSet,
    partition_chip: Vec<ChipId>,
    memories: Vec<MemoryModule>,
    memory_assignment: Vec<MemoryAssignment>,
}

impl Partitioning {
    /// The behavioral specification.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The node grouping defining the partitions.
    #[must_use]
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// The chip set.
    #[must_use]
    pub fn chips(&self) -> &ChipSet {
        &self.chips
    }

    /// Number of partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.grouping.group_count()
    }

    /// All partition ids.
    pub fn partition_ids(&self) -> impl Iterator<Item = PartitionId> + '_ {
        (0..self.partition_count()).map(|i| PartitionId::new(i as u32))
    }

    /// The chip a partition is assigned to.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn chip_of(&self, p: PartitionId) -> ChipId {
        self.partition_chip[p.index()]
    }

    /// Partitions assigned to a chip.
    #[must_use]
    pub fn partitions_on(&self, chip: ChipId) -> Vec<PartitionId> {
        self.partition_ids().filter(|p| self.chip_of(*p) == chip).collect()
    }

    /// The declared memory blocks.
    #[must_use]
    pub fn memories(&self) -> &[MemoryModule] {
        &self.memories
    }

    /// Assignment of a memory block.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn memory_assignment(&self, m: MemoryId) -> MemoryAssignment {
        self.memory_assignment[m.index()]
    }

    /// Extracts the self-contained sub-DFG of one partition (cut values
    /// become primary I/O) for prediction.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn partition_dfg(&self, p: PartitionId) -> Dfg {
        extract_group(&self.dfg, &self.grouping, p.index())
    }

    /// Inter-partition cut values (constant-fed values excluded — constants
    /// are replicated into their consuming partition rather than
    /// transferred between chips).
    #[must_use]
    pub fn inter_partition_cuts(&self) -> Vec<chop_dfg::grouping::CutValue> {
        let mut filtered: Vec<chop_dfg::grouping::CutValue> = Vec::new();
        let mut agg: std::collections::BTreeMap<(usize, usize), (u64, usize)> =
            std::collections::BTreeMap::new();
        for (_, e) in self.dfg.edges() {
            let sg = self.grouping.group_of(e.src());
            let dg = self.grouping.group_of(e.dst());
            if sg != dg && self.dfg.node(e.src()).op() != chop_dfg::Operation::Const {
                let entry = agg.entry((sg, dg)).or_insert((0, 0));
                entry.0 += e.width().value();
                entry.1 += 1;
            }
        }
        for ((src_group, dst_group), (bits, values)) in agg {
            filtered.push(chop_dfg::grouping::CutValue {
                src_group,
                dst_group,
                bits: chop_stat::units::Bits::new(bits),
                values,
            });
        }
        filtered
    }

    /// Returns a copy with one node moved to a different partition
    /// ("operation migrations from partition to partition", paper §2.7).
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] if `to` is not a partition of this
    /// partitioning, the move empties a partition, or it creates mutual
    /// data dependency.
    pub fn with_node_moved(
        &self,
        node: NodeId,
        to: PartitionId,
    ) -> Result<Self, GroupingError> {
        self.with_nodes_moved(&[(node, to)])
    }

    /// Returns a copy with several nodes moved *atomically*: every move is
    /// applied to the grouping first, then the structural invariants (no
    /// empty partition, no mutual data dependency) are checked once on the
    /// final state. This is the primitive behind grouped optimizer moves
    /// and journal replay of an accepted move trace — intermediate states
    /// that would be individually invalid (a group migration that
    /// transiently empties a partition) are fine as long as the final
    /// grouping is valid. Later moves of the same node override earlier
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns a [`GroupingError`] if any target is not a partition of
    /// this partitioning, or the final grouping empties a partition or
    /// creates mutual data dependency.
    pub fn with_nodes_moved(
        &self,
        moves: &[(NodeId, PartitionId)],
    ) -> Result<Self, GroupingError> {
        let mut moved = self.grouping.clone();
        for &(node, to) in moves {
            if to.index() >= moved.group_count() {
                return Err(GroupingError::GroupOutOfRange {
                    node,
                    group: to.index(),
                    groups: moved.group_count(),
                });
            }
            moved = moved.with_node_moved(node, to.index());
        }
        if let Some(empty) = (0..moved.group_count()).find(|&g| moved.members(g).is_empty()) {
            return Err(GroupingError::EmptyGroup(empty));
        }
        moved.check_no_mutual_dependency(&self.dfg)?;
        Ok(Self { grouping: moved, ..self.clone() })
    }

    /// Returns a copy with a partition migrated to another chip
    /// ("migration of partitions from chip to chip", paper §2.7).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UnknownChip`] if `chip` is outside the set.
    pub fn with_partition_on_chip(
        &self,
        p: PartitionId,
        chip: ChipId,
    ) -> Result<Self, SpecError> {
        if chip.index() >= self.chips.len() {
            return Err(SpecError::UnknownChip(chip));
        }
        let mut next = self.clone();
        next.partition_chip[p.index()] = chip;
        Ok(next)
    }

    /// Returns a copy with an on-chip memory block reassigned to another
    /// chip ("the assignments of memory blocks can also be changed to
    /// possibly decrease the number of off-chip memory accesses", §2.7).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::MemoryOnUnknownChip`] for a chip outside the
    /// set and [`SpecError::PlacementMismatch`] for off-the-shelf parts,
    /// which live outside the chip set by definition.
    pub fn with_memory_on_chip(&self, m: MemoryId, chip: ChipId) -> Result<Self, SpecError> {
        if chip.index() >= self.chips.len() {
            return Err(SpecError::MemoryOnUnknownChip(m, chip));
        }
        if self.memories[m.index()].placement() != MemoryPlacement::OnChip {
            return Err(SpecError::PlacementMismatch(m));
        }
        let mut next = self.clone();
        next.memory_assignment[m.index()] = MemoryAssignment::OnChip(chip);
        Ok(next)
    }

    /// Re-checks the structural invariants [`PartitioningBuilder::build`]
    /// established: a non-empty chip set, every partition and on-chip
    /// memory assigned to a chip inside the set, and matching memory /
    /// assignment list lengths. Construction through the builder
    /// guarantees these; the check exists for values that cross a trust
    /// boundary (a protocol decode, a hand-assembled what-if edit) before
    /// they are installed into a [`Session`](crate::Session).
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.chips.is_empty() {
            return Err(SpecError::NoChips);
        }
        if self.partition_chip.len() != self.partition_count() {
            return Err(SpecError::ChipAssignmentLength {
                partitions: self.partition_count(),
                assignments: self.partition_chip.len(),
            });
        }
        if let Some(&c) = self.partition_chip.iter().find(|c| c.index() >= self.chips.len()) {
            return Err(SpecError::UnknownChip(c));
        }
        if self.memory_assignment.len() != self.memories.len() {
            return Err(SpecError::MemoryAssignmentLength {
                memories: self.memories.len(),
                assignments: self.memory_assignment.len(),
            });
        }
        for (i, assign) in self.memory_assignment.iter().enumerate() {
            if let MemoryAssignment::OnChip(c) = assign {
                if c.index() >= self.chips.len() {
                    return Err(SpecError::MemoryOnUnknownChip(MemoryId::new(i as u32), *c));
                }
            }
        }
        Ok(())
    }

    /// Returns a copy with a different chip set (same length), the
    /// "target chip set" modification of §2.7.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoChips`] if the new set is empty, or
    /// [`SpecError::UnknownChip`] if it has fewer chips than some partition
    /// assignment requires.
    pub fn with_chip_set(&self, chips: ChipSet) -> Result<Self, SpecError> {
        if chips.is_empty() {
            return Err(SpecError::NoChips);
        }
        if let Some(&c) = self.partition_chip.iter().find(|c| c.index() >= chips.len()) {
            return Err(SpecError::UnknownChip(c));
        }
        Ok(Self { chips, ..self.clone() })
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Partitioning({} partitions on {} chips, {} memories)",
            self.partition_count(),
            self.chips.len(),
            self.memories.len()
        )
    }
}

/// Builder for [`Partitioning`].
///
/// # Examples
///
/// ```
/// use chop_core::spec::PartitioningBuilder;
/// use chop_dfg::benchmarks;
/// use chop_library::standard::table2_packages;
/// use chop_library::ChipSet;
///
/// let dfg = benchmarks::ar_lattice_filter();
/// let chips = ChipSet::uniform(table2_packages()[1].clone(), 3);
/// let p = PartitioningBuilder::new(dfg, chips)
///     .split_horizontal(3)
///     .build()?;
/// assert_eq!(p.partition_count(), 3);
/// // Default assignment: partition i on chip i.
/// assert_eq!(p.chip_of(chop_core::PartitionId::new(2)).index(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PartitioningBuilder {
    dfg: Dfg,
    chips: ChipSet,
    grouping: Option<Grouping>,
    partition_chip: Option<Vec<ChipId>>,
    memories: Vec<MemoryModule>,
    memory_assignment: Vec<MemoryAssignment>,
}

impl PartitioningBuilder {
    /// Starts a builder from a specification and a chip set.
    #[must_use]
    pub fn new(dfg: Dfg, chips: ChipSet) -> Self {
        Self {
            dfg,
            chips,
            grouping: None,
            partition_chip: None,
            memories: Vec::new(),
            memory_assignment: Vec::new(),
        }
    }

    /// Uses a single partition containing the whole specification.
    #[must_use]
    pub fn single_partition(mut self) -> Self {
        self.grouping = Some(Grouping::single(&self.dfg));
        self
    }

    /// Splits the graph into `k` topological slices of roughly equal size —
    /// the "horizontal cut" partitioning of the paper's experiments.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the node count.
    #[must_use]
    pub fn split_horizontal(mut self, k: usize) -> Self {
        self.grouping = Some(Grouping::horizontal(&self.dfg, k));
        self
    }

    /// Uses an explicit node grouping.
    #[must_use]
    pub fn with_grouping(mut self, grouping: Grouping) -> Self {
        self.grouping = Some(grouping);
        self
    }

    /// Assigns partitions to chips explicitly (defaults to partition *i* on
    /// chip *i mod chips*).
    #[must_use]
    pub fn with_chip_assignment(mut self, assignment: Vec<ChipId>) -> Self {
        self.partition_chip = Some(assignment);
        self
    }

    /// Declares a memory block and its assignment.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryModule, assignment: MemoryAssignment) -> Self {
        self.memories.push(memory);
        self.memory_assignment.push(assignment);
        self
    }

    /// Validates and builds the partitioning.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] or [`GroupingError`] (via [`BuildError`])
    /// describing the first problem found: empty chip set, bad chip ids,
    /// undeclared memories, placement mismatches or mutual data dependency
    /// between partitions.
    pub fn build(self) -> Result<Partitioning, BuildError> {
        if self.chips.is_empty() {
            return Err(SpecError::NoChips.into());
        }
        let grouping = match self.grouping {
            Some(g) => g,
            None => Grouping::single(&self.dfg),
        };
        grouping.check_no_mutual_dependency(&self.dfg)?;
        let k = grouping.group_count();
        let partition_chip = match self.partition_chip {
            Some(a) => {
                if a.len() != k {
                    return Err(SpecError::ChipAssignmentLength {
                        partitions: k,
                        assignments: a.len(),
                    }
                    .into());
                }
                a
            }
            None => (0..k).map(|i| ChipId::new((i % self.chips.len()) as u32)).collect(),
        };
        for &c in &partition_chip {
            if c.index() >= self.chips.len() {
                return Err(SpecError::UnknownChip(c).into());
            }
        }
        if self.memory_assignment.len() != self.memories.len() {
            return Err(SpecError::MemoryAssignmentLength {
                memories: self.memories.len(),
                assignments: self.memory_assignment.len(),
            }
            .into());
        }
        // Every memory the DFG touches must be declared.
        for (_, node) in self.dfg.nodes() {
            if let Some(m) = node.op().memory() {
                if m.index() as usize >= self.memories.len() {
                    return Err(SpecError::UndeclaredMemory(m.index()).into());
                }
            }
        }
        // Placement style must agree with the assignment.
        for (i, (mem, assign)) in self.memories.iter().zip(&self.memory_assignment).enumerate()
        {
            let id = MemoryId::new(i as u32);
            match (mem.placement(), assign) {
                (MemoryPlacement::OnChip, MemoryAssignment::OnChip(c)) => {
                    if c.index() >= self.chips.len() {
                        return Err(SpecError::MemoryOnUnknownChip(id, *c).into());
                    }
                }
                (MemoryPlacement::OffTheShelf, MemoryAssignment::External) => {}
                _ => return Err(SpecError::PlacementMismatch(id).into()),
            }
        }
        Ok(Partitioning {
            dfg: self.dfg,
            grouping,
            chips: self.chips,
            partition_chip,
            memories: self.memories,
            memory_assignment: self.memory_assignment,
        })
    }
}

/// Error from [`PartitioningBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A structural specification error.
    Spec(SpecError),
    /// A grouping error (mutual dependency, empty group…).
    Grouping(GroupingError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Spec(e) => e.fmt(f),
            BuildError::Grouping(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SpecError> for BuildError {
    fn from(e: SpecError) -> Self {
        BuildError::Spec(e)
    }
}

impl From<GroupingError> for BuildError {
    fn from(e: GroupingError) -> Self {
        BuildError::Grouping(e)
    }
}

#[cfg(test)]
mod tests {
    use chop_dfg::benchmarks;
    use chop_dfg::grouping::cut_values;
    use chop_library::standard::{example_off_shelf_ram, example_on_chip_ram, table2_packages};

    use super::*;

    fn chips(n: usize) -> ChipSet {
        ChipSet::uniform(table2_packages()[1].clone(), n)
    }

    #[test]
    fn build_default_single_partition() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(1))
            .build()
            .unwrap();
        assert_eq!(p.partition_count(), 1);
        assert_eq!(p.partitions_on(ChipId::new(0)).len(), 1);
    }

    #[test]
    fn empty_chipset_rejected() {
        let err =
            PartitioningBuilder::new(benchmarks::diffeq(), ChipSet::new()).build().unwrap_err();
        assert_eq!(err, BuildError::Spec(SpecError::NoChips));
    }

    #[test]
    fn chip_assignment_length_checked() {
        let err = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .with_chip_assignment(vec![ChipId::new(0)])
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Spec(SpecError::ChipAssignmentLength { .. })));
    }

    #[test]
    fn unknown_chip_rejected() {
        let err = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(1))
            .split_horizontal(2)
            .with_chip_assignment(vec![ChipId::new(0), ChipId::new(7)])
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Spec(SpecError::UnknownChip(_))));
    }

    #[test]
    fn two_partitions_share_a_chip() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(1))
            .split_horizontal(2)
            .with_chip_assignment(vec![ChipId::new(0), ChipId::new(0)])
            .build()
            .unwrap();
        assert_eq!(p.partitions_on(ChipId::new(0)).len(), 2);
    }

    #[test]
    fn undeclared_memory_rejected() {
        use chop_dfg::{DfgBuilder, MemoryRef, Operation};
        use chop_stat::units::Bits;
        let mut b = DfgBuilder::new();
        let w = Bits::new(16);
        let i = b.node(Operation::Input, w);
        let r = b.node(Operation::MemRead(MemoryRef::new(0)), w);
        b.connect(i, r).unwrap();
        let o = b.node(Operation::Output, w);
        b.connect(r, o).unwrap();
        let g = b.build().unwrap();
        let err = PartitioningBuilder::new(g, chips(1)).build().unwrap_err();
        assert!(matches!(err, BuildError::Spec(SpecError::UndeclaredMemory(0))));
    }

    #[test]
    fn placement_mismatch_rejected() {
        let err = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(1))
            .with_memory(example_on_chip_ram(), MemoryAssignment::External)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Spec(SpecError::PlacementMismatch(_))));
    }

    #[test]
    fn off_the_shelf_memory_accepted() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(1))
            .with_memory(example_off_shelf_ram(), MemoryAssignment::External)
            .build()
            .unwrap();
        assert_eq!(p.memories().len(), 1);
        assert_eq!(p.memory_assignment(MemoryId::new(0)), MemoryAssignment::External);
    }

    #[test]
    fn partition_dfg_is_predictable() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .build()
            .unwrap();
        for pid in p.partition_ids() {
            let sub = p.partition_dfg(pid);
            assert!(sub.validate().is_ok());
        }
    }

    #[test]
    fn inter_partition_cuts_exclude_constants() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .build()
            .unwrap();
        let filtered = p.inter_partition_cuts();
        let raw = cut_values(p.dfg(), p.grouping());
        let f_bits: u64 = filtered.iter().map(|c| c.bits.value()).sum();
        let r_bits: u64 = raw.iter().map(|c| c.bits.value()).sum();
        assert!(f_bits <= r_bits);
    }

    #[test]
    fn node_move_roundtrip() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .build()
            .unwrap();
        let node = p.grouping().members(0)[0];
        // Moving most nodes forward violates nothing structural; if it
        // introduces mutual dependency the API must say so.
        match p.with_node_moved(node, PartitionId::new(1)) {
            Ok(moved) => assert_eq!(moved.grouping().group_of(node), 1),
            Err(e) => assert!(matches!(e, GroupingError::MutualDependency(_, _))),
        }
    }

    #[test]
    fn nodes_move_atomically_with_one_final_validation() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .build()
            .unwrap();
        // Swapping two whole partitions transits through states that are
        // individually invalid (one partition transiently empty); the
        // atomic form validates only the final grouping.
        let back: Vec<_> = p
            .grouping()
            .members(1)
            .into_iter()
            .map(|n| (n, PartitionId::new(0)))
            .chain(p.grouping().members(0).into_iter().map(|n| (n, PartitionId::new(1))))
            .collect();
        let swapped = p.with_nodes_moved(&back);
        match swapped {
            Ok(s) => {
                assert_eq!(s.partition_count(), 2);
                assert!(s.validate().is_ok());
            }
            Err(e) => assert!(matches!(e, GroupingError::MutualDependency(_, _))),
        }
        // A final state that empties a partition is still rejected.
        let drain: Vec<_> =
            p.grouping().members(0).into_iter().map(|n| (n, PartitionId::new(1))).collect();
        assert!(matches!(p.with_nodes_moved(&drain), Err(GroupingError::EmptyGroup(0))));
        // An out-of-range target names the offending node.
        let node = p.grouping().members(0)[0];
        assert!(matches!(
            p.with_nodes_moved(&[(node, PartitionId::new(9))]),
            Err(GroupingError::GroupOutOfRange { .. })
        ));
    }

    #[test]
    fn built_partitionings_revalidate() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .with_memory(example_off_shelf_ram(), MemoryAssignment::External)
            .build()
            .unwrap();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn invalid_constraint_display_names_field() {
        let e = SpecError::InvalidConstraint("performance");
        assert!(e.to_string().contains("performance"));
    }

    #[test]
    fn chip_set_swap() {
        let p = PartitioningBuilder::new(benchmarks::ar_lattice_filter(), chips(2))
            .split_horizontal(2)
            .build()
            .unwrap();
        let smaller = ChipSet::uniform(table2_packages()[0].clone(), 2);
        let swapped = p.with_chip_set(smaller).unwrap();
        assert_eq!(swapped.chips().chip(ChipId::new(0)).pins(), 64);
        assert!(p.with_chip_set(ChipSet::new()).is_err());
        let too_few = ChipSet::uniform(table2_packages()[0].clone(), 1);
        assert!(p.with_chip_set(too_few).is_err());
    }
}
