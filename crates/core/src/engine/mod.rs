//! The staged exploration engine behind [`Session::explore`].
//!
//! [`Session::explore`] used to be a monolith: predict every partition,
//! then walk combinations one at a time on one thread. This module splits
//! the flow into explicit stages, each with its own instrumentation:
//!
//! 1. **predict** ([`predict`]) — per-partition BAD prediction with
//!    level-1 pruning, memoized in the session's content-addressed
//!    [`PredictionCache`](crate::cache::PredictionCache) and fanned across
//!    `jobs` scoped worker threads;
//! 2. **search** ([`crate::heuristics`]) — heuristic E or I generates
//!    candidate combinations and hands them in canonical-order batches to
//!    a [`ScoreBatch`](crate::heuristics::ScoreBatch) scorer;
//! 3. **integrate** ([`scorer`]) — each batch is evaluated through
//!    [`IntegrationContext::evaluate`](crate::IntegrationContext::evaluate),
//!    in parallel when `jobs > 1`, with results merged back in candidate
//!    order;
//! 4. **feasibility** — feasible combinations are filtered down to the
//!    non-inferior front.
//!
//! # Determinism
//!
//! The engine guarantees that [`SearchOutcome::digest`](crate::SearchOutcome::digest)
//! is identical for every `jobs` value: candidate generation and result
//! folding are single-threaded and canonical; only the embarrassingly
//! parallel scoring in between fans out, and its results are merged by
//! candidate index, never by completion order. Budget accounting replays
//! the exact serial semantics during the fold. The only permitted
//! divergence is *wall-clock* truncation (a deadline trips at different
//! points depending on machine load) and the timing spans of the trace —
//! both are excluded from the digest.
//!
//! [`Session::explore`]: crate::Session::explore

pub(crate) mod predict;
pub(crate) mod scorer;
pub mod trace;

use std::time::Instant;

use crate::budget::{BudgetTimer, Completion};
use crate::error::ChopError;
use crate::explorer::{Heuristic, SearchOutcome, Session};
use crate::heuristics::{self, HeuristicResult};
use crate::integration::IntegrationContext;

use self::scorer::BatchScorer;
use self::trace::TraceRecorder;

/// Runs the full staged pipeline for one session (see the module docs).
pub(crate) fn explore(
    session: &Session,
    requested: Heuristic,
) -> Result<SearchOutcome, ChopError> {
    let timer = BudgetTimer::start(session.budget);
    let trace = TraceRecorder::new(session.jobs);
    let cache_before = session.cache.stats();

    let predicted = predict::predict_stage(session, &timer, &trace)?;
    if let Some(status) = predicted.truncated {
        return Ok(SearchOutcome {
            heuristic: requested,
            feasible: Vec::new(),
            trials: 0,
            feasible_trials: 0,
            prediction_stats: predicted.stats,
            elapsed: timer.elapsed(),
            points: Vec::new(),
            completion: status,
            degraded: false,
            predictions: predicted.lists,
            trace: trace.snapshot(),
            cache: session.cache.stats().since(&cache_before),
        });
    }

    let ctx = IntegrationContext::new(
        &session.partitioning,
        &session.library,
        session.clocks,
        session.params,
        session.criteria,
        session.constraints,
    )
    .with_testability(session.testability);

    let mut effective = requested;
    let mut degraded = false;
    if requested == Heuristic::Enumeration {
        let combinations = predicted_combinations(&predicted.lists);
        if session.budget.should_degrade(combinations) {
            effective = Heuristic::Iterative;
            degraded = true;
        }
    }

    let scorer = BatchScorer {
        ctx: &ctx,
        lists: &predicted.lists,
        jobs: session.jobs,
        timer: &timer,
        trace: &trace,
    };
    let search_started = Instant::now();
    let result: HeuristicResult = match effective {
        Heuristic::Enumeration => heuristics::enumeration::run(
            &ctx,
            &predicted.lists,
            session.prune,
            session.keep_all,
            session.branch_and_bound,
            &timer,
            &scorer,
            &trace,
        )?,
        Heuristic::Iterative => heuristics::iterative::run(
            &ctx,
            &predicted.lists,
            session.clocks.main_cycle(),
            session.keep_all,
            &timer,
            &scorer,
            &trace,
        )?,
    };
    trace.add_search(search_started.elapsed());

    let completion = if result.completion.is_truncated() {
        result.completion
    } else if degraded {
        Completion::DegradedToIterative
    } else {
        Completion::Complete
    };
    Ok(SearchOutcome {
        heuristic: effective,
        feasible: result.feasible,
        trials: result.trials,
        feasible_trials: result.feasible_trials,
        prediction_stats: predicted.stats,
        elapsed: timer.elapsed(),
        points: result.points,
        completion,
        degraded,
        predictions: predicted.lists,
        trace: trace.snapshot(),
        cache: session.cache.stats().since(&cache_before),
    })
}

/// Heuristic E's search-space size: the product of surviving per-partition
/// prediction counts, saturating at `u128::MAX`.
pub(crate) fn predicted_combinations(
    lists: &[std::sync::Arc<[chop_bad::PredictedDesign]>],
) -> u128 {
    lists
        .iter()
        .try_fold(1u128, |acc, list| acc.checked_mul(list.len() as u128))
        .unwrap_or(u128::MAX)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
