//! Stage 1: cached, parallel per-partition prediction with level-1 pruning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use chop_bad::prune::{prune, PredictionStats};
use chop_bad::{AllocationSweep, DesignStyle, OperationTiming};
use chop_bad::{PartitionEnvelope, PredictError, PredictedDesign, Predictor};
use chop_dfg::hash::{structural_hash, StableHasher};

use crate::budget::{BudgetTimer, Completion};
use crate::engine::panic_message;
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::explorer::Session;
use crate::spec::PartitionId;

/// What the prediction stage hands to the search stage.
pub(crate) struct PredictOutput {
    /// Surviving per-partition design lists (shared; a cache hit aliases
    /// the cached allocation instead of re-predicting).
    pub lists: Vec<Arc<[PredictedDesign]>>,
    /// Table 3/5 statistics per partition.
    pub stats: Vec<PredictionStats>,
    /// `Some` when the deadline tripped mid-sweep; `lists`/`stats` then
    /// hold the completed prefix, exactly as a serial sweep would.
    pub truncated: Option<Completion>,
}

type Slot = Option<Result<(Arc<[PredictedDesign]>, PredictionStats), ChopError>>;

/// Runs (and wall-clock-times) the prediction stage.
pub(crate) fn predict_stage(
    session: &Session,
    timer: &BudgetTimer,
    trace: &TraceRecorder,
) -> Result<PredictOutput, ChopError> {
    let started = Instant::now();
    let output = run_stage(session, timer, trace);
    trace.add_predict(started.elapsed());
    output
}

fn run_stage(
    session: &Session,
    timer: &BudgetTimer,
    trace: &TraceRecorder,
) -> Result<PredictOutput, ChopError> {
    let predictor =
        Predictor::new(session.library.clone(), session.clocks, session.style, session.params);
    let fingerprint = config_fingerprint(session);
    let ids: Vec<PartitionId> = session.partitioning.partition_ids().collect();
    let mut slots: Vec<Slot> = Vec::with_capacity(ids.len());
    slots.resize_with(ids.len(), || None);
    let jobs = session.jobs.max(1).min(ids.len().max(1));
    if jobs <= 1 {
        predict_run(session, &predictor, fingerprint, timer, trace, &mut slots, &ids);
    } else {
        let chunk = ids.len().div_ceil(jobs);
        thread::scope(|scope| {
            for (slot_chunk, id_chunk) in slots.chunks_mut(chunk).zip(ids.chunks(chunk)) {
                let predictor = &predictor;
                scope.spawn(move || {
                    predict_run(
                        session,
                        predictor,
                        fingerprint,
                        timer,
                        trace,
                        slot_chunk,
                        id_chunk,
                    );
                });
            }
        });
    }
    // Canonical-order merge: the completed prefix wins and the first error
    // in partition order is the run's error, identical to a serial sweep.
    let mut lists = Vec::with_capacity(ids.len());
    let mut stats = Vec::with_capacity(ids.len());
    for slot in slots {
        match slot {
            Some(Ok((list, stat))) => {
                lists.push(list);
                stats.push(stat);
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Ok(PredictOutput {
                    lists,
                    stats,
                    truncated: Some(Completion::TruncatedDeadline),
                })
            }
        }
    }
    Ok(PredictOutput { lists, stats, truncated: None })
}

/// Fills `slots` for `ids` in order, stopping at the deadline or at the
/// first error (later slots stay `None`; after an error the canonical
/// merge never reaches them).
fn predict_run(
    session: &Session,
    predictor: &Predictor,
    fingerprint: u64,
    timer: &BudgetTimer,
    trace: &TraceRecorder,
    slots: &mut [Slot],
    ids: &[PartitionId],
) {
    for (slot, &p) in slots.iter_mut().zip(ids) {
        if timer.deadline_exceeded() {
            return;
        }
        let outcome = predict_one(session, predictor, fingerprint, p, trace);
        let failed = outcome.is_err();
        *slot = Some(outcome);
        if failed {
            return;
        }
    }
}

/// Predicts one partition: cache lookup first, then BAD (panic-isolated)
/// plus level-1 pruning, seeding the cache on the way out.
fn predict_one(
    session: &Session,
    predictor: &Predictor,
    fingerprint: u64,
    p: PartitionId,
    trace: &TraceRecorder,
) -> Result<(Arc<[PredictedDesign]>, PredictionStats), ChopError> {
    let sub = session.partitioning.partition_dfg(p);
    let chip = session.partitioning.chips().chip(session.partitioning.chip_of(p));
    // Fault plans script per-call behavior, so a fault-injected session
    // must neither serve nor seed memoized predictions. A disabled cache
    // (capacity 0) skips memoization entirely — including the content
    // fingerprint, which is pure overhead when nothing can be stored.
    #[cfg(feature = "fault-inject")]
    let cacheable = session.fault_plan.is_none() && session.cache.is_enabled();
    #[cfg(not(feature = "fault-inject"))]
    let cacheable = session.cache.is_enabled();
    let key = cacheable.then(|| {
        let mut h = StableHasher::new();
        h.write_u64(fingerprint);
        h.write_u64(structural_hash(&sub));
        h.write_f64(chip.usable_area().value());
        h.finish()
    });
    if let Some(key) = key {
        if let Some((designs, stats)) = session.cache.get(key) {
            trace.count_cache_hit();
            return Ok((designs, stats));
        }
        trace.count_cache_miss();
    }
    trace.count_predictor_call();
    // A panic anywhere in BAD poisons only this partition: it is caught
    // here and reported as a typed Predict error.
    let predicted = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &session.fault_plan {
            plan.before_predict(p.index());
        }
        #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
        let mut designs = predictor.predict(&sub)?;
        // Post-prediction corruption stays inside the guard: a poisoned
        // estimate that trips a numeric invariant (e.g. `Estimate`
        // rejecting NaN) is contained the same way.
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &session.fault_plan {
            plan.corrupt(p.index(), &mut designs);
        }
        Ok(designs)
    }));
    let designs = match predicted {
        Ok(Ok(designs)) => designs,
        Ok(Err(source)) => return Err(ChopError::Predict { partition: p.index(), source }),
        Err(payload) => {
            return Err(ChopError::Predict {
                partition: p.index(),
                source: PredictError::Panicked(panic_message(payload.as_ref())),
            })
        }
    };
    let envelope = PartitionEnvelope::new(
        chip.usable_area(),
        session.constraints.performance(),
        session.constraints.delay(),
    )
    .with_thresholds(
        session.criteria.area,
        session.criteria.performance,
        session.criteria.delay,
    );
    let prune_started = Instant::now();
    let (list, stat): (Arc<[PredictedDesign]>, PredictionStats) = if session.prune {
        let (kept, s) = prune(designs, &envelope, &session.clocks);
        (kept.into(), s)
    } else {
        // Statistics still reflect what pruning *would* keep.
        let total = designs.len();
        let feasible = designs.iter().filter(|d| envelope.admits(d, &session.clocks)).count();
        (designs.into(), PredictionStats { total, feasible, non_inferior: total })
    };
    trace.add_prune_l1(prune_started.elapsed());
    if let Some(key) = key {
        session.cache.insert(key, Arc::clone(&list), stat);
    }
    Ok((list, stat))
}

/// Hashes everything — besides the partition's own DFG and chip — that the
/// prediction and its level-1 pruning depend on: clock configuration,
/// architecture style, predictor parameters, the pruning envelope's
/// constraint values and probability thresholds, and the prune switch.
///
/// Deliberately excluded: the component library (fixed at session
/// construction and shared, never replaced, by every session family that
/// shares the cache), the power limit and power threshold (power enters at
/// system integration, not per-partition prediction), and testability
/// overheads (likewise integration-only).
fn config_fingerprint(session: &Session) -> u64 {
    let mut h = StableHasher::new();
    let clocks = &session.clocks;
    h.write_f64(clocks.main_cycle().value());
    h.write_u32(clocks.datapath_multiplier());
    h.write_u32(clocks.transfer_multiplier());
    h.write_u64(match session.style.timing() {
        OperationTiming::SingleCycle => 1,
        OperationTiming::MultiCycle => 2,
    });
    for style in session.style.styles() {
        h.write_u64(match style {
            DesignStyle::Pipelined => 1,
            DesignStyle::NonPipelined => 2,
        });
    }
    let params = &session.params;
    h.write_f64(params.area_spread_below);
    h.write_f64(params.area_spread_above);
    h.write_f64(params.delay_spread_below);
    h.write_f64(params.delay_spread_above);
    h.write_f64(params.wiring_factor);
    h.write_f64(params.pla_cell_area);
    h.write_f64(params.pla_base_delay);
    h.write_f64(params.pla_delay_per_line);
    h.write_f64(params.wiring_delay_factor);
    h.write_u64(params.max_units_per_class as u64);
    h.write_u64(match params.allocation_sweep {
        AllocationSweep::Exhaustive => 1,
        AllocationSweep::PowersOfTwo => 2,
    });
    h.write_f64(session.constraints.performance().value());
    h.write_f64(session.constraints.delay().value());
    for threshold in
        [session.criteria.area, session.criteria.performance, session.criteria.delay]
    {
        h.write_f64(threshold.probability().value());
    }
    h.write_u64(u64::from(session.prune));
    h.finish()
}
