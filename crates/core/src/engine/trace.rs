//! Lightweight instrumentation of the exploration pipeline.
//!
//! The engine threads a [`TraceRecorder`] (lock-free atomic counters)
//! through every stage and worker; at the end of a run the recorder is
//! frozen into the plain-data [`ExploreTrace`] carried by
//! [`SearchOutcome`](crate::SearchOutcome) and printed by the CLI under
//! `--stats` / `--stats-json`.
//!
//! Span semantics: `predict_ns` and `search_ns` are **wall-clock** spans
//! of their stages; `prune_l1_ns`, `integrate_ns` and `feasibility_ns` are
//! **CPU sums** accumulated across worker threads, so with `jobs > 1`
//! `integrate_ns` routinely exceeds `search_ns` — that surplus *is* the
//! parallel speed-up. Timing fields are measurements, not results: they
//! differ run to run and are deliberately excluded from
//! [`SearchOutcome::digest`](crate::SearchOutcome::digest).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-run pipeline counters and stage spans (see the [module docs](self)
/// for span semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreTrace {
    /// Wall-clock span of the prediction stage (cache lookups, predictor
    /// calls and level-1 pruning, however many workers ran them).
    pub predict_ns: u64,
    /// CPU nanoseconds inside level-1 pruning, summed across workers.
    pub prune_l1_ns: u64,
    /// Wall-clock span of the combination-search stage.
    pub search_ns: u64,
    /// CPU nanoseconds inside `IntegrationContext::evaluate`, summed
    /// across workers.
    pub integrate_ns: u64,
    /// CPU nanoseconds filtering feasible combinations down to the
    /// non-inferior front.
    pub feasibility_ns: u64,
    /// BAD predictor invocations (= cache misses that reached BAD).
    pub predictor_calls: u64,
    /// Prediction-cache hits.
    pub cache_hits: u64,
    /// Prediction-cache misses.
    pub cache_misses: u64,
    /// `IntegrationContext::evaluate` calls.
    pub evaluations: u64,
    /// Combinations rejected by the cheap level-2 area pre-check.
    pub quick_rejects: u64,
    /// Subtrees (digit-value cones of the odometer) eliminated by the
    /// branch-and-bound lower bounds without visiting their combinations.
    pub subtrees_skipped: u64,
    /// Combinations contained in the skipped subtrees — never generated,
    /// so `trials + combinations_skipped` equals the full cross-product
    /// size on a run that completes.
    pub combinations_skipped: u64,
    /// Worker threads the engine was allowed to use.
    pub jobs: u64,
}

impl ExploreTrace {
    /// Renders the trace as a single JSON object (hand-rolled — the
    /// vendored serde has no JSON backend).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"predict_ns\":{},\"prune_l1_ns\":{},\"search_ns\":{},\"integrate_ns\":{},\
             \"feasibility_ns\":{},\"predictor_calls\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"evaluations\":{},\"quick_rejects\":{},\
             \"subtrees_skipped\":{},\"combinations_skipped\":{},\"jobs\":{}}}",
            self.predict_ns,
            self.prune_l1_ns,
            self.search_ns,
            self.integrate_ns,
            self.feasibility_ns,
            self.predictor_calls,
            self.cache_hits,
            self.cache_misses,
            self.evaluations,
            self.quick_rejects,
            self.subtrees_skipped,
            self.combinations_skipped,
            self.jobs,
        )
    }
}

/// The concurrent accumulator behind [`ExploreTrace`].
///
/// All methods take `&self` and are safe to call from scoped worker
/// threads; relaxed ordering suffices because the recorder is only read
/// after the workers have been joined.
#[derive(Debug, Default)]
pub(crate) struct TraceRecorder {
    predict_ns: AtomicU64,
    prune_l1_ns: AtomicU64,
    search_ns: AtomicU64,
    integrate_ns: AtomicU64,
    feasibility_ns: AtomicU64,
    predictor_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evaluations: AtomicU64,
    quick_rejects: AtomicU64,
    subtrees_skipped: AtomicU64,
    combinations_skipped: AtomicU64,
    jobs: u64,
}

/// Saturating `Duration` → `u64` nanoseconds.
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl TraceRecorder {
    /// Creates a recorder for a run allowed `jobs` worker threads.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs as u64, ..Self::default() }
    }

    /// Records the wall-clock span of the prediction stage.
    pub fn add_predict(&self, d: Duration) {
        self.predict_ns.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Accumulates time spent in level-1 pruning.
    pub fn add_prune_l1(&self, d: Duration) {
        self.prune_l1_ns.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Records the wall-clock span of the search stage.
    pub fn add_search(&self, d: Duration) {
        self.search_ns.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Accumulates time spent in `IntegrationContext::evaluate`.
    pub fn add_integrate(&self, d: Duration) {
        self.integrate_ns.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Accumulates time spent in non-inferiority filtering.
    pub fn add_feasibility(&self, d: Duration) {
        self.feasibility_ns.fetch_add(ns(d), Ordering::Relaxed);
    }

    /// Counts one BAD predictor invocation.
    pub fn count_predictor_call(&self) {
        self.predictor_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one prediction-cache hit.
    pub fn count_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one prediction-cache miss.
    pub fn count_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one combination evaluation.
    pub fn count_evaluation(&self) {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one cheap level-2 area rejection.
    pub fn count_quick_reject(&self) {
        self.quick_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Flushes a search's branch-and-bound skip tallies (called once per
    /// run, after the walk finishes).
    pub fn add_skips(&self, subtrees: u64, combinations: u64) {
        self.subtrees_skipped.fetch_add(subtrees, Ordering::Relaxed);
        self.combinations_skipped.fetch_add(combinations, Ordering::Relaxed);
    }

    /// Freezes the counters into a plain [`ExploreTrace`].
    #[must_use]
    pub fn snapshot(&self) -> ExploreTrace {
        ExploreTrace {
            predict_ns: self.predict_ns.load(Ordering::Relaxed),
            prune_l1_ns: self.prune_l1_ns.load(Ordering::Relaxed),
            search_ns: self.search_ns.load(Ordering::Relaxed),
            integrate_ns: self.integrate_ns.load(Ordering::Relaxed),
            feasibility_ns: self.feasibility_ns.load(Ordering::Relaxed),
            predictor_calls: self.predictor_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            quick_rejects: self.quick_rejects.load(Ordering::Relaxed),
            subtrees_skipped: self.subtrees_skipped.load(Ordering::Relaxed),
            combinations_skipped: self.combinations_skipped.load(Ordering::Relaxed),
            jobs: self.jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let r = TraceRecorder::new(4);
        r.add_predict(Duration::from_nanos(10));
        r.add_predict(Duration::from_nanos(5));
        r.count_cache_hit();
        r.count_evaluation();
        r.count_evaluation();
        r.add_skips(3, 250);
        let t = r.snapshot();
        assert_eq!(t.predict_ns, 15);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.evaluations, 2);
        assert_eq!(t.subtrees_skipped, 3);
        assert_eq!(t.combinations_skipped, 250);
        assert_eq!(t.jobs, 4);
    }

    #[test]
    fn json_has_every_field() {
        let t = ExploreTrace { jobs: 2, evaluations: 7, ..Default::default() };
        let json = t.to_json();
        for key in [
            "predict_ns",
            "prune_l1_ns",
            "search_ns",
            "integrate_ns",
            "feasibility_ns",
            "predictor_calls",
            "cache_hits",
            "cache_misses",
            "evaluations",
            "quick_rejects",
            "subtrees_skipped",
            "combinations_skipped",
            "jobs",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert!(json.contains("\"evaluations\":7"));
    }
}
