//! Stage 3: parallel batch scoring of candidate combinations.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use chop_bad::PredictedDesign;
use chop_stat::units::Cycles;

use crate::budget::BudgetTimer;
use crate::engine::panic_message;
use crate::engine::trace::TraceRecorder;
use crate::error::ChopError;
use crate::heuristics::{Candidate, ScoreBatch, ScoreSlot};
use crate::integration::IntegrationContext;

/// The engine's [`ScoreBatch`] implementation: evaluates a batch across up
/// to `jobs` scoped worker threads and returns the slots in candidate
/// order, so the single-threaded heuristics fold identical results for
/// every worker count. Each candidate is checked against the wall-clock
/// deadline right before evaluation; abandoned candidates stay `None` and
/// the heuristics' canonical fold turns the first `None` into deadline
/// truncation.
///
/// An evaluation panic is contained per candidate and surfaced as
/// [`ChopError::EvalPanicked`], so one poisoned combination cannot take
/// down sibling workers or the session.
pub(crate) struct BatchScorer<'e> {
    /// Integration context shared by every worker.
    pub ctx: &'e IntegrationContext<'e>,
    /// Per-partition prediction lists the candidate indices resolve into.
    pub lists: &'e [Arc<[PredictedDesign]>],
    /// Worker-thread allowance.
    pub jobs: usize,
    /// The run's budget timer (deadline polling inside workers).
    pub timer: &'e BudgetTimer,
    /// The run's trace recorder (evaluation count, integrate span).
    pub trace: &'e TraceRecorder,
}

impl BatchScorer<'_> {
    fn eval_one(&self, candidate: &Candidate) -> ScoreSlot {
        if self.timer.deadline_exceeded() {
            return None;
        }
        self.trace.count_evaluation();
        let started = Instant::now();
        // Index-slice evaluation: no per-candidate selection Vec.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.ctx.evaluate_indexed(self.lists, &candidate.indices, Cycles::new(candidate.ii))
        }));
        self.trace.add_integrate(started.elapsed());
        Some(match outcome {
            Ok(result) => result,
            Err(payload) => {
                Err(ChopError::EvalPanicked { message: panic_message(payload.as_ref()) })
            }
        })
    }
}

impl ScoreBatch for BatchScorer<'_> {
    fn score(&self, batch: &[Candidate]) -> Vec<ScoreSlot> {
        let mut slots: Vec<ScoreSlot> = Vec::with_capacity(batch.len());
        slots.resize_with(batch.len(), || None);
        let jobs = self.jobs.max(1).min(batch.len());
        if jobs <= 1 {
            for (slot, candidate) in slots.iter_mut().zip(batch) {
                *slot = self.eval_one(candidate);
            }
            return slots;
        }
        // Contiguous chunking keeps the slot↔candidate pairing trivially
        // index-aligned; workers never share a slot.
        let chunk = batch.len().div_ceil(jobs);
        thread::scope(|scope| {
            for (slot_chunk, cand_chunk) in slots.chunks_mut(chunk).zip(batch.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, candidate) in slot_chunk.iter_mut().zip(cand_chunk) {
                        *slot = self.eval_one(candidate);
                    }
                });
            }
        });
        slots
    }
}
