//! Canned configurations of the paper's two experiments (§3).
//!
//! Both experiments partition the AR lattice filter (Fig. 6) with the
//! Table 1 library and Table 2 packages, main clock 300 ns, feasibility
//! criteria 100 %/100 %/80 %:
//!
//! * **Experiment 1** — single-cycle operations, datapath clock 10× the
//!   main clock, transfer clock = main clock, performance = delay =
//!   30 000 ns; partitionings of 1, 2 and 3 partitions, one chip each.
//! * **Experiment 2** — multi-cycle operations, datapath and transfer
//!   clocks = main clock, performance tightened to 20 000 ns.

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_dfg::benchmarks;
use chop_library::standard::{table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

use crate::explorer::Session;
use crate::feasibility::Constraints;
use crate::spec::{BuildError, PartitioningBuilder};

/// Configuration of one experiment-1 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exp1Config {
    /// Number of partitions (1–3 in the paper), one chip per partition.
    pub partitions: usize,
    /// Table 2 package index (0 = 64-pin, 1 = 84-pin).
    pub package: usize,
}

/// Configuration of one experiment-2 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exp2Config {
    /// Number of partitions (1–3 in the paper), one chip per partition.
    pub partitions: usize,
    /// Table 2 package index (the paper uses only package 2 here).
    pub package: usize,
}

/// The main clock period shared by both experiments.
#[must_use]
pub fn main_clock() -> Nanos {
    Nanos::new(300.0)
}

/// Builds the experiment-1 session for a given partition count and
/// package.
///
/// # Errors
///
/// Returns a [`BuildError`] if the partitioning cannot be constructed
/// (out-of-range package index panics instead, as it is a caller bug).
///
/// # Panics
///
/// Panics if `config.package` is not 0 or 1.
pub fn experiment1_session(config: &Exp1Config) -> Result<Session, BuildError> {
    let packages = table2_packages();
    let pkg = packages[config.package].clone();
    let dfg = benchmarks::ar_lattice_filter();
    let chips = ChipSet::uniform(pkg, config.partitions);
    let partitioning =
        PartitioningBuilder::new(dfg, chips).split_horizontal(config.partitions).build()?;
    Ok(Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(main_clock(), 10, 1).expect("valid clocks"),
        ArchitectureStyle::single_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
    ))
}

/// Builds the experiment-2 session: multi-cycle operations, datapath and
/// transfer clocks at the main clock, performance 20 000 ns and delay
/// 30 000 ns.
///
/// # Errors
///
/// Returns a [`BuildError`] if the partitioning cannot be constructed.
///
/// # Panics
///
/// Panics if `config.package` is not 0 or 1.
pub fn experiment2_session(config: &Exp2Config) -> Result<Session, BuildError> {
    let packages = table2_packages();
    let pkg = packages[config.package].clone();
    let dfg = benchmarks::ar_lattice_filter();
    let chips = ChipSet::uniform(pkg, config.partitions);
    let partitioning =
        PartitioningBuilder::new(dfg, chips).split_horizontal(config.partitions).build()?;
    Ok(Session::new(
        partitioning,
        table1_library(),
        ClockConfig::new(main_clock(), 1, 1).expect("valid clocks"),
        ArchitectureStyle::multi_cycle(),
        PredictorParams::default(),
        Constraints::new(Nanos::new(20_000.0), Nanos::new(30_000.0)),
    ))
}

#[cfg(test)]
mod tests {
    use crate::explorer::Heuristic;

    use super::*;

    #[test]
    fn experiment1_sessions_build_for_all_paper_rows() {
        for partitions in 1..=3 {
            for package in 0..=1 {
                let s = experiment1_session(&Exp1Config { partitions, package }).unwrap();
                assert_eq!(s.partitioning().partition_count(), partitions);
            }
        }
    }

    #[test]
    fn experiment2_constraint_is_tightened() {
        let s = experiment2_session(&Exp2Config { partitions: 1, package: 1 }).unwrap();
        assert_eq!(s.constraints().performance().value(), 20_000.0);
        assert_eq!(s.constraints().delay().value(), 30_000.0);
    }

    #[test]
    fn experiment1_single_partition_matches_table4_shape() {
        let s = experiment1_session(&Exp1Config { partitions: 1, package: 1 }).unwrap();
        let outcome = s.explore(Heuristic::Enumeration).unwrap();
        // Table 4 row 1: one feasible trial, II = 60 cycles, clock ≈ 312 ns.
        assert!(outcome.feasible_trials >= 1);
        let best = outcome
            .feasible
            .iter()
            .min_by_key(|f| f.system.initiation_interval.value())
            .unwrap();
        // Clock: main 300 ns plus a small transfer-path overhead.
        let clock = best.system.clock.likely();
        assert!((300.0..330.0).contains(&clock), "clock {clock} out of Table 4 range");
    }
}
