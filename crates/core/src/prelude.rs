//! The stable façade of `chop_core`, importable in one line.
//!
//! Everything a CHOP front end needs — building a tentative partitioning,
//! configuring a [`Session`], exploring, and reading the outcome — is
//! re-exported here. The `chop` CLI, the `chop-service` wire protocol and
//! every example import exclusively from this module; items *not*
//! re-exported here (engine plumbing, heuristic internals) are
//! implementation detail and may change between releases without notice.
//!
//! ```
//! use chop_core::prelude::*;
//! use chop_dfg::benchmarks;
//! use chop_library::standard::{table1_library, table2_packages};
//! use chop_library::ChipSet;
//! use chop_stat::units::Nanos;
//! # use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
//!
//! let partitioning = PartitioningBuilder::new(
//!     benchmarks::ar_lattice_filter(),
//!     ChipSet::uniform(table2_packages()[1].clone(), 2),
//! )
//! .split_horizontal(2)
//! .build()?;
//! let session = Session::new(
//!     partitioning,
//!     table1_library(),
//!     ClockConfig::new(Nanos::new(300.0), 10, 1)?,
//!     ArchitectureStyle::single_cycle(),
//!     PredictorParams::default(),
//!     Constraints::new(Nanos::new(30_000.0), Nanos::new(30_000.0)),
//! );
//! let outcome = session.explore(Heuristic::Iterative)?;
//! assert!(outcome.trials > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use crate::budget::{BudgetTimer, Completion, SearchBudget, DEFAULT_DEGRADE_THRESHOLD};
pub use crate::cache::snapshot::{
    load_snapshot, write_snapshot, SnapshotLoaded, SnapshotWritten,
};
pub use crate::cache::{
    recommended_shards, CacheStats, PredictionCache, DEFAULT_CACHE_CAPACITY,
    DEFAULT_CACHE_SHARDS,
};
pub use crate::engine::trace::ExploreTrace;
pub use crate::error::ChopError;
pub use crate::explorer::{
    DesignPoint, FeasibleImplementation, Heuristic, PartitionPredictions, SearchOutcome,
    Session,
};
#[cfg(feature = "fault-inject")]
pub use crate::fault::{AppendFault, FaultPlan, IoFaultPlan};
pub use crate::feasibility::{Constraints, FeasibilityCriteria, Verdict, Violation};
pub use crate::integration::{IntegrationContext, SystemPrediction, TransferModulePrediction};
pub use crate::optimize::{
    AppliedMove, MoveKind, ObjectiveWeights, OptimizeResult, OptimizeSpec,
};
pub use crate::spec::{
    BuildError, MemoryAssignment, PartitionId, Partitioning, PartitioningBuilder, SpecError,
};
pub use crate::testability::TestabilityOverhead;

// Designer-facing modules, re-exported so `prelude::*` users can reach
// `report::markdown`, `advise::improve_by_migration`, `tasks::create_tasks`,
// `transfer::pin_budgets`, `testability` presets, the `optimize` module
// itself and the experiment presets without a second `chop_core::` import
// path. The fault-injection module rides along under its feature flag.
#[cfg(feature = "fault-inject")]
pub use crate::fault;
pub use crate::{advise, experiments, optimize, report, spec, tasks, testability, transfer};
