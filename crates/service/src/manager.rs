//! Named-session bookkeeping and the request → core-API façade.
//!
//! A [`SessionManager`] owns every open [`Session`] behind one mutex and
//! threads a single shared [`PredictionCache`] through all of them, so
//! two sessions opened on the same spec (or a session re-explored after a
//! [`repartition`](SessionManager::repartition)) serve partition
//! predictions from each other's work — the cross-session cache hits the
//! `stats` response exposes.
//!
//! Locking discipline: the sessions map is locked only for bookkeeping.
//! [`explore`](SessionManager::explore) clones the session out of the map
//! (a cheap, `Arc`-sharing clone), runs the search **unlocked**, then
//! re-locks briefly to record the run summary — concurrent explores on
//! different (or the same) session never serialize on the manager.
//!
//! The manager is fully decoupled from connection I/O: it is called by
//! the reactor thread (cheap requests, answered inline) and by worker
//! threads (explores, handed back through the completion queue), and
//! never writes to a socket or blocks on a client. Lock order across the
//! serving stack is strictly `sessions → journal` (this module, see
//! below); the reactor and the completion queue each take their own
//! locks *after* all manager locks are released, so no cycle exists —
//! the doctrine is spelled out in DESIGN.md §13.
//!
//! # Durability and idempotency
//!
//! When built via [`SessionManager::recover`], every state-mutating
//! request (`open`, `repartition`, `apply_moves`, `set_constraints`,
//! `close`) is appended to a write-ahead [`Journal`] *before* it is
//! committed to the
//! sessions map — a crash between the two replays the mutation on
//! restart; a journal append failure refuses the mutation with a typed
//! `internal` error and leaves state untouched. The journal mutex is only
//! ever taken while already holding the sessions lock, so the two can
//! never deadlock. Explores are pure (re-running one reproduces the same
//! digest) and are never journaled.
//!
//! Requests tagged with a client `req_id` are answered from a bounded
//! per-session dedup window on retry: the recorded [`Response`] is
//! returned instead of re-applying the mutation, which is what makes
//! client-side retry-after-reconnect safe for non-idempotent requests.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use chop_bad::{ArchitectureStyle, ClockConfig, PredictorParams};
use chop_core::prelude::*;
use chop_dfg::parse::parse_dfg;
use chop_library::standard::{example_off_shelf_ram, table1_library, table2_packages};
use chop_library::ChipSet;
use chop_stat::units::Nanos;

use crate::journal::{Journal, JournalEntry};
use crate::protocol::{
    ErrorKind, ExploreParams, OpenParams, OptimizeParams, OptimizeSummary, Request, Response,
    RunSummary, ServiceError, PROTOCOL_VERSION,
};
use crate::replication::ReplEvent;

/// Most recent `req_id` outcomes remembered per session.
const DEDUP_PER_SESSION: usize = 32;
/// Sessions tracked in the dedup window before the oldest is evicted
/// (kept separate from the sessions map so a `close` outcome can still be
/// replayed to a retry).
const DEDUP_SESSIONS: usize = 256;

/// One managed session: the live core session plus its latest run.
struct Managed {
    session: Session,
    last_run: Option<RunSummary>,
    /// Monotonic id assigned at `open`. An unlocked exploration captures
    /// it alongside the session clone; the run summary is recorded only
    /// if the entry under this name still carries the same generation,
    /// so a close + reopen racing the search never inherits a stale run.
    generation: u64,
    /// The `open` parameters this session was built from — the genesis
    /// record a journal compaction snapshot starts the session with.
    genesis: OpenParams,
    /// The `req_id` the `open` carried, preserved through compaction so
    /// the idempotency window survives a restart.
    open_req_id: Option<String>,
    /// Net mutation history since `open` (repartitions and constraint
    /// changes, with their `req_id`s), in application order.
    mutations: Vec<JournalEntry>,
}

/// Bounded per-session memory of `req_id` → outcome, so a retried
/// mutation is answered from the recorded response instead of re-applied.
#[derive(Default)]
struct DedupWindow {
    windows: HashMap<String, VecDeque<(String, Response)>>,
    /// Session insertion order, for eviction.
    order: VecDeque<String>,
}

impl DedupWindow {
    fn lookup(&self, session: &str, req_id: &str) -> Option<Response> {
        self.windows
            .get(session)?
            .iter()
            .find(|(id, _)| id == req_id)
            .map(|(_, response)| response.clone())
    }

    fn record(&mut self, session: &str, req_id: &str, response: Response) {
        if !self.windows.contains_key(session) {
            if self.order.len() >= DEDUP_SESSIONS {
                if let Some(evicted) = self.order.pop_front() {
                    self.windows.remove(&evicted);
                }
            }
            self.order.push_back(session.to_owned());
            self.windows.insert(session.to_owned(), VecDeque::new());
        }
        let window = self.windows.get_mut(session).expect("window just ensured");
        if let Some(stale) = window.iter().position(|(id, _)| id == req_id) {
            window.remove(stale);
        }
        if window.len() >= DEDUP_PER_SESSION {
            window.pop_front();
        }
        window.push_back((req_id.to_owned(), response));
    }
}

/// What [`SessionManager::recover`] found and rebuilt from the journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions live after replay.
    pub sessions_restored: usize,
    /// Journal records replayed (including ones for since-closed sessions).
    pub records_replayed: usize,
    /// Torn or corrupt tail records skipped with a warning.
    pub records_skipped: usize,
}

/// Observer invoked with a one-line description of each role change.
type RoleHook = Box<dyn Fn(&str) + Send + Sync>;

/// Owns every named session and the cache they share.
pub struct SessionManager {
    cache: Arc<PredictionCache>,
    sessions: Mutex<HashMap<String, Managed>>,
    dedup: Mutex<DedupWindow>,
    /// The write-ahead log; `None` for a purely in-memory manager.
    /// Lock order: sessions → journal, never the reverse.
    journal: Option<Mutex<Journal>>,
    /// Gate on [`journal_append`](Self::journal_append): cleared while a
    /// replicated snapshot replays (the records are re-persisted wholesale
    /// by the compaction that follows), set everywhere else.
    journal_armed: AtomicBool,
    generations: AtomicU64,
    default_jobs: usize,
    /// Warm-standby mode: direct mutations are refused; state arrives
    /// over the replication stream until [`promote`](Self::promote).
    standby: AtomicBool,
    /// The cluster epoch: bumped by every promotion, adopted from
    /// higher-epoch peers, journaled as a `role_change` record so a
    /// restart replays the node back into its last role.
    epoch: AtomicU64,
    /// Set when the standby role was forced by fencing (a demoted
    /// ex-primary) rather than configured: mutations are refused with
    /// `fenced` instead of `standby`.
    fenced: AtomicBool,
    /// Best guess at the current primary's `host:port` — attached to
    /// `standby`/`fenced` refusals so clients can follow the redirect.
    primary_hint: Mutex<Option<String>>,
    /// This node's own dialable `host:port` (set after bind); carried on
    /// outgoing replication traffic so peers can find us back.
    advertised: Mutex<Option<String>>,
    /// The replication peer's address. Dynamic: hearing from a stale
    /// peer at a new address retargets the replicator to resync it.
    peer: Mutex<Option<String>>,
    /// Called with a one-line description on every role transition
    /// (promotion, fencing demotion) — the CLI wires its banner here.
    role_hook: Mutex<Option<RoleHook>>,
    /// Monotonic count of committed mutations — the position a
    /// replication stream ships records at. Advances only under the
    /// sessions lock, so emission order equals sequence order.
    repl_seq: AtomicU64,
    /// Highest replication sequence number this standby has applied or
    /// skipped; re-delivered records at or below it are acked, not
    /// re-applied.
    repl_high_water: AtomicU64,
    /// Where committed records are shipped, when a replicator is
    /// attached. Locked only while already holding the sessions lock.
    repl_sink: Mutex<Option<mpsc::Sender<ReplEvent>>>,
    /// Serializes replication applies against each other and against
    /// promotion, so a promote never interleaves a half-applied snapshot.
    repl_apply: Mutex<()>,
}

impl SessionManager {
    /// Creates an empty manager. `default_jobs` is the worker-thread count
    /// an `explore` uses when the request does not override it.
    #[must_use]
    pub fn new(default_jobs: usize) -> Self {
        Self::new_with_cache(
            default_jobs,
            Arc::new(PredictionCache::with_config(
                DEFAULT_CACHE_CAPACITY,
                recommended_shards(default_jobs),
            )),
        )
    }

    /// Creates an empty manager around an externally built prediction
    /// cache — how `chop serve` injects a snapshot-warmed or custom-
    /// sharded cache. Every session this manager opens (including
    /// sessions rebuilt by journal replay) shares `cache`.
    #[must_use]
    pub fn new_with_cache(default_jobs: usize, cache: Arc<PredictionCache>) -> Self {
        Self {
            cache,
            sessions: Mutex::new(HashMap::new()),
            dedup: Mutex::new(DedupWindow::default()),
            journal: None,
            journal_armed: AtomicBool::new(true),
            generations: AtomicU64::new(0),
            default_jobs: default_jobs.max(1),
            standby: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            fenced: AtomicBool::new(false),
            primary_hint: Mutex::new(None),
            advertised: Mutex::new(None),
            peer: Mutex::new(None),
            role_hook: Mutex::new(None),
            repl_seq: AtomicU64::new(0),
            repl_high_water: AtomicU64::new(0),
            repl_sink: Mutex::new(None),
            repl_apply: Mutex::new(()),
        }
    }

    /// Opens (or creates) the write-ahead journal under `state_dir`,
    /// replays every surviving record to rebuild the sessions it
    /// describes — torn or corrupt tail records are skipped with a
    /// warning, never a panic — and returns the recovered manager with
    /// journaling armed for subsequent mutations. Replay also re-records
    /// each journaled `req_id` outcome, so the idempotency window
    /// survives the restart.
    ///
    /// # Errors
    ///
    /// Real I/O failures opening the journal only; nothing *in* the
    /// journal can fail recovery.
    pub fn recover(
        default_jobs: usize,
        state_dir: &Path,
        snapshot_every: usize,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        Self::recover_with_cache(
            default_jobs,
            state_dir,
            snapshot_every,
            Arc::new(PredictionCache::with_config(
                DEFAULT_CACHE_CAPACITY,
                recommended_shards(default_jobs),
            )),
        )
    }

    /// [`SessionManager::recover`] around an externally built prediction
    /// cache (see [`SessionManager::new_with_cache`]). The cache must be
    /// injected *before* replay: sessions capture the shared cache handle
    /// when they open, so replayed sessions warm — and are warmed by —
    /// the same cache the live ones use.
    ///
    /// # Errors
    ///
    /// Real I/O failures opening the journal only; nothing *in* the
    /// journal can fail recovery.
    pub fn recover_with_cache(
        default_jobs: usize,
        state_dir: &Path,
        snapshot_every: usize,
        cache: Arc<PredictionCache>,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let (journal, scan) = Journal::open(state_dir, snapshot_every)?;
        // Replay through the ordinary dispatch paths with journaling
        // still disarmed: the records are already on disk.
        let mut manager = Self::new_with_cache(default_jobs, cache);
        let mut report = RecoveryReport {
            records_skipped: scan.skipped,
            records_replayed: scan.entries.len(),
            sessions_restored: 0,
        };
        for entry in &scan.entries {
            // Role records are journal-internal: replay installs the role
            // directly instead of going through the wire guard.
            if let Request::RoleChange { epoch, primary, fenced } = &entry.request {
                manager.install_role(*epoch, *primary, *fenced);
                continue;
            }
            // The un-guarded core, not `dispatch_tagged`: a journaled
            // record was admitted when it was written, so a role record
            // replayed *before* it must not re-refuse it as a standby.
            let response = manager.dispatch_inner(&entry.request, entry.req_id.as_deref());
            if let Response::Error(e) = response {
                // A journal written by this manager replays cleanly; an
                // error means a hand-edited or cross-version log. Keep
                // going — later sessions are independent.
                eprintln!(
                    "chop-service: recovery: replay of {:?} failed: {}",
                    entry.request.encode(),
                    e.message
                );
            }
        }
        report.sessions_restored = manager.session_count();
        manager.journal = Some(Mutex::new(journal));
        Ok((manager, report))
    }

    /// Scripts I/O faults into the journal's subsequent appends (chaos
    /// tests only). No-op for a manager without a journal.
    #[cfg(feature = "fault-inject")]
    pub fn inject_journal_faults(&self, plan: IoFaultPlan) {
        if let Some(journal) = &self.journal {
            journal.lock().unwrap_or_else(PoisonError::into_inner).set_io_faults(plan);
        }
    }

    /// The prediction cache shared by every session this manager opens.
    #[must_use]
    pub fn shared_cache(&self) -> Arc<PredictionCache> {
        Arc::clone(&self.cache)
    }

    /// Number of open sessions.
    ///
    /// # Panics
    ///
    /// Never — a poisoned lock is recovered, not propagated.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Managed>> {
        // A panic while the map was locked (contained elsewhere by the
        // server's panic isolation) must not wedge every later request.
        self.sessions.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Handles any request synchronously and returns its response. The
    /// server dispatches `explore` through its worker pool instead (and
    /// intercepts `shutdown`, which here only acknowledges).
    pub fn dispatch(&self, request: &Request) -> Response {
        self.dispatch_tagged(request, None)
    }

    /// [`dispatch`](Self::dispatch) with the request's envelope `req_id`.
    /// A `req_id`-tagged mutation already in the dedup window is answered
    /// from its recorded outcome without being re-applied; fresh tagged
    /// mutations record their outcome (success *or* failure) for retries.
    ///
    /// Replication traffic is routed to its apply paths here, and a warm
    /// standby refuses every other mutation with [`ErrorKind::Standby`] —
    /// reads and explores are always served.
    pub fn dispatch_tagged(&self, request: &Request, req_id: Option<&str>) -> Response {
        match request {
            Request::ReplApply { seq, record, epoch, primary } => {
                return self.apply_replicated(*seq, record, *epoch, primary.as_deref())
            }
            Request::ReplSnapshot { seq, records, epoch, primary } => {
                return self.apply_snapshot(*seq, records, *epoch, primary.as_deref())
            }
            Request::Promote => {
                let (sessions, epoch) = self.promote();
                return Response::Promoted { sessions, epoch };
            }
            Request::RoleChange { .. } => {
                // Journal replay installs these directly; over the wire
                // they would let any client rewrite the cluster role.
                return Response::Error(ServiceError::protocol(
                    "role_change records are journal-internal and not accepted over the wire",
                ));
            }
            Request::Export { session } => return self.export_session(session),
            _ => {}
        }
        if self.is_standby() && request.is_mutation() {
            return Response::Error(self.standby_refusal());
        }
        if let Request::Import { records } = request {
            return self.import_session(records);
        }
        self.dispatch_inner(request, req_id)
    }

    /// The un-guarded dispatch core: dedup window, then the request
    /// itself. Replication applies call this directly — the records they
    /// carry are mutations the *primary* already admitted.
    fn dispatch_inner(&self, request: &Request, req_id: Option<&str>) -> Response {
        let dedup_key = match (req_id, request.is_mutation(), request.session()) {
            (Some(id), true, Some(session)) => Some((session.to_owned(), id.to_owned())),
            _ => None,
        };
        if let Some((session, id)) = &dedup_key {
            let recorded =
                self.dedup.lock().unwrap_or_else(PoisonError::into_inner).lookup(session, id);
            if let Some(response) = recorded {
                return response;
            }
        }
        let response = match request {
            Request::Ping => Response::Pong {
                version: PROTOCOL_VERSION,
                role: Some(self.role_name().to_owned()),
                epoch: self.epoch(),
                peer: self.peer(),
            },
            Request::Open { session, params } => {
                match self.open_tagged(session, params, req_id) {
                    Ok(partitions) => Response::Opened { session: session.clone(), partitions },
                    Err(e) => Response::Error(e),
                }
            }
            Request::Explore { session, params } => match self.explore(session, params) {
                Ok(run) => Response::Explored { session: session.clone(), run },
                Err(e) => Response::Error(e),
            },
            Request::Repartition { session, node, to } => {
                match self.repartition_tagged(session, *node, *to, req_id) {
                    Ok(()) => Response::Repartitioned {
                        session: session.clone(),
                        node: *node,
                        to: *to,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::Optimize { session, params } => {
                match self.optimize_tagged(session, params, req_id) {
                    Ok(result) => Response::Optimized {
                        session: session.clone(),
                        result: Box::new(result),
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::ApplyMoves { session, moves } => {
                match self.apply_moves_tagged(session, moves, req_id) {
                    Ok(()) => Response::MovesApplied {
                        session: session.clone(),
                        moves: moves.len() as u64,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::SetConstraints { session, performance_ns, delay_ns } => {
                match self.set_constraints_tagged(session, *performance_ns, *delay_ns, req_id) {
                    Ok(()) => Response::ConstraintsSet {
                        session: session.clone(),
                        performance_ns: *performance_ns,
                        delay_ns: *delay_ns,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::Stats { session } => match self.stats(session.as_deref()) {
                Ok((sessions, cache, last_run)) => Response::Stats {
                    sessions,
                    cache,
                    shard_entries: self.cache.shard_occupancy(),
                    last_run,
                },
                Err(e) => Response::Error(e),
            },
            Request::Close { session } => match self.close_tagged(session, req_id) {
                Ok(()) => Response::Closed { session: session.clone() },
                Err(e) => Response::Error(e),
            },
            Request::Shutdown => Response::ShuttingDown,
            // Replication traffic must not nest inside itself (a record
            // carrying a record): the wrapper already routed the real
            // thing, so reaching here means a malformed stream.
            Request::ReplApply { .. }
            | Request::ReplSnapshot { .. }
            | Request::Promote
            | Request::RoleChange { .. }
            | Request::Export { .. }
            | Request::Import { .. } => Response::Error(ServiceError::protocol(
                "replication requests cannot be nested inside records",
            )),
            // Membership administration is a router concern; a bare
            // server has no pair table to edit.
            Request::AddPair { .. } | Request::RemovePair { .. } | Request::RouterStatus => {
                Response::Error(ServiceError::protocol(
                    "router admin requests must be sent to a chop router",
                ))
            }
        };
        if let Some((session, id)) = dedup_key {
            self.dedup.lock().unwrap_or_else(PoisonError::into_inner).record(
                &session,
                &id,
                response.clone(),
            );
        }
        response
    }

    /// Appends a mutation to the journal (when one is mounted), mapping
    /// failure to a typed `internal` error. Called with the sessions lock
    /// held, *before* the mutation is committed to the map: an append
    /// failure therefore refuses the mutation with state unchanged.
    fn journal_append(
        &self,
        request: &Request,
        req_id: Option<&str>,
    ) -> Result<(), ServiceError> {
        if !self.journal_armed.load(Ordering::Acquire) {
            return Ok(());
        }
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .append(request, req_id)
                .map_err(|e| {
                    ServiceError::new(
                        ErrorKind::Internal,
                        format!("journal append failed, mutation refused: {e}"),
                    )
                })?;
        }
        Ok(())
    }

    /// Compacts the journal down to a snapshot of the live sessions once
    /// it outgrows its threshold. Called with the sessions lock held;
    /// compaction failure only defers shrinking, it never loses records.
    fn maybe_compact(&self, sessions: &HashMap<String, Managed>) {
        let Some(journal) = &self.journal else { return };
        let mut journal = journal.lock().unwrap_or_else(PoisonError::into_inner);
        if !journal.should_compact() {
            return;
        }
        let snapshot = Self::snapshot_entries(sessions);
        if let Err(e) = journal.compact(&self.with_role_record(snapshot.clone())) {
            eprintln!("chop-service: journal compaction failed (will retry later): {e}");
            return;
        }
        drop(journal);
        if self.is_standby() {
            return;
        }
        // The standby's journal would otherwise keep growing with records
        // the primary just compacted away: hand the snapshot over so it
        // can reset to the same baseline.
        let sink = self.repl_sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = sink.as_ref() {
            let _ = sink.send(ReplEvent::Snapshot {
                seq: self.repl_seq.load(Ordering::SeqCst),
                records: snapshot
                    .iter()
                    .map(|e| e.request.encode_tagged(e.req_id.as_deref()))
                    .collect(),
            });
        }
    }

    /// The genesis-plus-net-mutations history of every live session, in
    /// sorted-name order — what a compaction writes and a replication
    /// snapshot ships. Replaying it rebuilds the sessions byte-for-byte.
    fn snapshot_entries(sessions: &HashMap<String, Managed>) -> Vec<JournalEntry> {
        let mut names: Vec<&String> = sessions.keys().collect();
        names.sort_unstable();
        let mut snapshot = Vec::new();
        for name in names {
            let managed = &sessions[name];
            snapshot.push(JournalEntry {
                request: Request::Open {
                    session: name.clone(),
                    params: managed.genesis.clone(),
                },
                req_id: managed.open_req_id.clone(),
            });
            snapshot.extend(managed.mutations.iter().cloned());
        }
        snapshot
    }

    /// Prefixes a compaction snapshot with this node's current
    /// `role_change` record, so a restart replays straight back into the
    /// same epoch and role. Omitted entirely while the node has never
    /// left the epoch-0 primary default, keeping single-node journals
    /// byte-identical to earlier releases.
    fn with_role_record(&self, snapshot: Vec<JournalEntry>) -> Vec<JournalEntry> {
        let epoch = self.epoch();
        if epoch == 0 && !self.is_standby() && !self.is_fenced() {
            return snapshot;
        }
        let role = JournalEntry {
            request: Request::RoleChange {
                epoch,
                primary: !self.is_standby(),
                fenced: self.is_fenced(),
            },
            req_id: None,
        };
        std::iter::once(role).chain(snapshot).collect()
    }

    /// Opens a named session, returning its partition count.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::SessionExists`] for a duplicate name and
    /// [`ErrorKind::Spec`] for anything wrong with the parameters.
    pub fn open(&self, name: &str, params: &OpenParams) -> Result<u64, ServiceError> {
        self.open_tagged(name, params, None)
    }

    fn open_tagged(
        &self,
        name: &str,
        params: &OpenParams,
        req_id: Option<&str>,
    ) -> Result<u64, ServiceError> {
        if name.is_empty() || name.len() > 256 {
            return Err(ServiceError::new(
                ErrorKind::Spec,
                "session names must be 1..=256 characters",
            ));
        }
        let session =
            build_session(params, self.default_jobs)?.with_shared_cache(self.shared_cache());
        let partitions = session.partitioning().partition_count() as u64;
        let mut sessions = self.lock();
        if sessions.contains_key(name) {
            return Err(ServiceError::new(
                ErrorKind::SessionExists,
                format!("session {name:?} is already open"),
            ));
        }
        let request = Request::Open { session: name.to_owned(), params: params.clone() };
        self.journal_append(&request, req_id)?;
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        sessions.insert(
            name.to_owned(),
            Managed {
                session,
                last_run: None,
                generation,
                genesis: params.clone(),
                open_req_id: req_id.map(str::to_owned),
                mutations: Vec::new(),
            },
        );
        self.replicate(&request, req_id);
        self.maybe_compact(&sessions);
        Ok(partitions)
    }

    /// Runs an exploration on a named session. The search itself runs
    /// without holding the manager lock.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name,
    /// [`ErrorKind::Engine`] when the core search fails.
    pub fn explore(
        &self,
        name: &str,
        params: &ExploreParams,
    ) -> Result<RunSummary, ServiceError> {
        let (session, generation) = {
            let sessions = self.lock();
            let managed = sessions.get(name).ok_or_else(|| unknown_session(name))?;
            (managed.session.clone(), managed.generation)
        };
        let mut budget = SearchBudget::default();
        if let Some(ms) = params.budget.deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = params.budget.max_trials {
            budget = budget.with_max_trials(usize::try_from(n).unwrap_or(usize::MAX));
        }
        let jobs =
            params.jobs.map_or(self.default_jobs, |j| usize::try_from(j.max(1)).unwrap_or(1));
        let outcome = session
            .with_budget(budget)
            .with_jobs(jobs)
            .explore(params.heuristic)
            .map_err(|e| ServiceError::new(ErrorKind::Engine, e.to_string()))?;
        let run = RunSummary::from_outcome(&outcome);
        self.record_run(name, generation, run.clone());
        Ok(run)
    }

    /// Attaches a finished run to the session it actually came from: if
    /// the name was closed (or closed and reopened) while the search ran
    /// unlocked, the generation no longer matches and the summary is
    /// dropped instead of landing on an unrelated session.
    fn record_run(&self, name: &str, generation: u64, run: RunSummary) {
        if let Some(managed) = self.lock().get_mut(name) {
            if managed.generation == generation {
                managed.last_run = Some(run);
            }
        }
    }

    /// Moves one DFG node to another partition (the incremental what-if).
    /// The replaced session keeps the shared cache, so the next `explore`
    /// re-predicts only the touched partitions.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name, [`ErrorKind::Spec`]
    /// for an unknown node index, [`ErrorKind::Engine`] for an invalid move.
    pub fn repartition(&self, name: &str, node: u32, to: u32) -> Result<(), ServiceError> {
        self.repartition_tagged(name, node, to, None)
    }

    fn repartition_tagged(
        &self,
        name: &str,
        node: u32,
        to: u32,
        req_id: Option<&str>,
    ) -> Result<(), ServiceError> {
        let mut sessions = self.lock();
        let managed = sessions.get_mut(name).ok_or_else(|| unknown_session(name))?;
        let node_id = managed
            .session
            .partitioning()
            .dfg()
            .nodes()
            .map(|(id, _)| id)
            .find(|id| id.index() == node as usize)
            .ok_or_else(|| {
                ServiceError::new(ErrorKind::Spec, format!("no node with index {node}"))
            })?;
        let next = managed
            .session
            .repartition(node_id, PartitionId::new(to))
            .map_err(|e| ServiceError::new(ErrorKind::Engine, e.to_string()))?;
        let request = Request::Repartition { session: name.to_owned(), node, to };
        self.journal_append(&request, req_id)?;
        managed.session = next;
        self.replicate(&request, req_id);
        managed.mutations.push(JournalEntry { request, req_id: req_id.map(str::to_owned) });
        self.maybe_compact(&sessions);
        Ok(())
    }

    /// Runs the move-based optimizer on a named session. Like
    /// [`explore`](Self::explore), the search itself runs without holding
    /// the manager lock; on success the accepted final partitioning is
    /// committed by replaying the move trace onto the live session, and
    /// the journal/replication stream records that replay as an
    /// `apply_moves` (a truncated `optimize` is not deterministically
    /// replayable, its accepted trace always is).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name, [`ErrorKind::Spec`]
    /// for parameters naming unknown nodes or inconsistent constraints,
    /// [`ErrorKind::Engine`] when the search fails or the session was
    /// mutated while the optimizer ran unlocked (retry in that case).
    pub fn optimize(
        &self,
        name: &str,
        params: &OptimizeParams,
    ) -> Result<OptimizeSummary, ServiceError> {
        self.optimize_tagged(name, params, None)
    }

    fn optimize_tagged(
        &self,
        name: &str,
        params: &OptimizeParams,
        req_id: Option<&str>,
    ) -> Result<OptimizeSummary, ServiceError> {
        let (session, generation, mutation_count) = {
            let sessions = self.lock();
            let managed = sessions.get(name).ok_or_else(|| unknown_session(name))?;
            (managed.session.clone(), managed.generation, managed.mutations.len())
        };
        let spec = optimize_spec(&session, params)?;
        let jobs =
            params.jobs.map_or(self.default_jobs, |j| usize::try_from(j.max(1)).unwrap_or(1));
        let result = session.with_jobs(jobs).optimize(&spec).map_err(|e| match e {
            ChopError::InvalidOptimizeSpec(_) => {
                ServiceError::new(ErrorKind::Spec, e.to_string())
            }
            other => ServiceError::new(ErrorKind::Engine, other.to_string()),
        })?;
        let moves = result.moves_as_indices();
        let mut sessions = self.lock();
        let managed = sessions.get_mut(name).ok_or_else(|| unknown_session(name))?;
        if managed.generation != generation || managed.mutations.len() != mutation_count {
            return Err(ServiceError::new(
                ErrorKind::Engine,
                "session mutated while the optimizer ran; retry",
            ));
        }
        if !moves.is_empty() {
            let node_moves = resolve_moves(&managed.session, &moves)?;
            let next = managed
                .session
                .apply_moves(&node_moves)
                .map_err(|e| ServiceError::new(ErrorKind::Engine, e.to_string()))?;
            let request = Request::ApplyMoves { session: name.to_owned(), moves };
            self.journal_append(&request, req_id)?;
            managed.session = next;
            self.replicate(&request, req_id);
            managed.mutations.push(JournalEntry { request, req_id: req_id.map(str::to_owned) });
        }
        managed.last_run = Some(RunSummary::from_outcome(&result.outcome));
        self.maybe_compact(&sessions);
        Ok(OptimizeSummary::from_result(&result))
    }

    /// Applies a batch of `(node index, partition index)` moves
    /// atomically — the journaled form of an accepted optimizer trace,
    /// also reachable directly as a multi-node what-if.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name, [`ErrorKind::Spec`]
    /// for an unknown node index, [`ErrorKind::Engine`] for a batch whose
    /// final state is invalid.
    pub fn apply_moves(&self, name: &str, moves: &[(u32, u32)]) -> Result<(), ServiceError> {
        self.apply_moves_tagged(name, moves, None)
    }

    fn apply_moves_tagged(
        &self,
        name: &str,
        moves: &[(u32, u32)],
        req_id: Option<&str>,
    ) -> Result<(), ServiceError> {
        let mut sessions = self.lock();
        let managed = sessions.get_mut(name).ok_or_else(|| unknown_session(name))?;
        let node_moves = resolve_moves(&managed.session, moves)?;
        let next = managed
            .session
            .apply_moves(&node_moves)
            .map_err(|e| ServiceError::new(ErrorKind::Engine, e.to_string()))?;
        let request = Request::ApplyMoves { session: name.to_owned(), moves: moves.to_vec() };
        self.journal_append(&request, req_id)?;
        managed.session = next;
        self.replicate(&request, req_id);
        managed.mutations.push(JournalEntry { request, req_id: req_id.map(str::to_owned) });
        self.maybe_compact(&sessions);
        Ok(())
    }

    /// Replaces a session's performance/delay constraints — the paper's
    /// interactive tighten-and-retry loop — keeping its partitioning,
    /// predictions and shared cache.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name, [`ErrorKind::Spec`]
    /// for a non-positive or non-finite constraint.
    pub fn set_constraints(
        &self,
        name: &str,
        performance_ns: f64,
        delay_ns: f64,
    ) -> Result<(), ServiceError> {
        self.set_constraints_tagged(name, performance_ns, delay_ns, None)
    }

    fn set_constraints_tagged(
        &self,
        name: &str,
        performance_ns: f64,
        delay_ns: f64,
        req_id: Option<&str>,
    ) -> Result<(), ServiceError> {
        for (field, value) in [("performance_ns", performance_ns), ("delay_ns", delay_ns)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ServiceError::new(
                    ErrorKind::Spec,
                    format!("{field} must be a positive, finite number"),
                ));
            }
        }
        let mut sessions = self.lock();
        let managed = sessions.get_mut(name).ok_or_else(|| unknown_session(name))?;
        let constraints = Constraints::new(Nanos::new(performance_ns), Nanos::new(delay_ns));
        let next = managed
            .session
            .clone()
            .try_with_constraints(constraints)
            .map_err(|e| ServiceError::new(ErrorKind::Spec, e.to_string()))?;
        let request =
            Request::SetConstraints { session: name.to_owned(), performance_ns, delay_ns };
        self.journal_append(&request, req_id)?;
        managed.session = next;
        self.replicate(&request, req_id);
        managed.mutations.push(JournalEntry { request, req_id: req_id.map(str::to_owned) });
        self.maybe_compact(&sessions);
        Ok(())
    }

    /// Server statistics: sorted session names, the shared cache's
    /// lifetime counters, and — when `session` names an open session —
    /// its most recent run summary.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] when `session` names nothing.
    pub fn stats(
        &self,
        session: Option<&str>,
    ) -> Result<(Vec<String>, CacheStats, Option<RunSummary>), ServiceError> {
        let sessions = self.lock();
        let last_run = match session {
            None => None,
            Some(name) => {
                sessions.get(name).ok_or_else(|| unknown_session(name))?.last_run.clone()
            }
        };
        let mut names: Vec<String> = sessions.keys().cloned().collect();
        names.sort_unstable();
        Ok((names, self.cache.stats(), last_run))
    }

    /// Discards a named session (its cache contributions stay shared).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::UnknownSession`] for a missing name.
    pub fn close(&self, name: &str) -> Result<(), ServiceError> {
        self.close_tagged(name, None)
    }

    fn close_tagged(&self, name: &str, req_id: Option<&str>) -> Result<(), ServiceError> {
        let mut sessions = self.lock();
        if !sessions.contains_key(name) {
            return Err(unknown_session(name));
        }
        let request = Request::Close { session: name.to_owned() };
        self.journal_append(&request, req_id)?;
        sessions.remove(name);
        self.replicate(&request, req_id);
        self.maybe_compact(&sessions);
        Ok(())
    }

    // ---- session handoff ------------------------------------------------

    /// Exports one session as the portable record lines (genesis `open`
    /// plus net mutations, `req_id`s preserved) that rebuild it — the
    /// router uses this to migrate sessions during pair membership
    /// changes. Read-only; the session stays open here.
    fn export_session(&self, name: &str) -> Response {
        let sessions = self.lock();
        let Some(managed) = sessions.get(name) else {
            return Response::Error(unknown_session(name));
        };
        let mut records = Vec::with_capacity(1 + managed.mutations.len());
        records.push(
            Request::Open { session: name.to_owned(), params: managed.genesis.clone() }
                .encode_tagged(managed.open_req_id.as_deref()),
        );
        records.extend(
            managed.mutations.iter().map(|e| e.request.encode_tagged(e.req_id.as_deref())),
        );
        Response::Exported { session: name.to_owned(), records }
    }

    /// Rebuilds an exported session here by applying its record lines
    /// through the ordinary dispatch core — each lands in the journal and
    /// the replication stream like a fresh mutation. Refused if the
    /// session already exists or the records are malformed.
    fn import_session(&self, records: &[String]) -> Response {
        let mut decoded = Vec::with_capacity(records.len());
        for record in records {
            match Request::decode_tagged(record) {
                Ok(pair) => decoded.push(pair),
                Err(e) => {
                    return Response::Error(ServiceError::protocol(format!(
                        "undecodable import record: {e}"
                    )))
                }
            }
        }
        let Some((Request::Open { session, .. }, _)) = decoded.first() else {
            return Response::Error(ServiceError::protocol(
                "imports must start with the session's open record",
            ));
        };
        let session = session.clone();
        if decoded.iter().any(|(r, _)| r.session() != Some(session.as_str())) {
            return Response::Error(ServiceError::protocol(
                "import records must all target the imported session",
            ));
        }
        let mut applied = 0u64;
        for (request, req_id) in &decoded {
            if let Response::Error(e) = self.dispatch_inner(request, req_id.as_deref()) {
                return Response::Error(ServiceError::new(
                    e.kind,
                    format!(
                        "import of {session:?} failed after {applied} records: {}",
                        e.message
                    ),
                ));
            }
            applied += 1;
        }
        Response::Imported { session, records: applied }
    }

    // ---- replication ----------------------------------------------------

    /// Whether this node is a warm standby (refusing direct mutations).
    #[must_use]
    pub fn is_standby(&self) -> bool {
        self.standby.load(Ordering::Acquire)
    }

    /// Puts this node into warm-standby mode: direct mutations are
    /// refused until [`promote`](Self::promote); state arrives via
    /// [`Request::ReplApply`] / [`Request::ReplSnapshot`].
    pub fn mark_standby(&self) {
        self.standby.store(true, Ordering::Release);
    }

    /// Whether this node's standby role was forced by fencing (it was a
    /// primary demoted by a higher-epoch peer) rather than configured.
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// The cluster epoch this node last heard or journaled. Starts at 0;
    /// every promotion bumps it, every higher epoch heard adopts it.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The wire name for this node's current role.
    #[must_use]
    pub fn role_name(&self) -> &'static str {
        if !self.is_standby() {
            "primary"
        } else if self.is_fenced() {
            "fenced"
        } else {
            "standby"
        }
    }

    /// Records this node's own dialable address, stamped onto outgoing
    /// replication traffic so a refusing peer can find us back.
    pub fn set_advertised(&self, addr: impl Into<String>) {
        *self.advertised.lock().unwrap_or_else(PoisonError::into_inner) = Some(addr.into());
    }

    /// This node's own dialable address, if one was recorded after bind.
    #[must_use]
    pub fn advertised(&self) -> Option<String> {
        self.advertised.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Points the replicator at a (new) peer address. The replicator
    /// re-reads this on every reconnect, so retargeting takes effect
    /// without a restart.
    pub fn set_peer(&self, addr: Option<String>) {
        *self.peer.lock().unwrap_or_else(PoisonError::into_inner) = addr;
    }

    /// The current replication peer address, if any.
    #[must_use]
    pub fn peer(&self) -> Option<String> {
        self.peer.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Installs the hook called with a one-line description on every role
    /// transition (the CLI prints these as banner lines).
    pub fn set_role_change_hook(&self, hook: impl Fn(&str) + Send + Sync + 'static) {
        *self.role_hook.lock().unwrap_or_else(PoisonError::into_inner) = Some(Box::new(hook));
    }

    fn announce(&self, line: &str) {
        let hook = self.role_hook.lock().unwrap_or_else(PoisonError::into_inner);
        match hook.as_ref() {
            Some(hook) => hook(line),
            None => eprintln!("chop-service: {line}"),
        }
    }

    /// The best redirect target for a refused mutation: the stored
    /// primary hint on a standby, this node's own address on a primary.
    #[must_use]
    pub fn primary_hint(&self) -> Option<String> {
        if !self.is_standby() {
            return self.advertised();
        }
        self.primary_hint.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The typed refusal a standby answers direct mutations with:
    /// `fenced` when the role was forced by a higher epoch, `standby`
    /// when configured — both carrying the current primary's address.
    fn standby_refusal(&self) -> ServiceError {
        let (kind, message) = if self.is_fenced() {
            (
                ErrorKind::Fenced,
                "this node was fenced by a newer primary; send mutations to the primary",
            )
        } else {
            (ErrorKind::Standby, "this node is a warm standby; send mutations to the primary")
        };
        ServiceError::new(kind, message).with_redirect(self.primary_hint(), self.epoch())
    }

    /// Raw role install for journal replay: no journaling, no hook.
    fn install_role(&self, epoch: u64, primary: bool, fenced: bool) {
        self.epoch.store(epoch, Ordering::Release);
        self.standby.store(!primary, Ordering::Release);
        self.fenced.store(fenced && !primary, Ordering::Release);
    }

    /// Promotes this node to primary, bumping the cluster epoch and
    /// journaling the `role_change` so a restart replays it back into
    /// the role. A no-op on a node already serving as primary (the epoch
    /// is *not* bumped — re-promotion must stay idempotent). Returns the
    /// live session count and the epoch now in force.
    pub fn promote(&self) -> (u64, u64) {
        let _apply = self.repl_apply.lock().unwrap_or_else(PoisonError::into_inner);
        if !self.is_standby() {
            return (self.session_count() as u64, self.epoch());
        }
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        let record = Request::RoleChange { epoch, primary: true, fenced: false };
        if let Err(e) = self.journal_append(&record, None) {
            // Promotion is an availability decision: serve now, warn that
            // a restart will not remember the new epoch.
            eprintln!(
                "chop-service: promote: role_change journal append failed: {}",
                e.message
            );
        }
        self.epoch.store(epoch, Ordering::Release);
        self.standby.store(false, Ordering::Release);
        self.fenced.store(false, Ordering::Release);
        *self.primary_hint.lock().unwrap_or_else(PoisonError::into_inner) = self.advertised();
        self.announce(&format!("promoted to primary at epoch {epoch}"));
        (self.session_count() as u64, epoch)
    }

    /// Demotes this node to a **fenced** standby of `primary` at `epoch`,
    /// journaling the transition. Called when a fenced refusal or an
    /// incoming replication stream proves a newer primary exists. Stale
    /// calls (epoch not newer than our own) are ignored.
    pub fn demote(&self, epoch: u64, primary: Option<&str>) {
        let _apply = self.repl_apply.lock().unwrap_or_else(PoisonError::into_inner);
        self.adopt_epoch(epoch, primary);
    }

    /// Reacts to a `fenced` refusal from the peer our replicator ships
    /// to: demotes this node iff the refusal proves a strictly newer
    /// epoch (equal epochs never demote — that would let two primaries
    /// demote each other). Returns whether a demotion happened.
    pub fn observe_fencing(&self, err: &ServiceError) -> bool {
        let Some(epoch) = err.epoch else { return false };
        if err.kind != ErrorKind::Fenced || epoch <= self.epoch() {
            return false;
        }
        self.demote(epoch, err.primary.as_deref());
        true
    }

    /// Adopts a strictly newer epoch heard from the cluster: a primary
    /// demotes itself to a fenced standby, a standby just follows the
    /// epoch forward. Journals the resulting `role_change` and updates
    /// the primary hint (and replication peer) to the announcing node.
    /// Caller must hold `repl_apply`.
    fn adopt_epoch(&self, epoch: u64, primary: Option<&str>) {
        if epoch <= self.epoch.load(Ordering::Acquire) {
            if let Some(addr) = primary {
                *self.primary_hint.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(addr.to_owned());
            }
            return;
        }
        let was_primary = !self.is_standby();
        let fenced = was_primary || self.is_fenced();
        let record = Request::RoleChange { epoch, primary: false, fenced };
        if let Err(e) = self.journal_append(&record, None) {
            eprintln!("chop-service: demote: role_change journal append failed: {}", e.message);
        }
        self.epoch.store(epoch, Ordering::Release);
        self.standby.store(true, Ordering::Release);
        self.fenced.store(fenced, Ordering::Release);
        if let Some(addr) = primary {
            *self.primary_hint.lock().unwrap_or_else(PoisonError::into_inner) =
                Some(addr.to_owned());
            // Our replicator should ship to (and resync from) the node
            // that outranked us once we are promoted again.
            self.set_peer(Some(addr.to_owned()));
        }
        if was_primary {
            let to = primary.unwrap_or("the new primary");
            self.announce(&format!("demoted to standby of {to} at epoch {epoch} (fenced)"));
        }
    }

    /// The replication high-water mark: the highest stream sequence this
    /// node has applied or skipped.
    #[must_use]
    pub fn replication_high_water(&self) -> u64 {
        self.repl_high_water.load(Ordering::Acquire)
    }

    /// Attaches the channel committed mutations are shipped over. One
    /// replicator per manager; installing a new sink replaces the old.
    pub fn set_repl_sink(&self, sink: mpsc::Sender<ReplEvent>) {
        // Taken under the sessions lock so installation serializes with
        // in-flight commits (same order as `replicate`).
        let _sessions = self.lock();
        *self.repl_sink.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    }

    /// A consistent snapshot of the full state for stream (re)starts: the
    /// current replication sequence and the record lines that rebuild
    /// every live session, taken atomically under the sessions lock.
    #[must_use]
    pub fn replication_snapshot(&self) -> (u64, Vec<String>) {
        let sessions = self.lock();
        let seq = self.repl_seq.load(Ordering::SeqCst);
        let records = Self::snapshot_entries(&sessions)
            .iter()
            .map(|e| e.request.encode_tagged(e.req_id.as_deref()))
            .collect();
        (seq, records)
    }

    /// Assigns the next stream sequence to a just-committed mutation and
    /// ships it to the replicator, if one is attached. Called with the
    /// sessions lock held so sequence order equals emission order.
    fn replicate(&self, request: &Request, req_id: Option<&str>) {
        let seq = self.repl_seq.fetch_add(1, Ordering::SeqCst) + 1;
        if self.is_standby() {
            // A standby applying the primary's stream must not echo the
            // records back out of its own (parked) replicator.
            return;
        }
        let sink = self.repl_sink.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(sink) = sink.as_ref() {
            let _ = sink.send(ReplEvent::Record { seq, line: request.encode_tagged(req_id) });
        }
    }

    /// Epoch fence on an incoming replication message, under `repl_apply`.
    ///
    /// - A **lower** epoch proves the sender is a stale ex-primary: refuse
    ///   with the typed `fenced` error (carrying our epoch and primary
    ///   hint, which demotes the sender), and — when we are the primary —
    ///   retarget our own replicator at the sender's advertised address so
    ///   the resync snapshot finds it even if its port changed.
    /// - A **higher** epoch proves a newer primary exists: adopt it (a
    ///   primary demotes itself, fenced) and accept the message.
    /// - An **equal** epoch is only legitimate when we are a standby (the
    ///   sender is our primary); two primaries at the same epoch refuse
    ///   each other without demoting (the refusal carries an equal epoch,
    ///   which [`observe_fencing`](Self::observe_fencing) ignores).
    fn fence_check(&self, epoch: u64, sender: Option<&str>) -> Result<(), ServiceError> {
        let own = self.epoch.load(Ordering::Acquire);
        if epoch < own || (epoch == own && !self.is_standby()) {
            if epoch < own && !self.is_standby() {
                if let Some(addr) = sender {
                    self.set_peer(Some(addr.to_owned()));
                }
            }
            return Err(ServiceError::new(
                ErrorKind::Fenced,
                format!(
                    "replication stream fenced: sender epoch {epoch} is not newer than {own}"
                ),
            )
            .with_redirect(self.primary_hint(), own));
        }
        self.adopt_epoch(epoch, sender);
        Ok(())
    }

    /// Applies one replicated record on a standby. Records at or below
    /// the high-water mark are acked without being re-applied, which
    /// makes stream re-delivery (snapshot overlap, reconnect replays)
    /// idempotent. The carried epoch is fence-checked first: stale
    /// senders are refused, newer senders demote us before the apply.
    fn apply_replicated(
        &self,
        seq: u64,
        record: &str,
        epoch: u64,
        sender: Option<&str>,
    ) -> Response {
        let _apply = self.repl_apply.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = self.fence_check(epoch, sender) {
            return Response::Error(e);
        }
        let high_water = self.repl_high_water.load(Ordering::Acquire);
        if seq <= high_water {
            return Response::ReplAck { seq: high_water };
        }
        match Request::decode_tagged(record) {
            Ok((request, req_id)) => {
                // Through the ordinary dispatch core: the mutation lands
                // in the standby's own journal (it is crash-safe in its
                // own right) and its req_id outcome enters the dedup
                // window, so a client retrying against the promoted
                // standby gets the recorded answer.
                if let Response::Error(e) = self.dispatch_inner(&request, req_id.as_deref()) {
                    eprintln!(
                        "chop-service: replication: apply of seq {seq} failed: {}",
                        e.message
                    );
                }
            }
            Err(e) => {
                eprintln!("chop-service: replication: undecodable record at seq {seq}: {e}");
            }
        }
        self.repl_high_water.store(seq, Ordering::Release);
        self.repl_seq.store(seq, Ordering::SeqCst);
        Response::ReplAck { seq }
    }

    /// Replaces the standby's entire state with a shipped snapshot (sent
    /// on stream start and after primary-side compaction), then compacts
    /// its own journal down to the same baseline. Fence-checked like
    /// [`apply_replicated`](Self::apply_replicated) — this is the path a
    /// fenced ex-primary resyncs through.
    fn apply_snapshot(
        &self,
        seq: u64,
        records: &[String],
        epoch: u64,
        sender: Option<&str>,
    ) -> Response {
        let _apply = self.repl_apply.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = self.fence_check(epoch, sender) {
            return Response::Error(e);
        }
        let high_water = self.repl_high_water.load(Ordering::Acquire);
        if seq < high_water {
            return Response::ReplAck { seq: high_water };
        }
        // Replay with the journal disarmed: the post-replay compaction
        // persists the same records in one atomic snapshot write.
        self.journal_armed.store(false, Ordering::Release);
        self.lock().clear();
        *self.dedup.lock().unwrap_or_else(PoisonError::into_inner) = DedupWindow::default();
        for record in records {
            match Request::decode_tagged(record) {
                Ok((request, req_id)) => {
                    if let Response::Error(e) = self.dispatch_inner(&request, req_id.as_deref())
                    {
                        eprintln!(
                            "chop-service: replication: snapshot replay failed: {}",
                            e.message
                        );
                    }
                }
                Err(e) => {
                    eprintln!("chop-service: replication: undecodable snapshot record: {e}");
                }
            }
        }
        self.journal_armed.store(true, Ordering::Release);
        if let Some(journal) = &self.journal {
            let sessions = self.lock();
            let snapshot = self.with_role_record(Self::snapshot_entries(&sessions));
            if let Err(e) =
                journal.lock().unwrap_or_else(PoisonError::into_inner).compact(&snapshot)
            {
                eprintln!("chop-service: replication: snapshot persist failed: {e}");
            }
        }
        self.repl_high_water.store(seq, Ordering::Release);
        self.repl_seq.store(seq, Ordering::SeqCst);
        Response::ReplAck { seq }
    }
}

fn unknown_session(name: &str) -> ServiceError {
    ServiceError::new(ErrorKind::UnknownSession, format!("no open session named {name:?}"))
}

/// Resolves a wire node index against a session's DFG.
fn resolve_node(session: &Session, node: u32) -> Result<chop_dfg::NodeId, ServiceError> {
    session
        .partitioning()
        .dfg()
        .nodes()
        .map(|(id, _)| id)
        .find(|id| id.index() == node as usize)
        .ok_or_else(|| ServiceError::new(ErrorKind::Spec, format!("no node with index {node}")))
}

/// Resolves a wire move batch to `(NodeId, PartitionId)` pairs.
fn resolve_moves(
    session: &Session,
    moves: &[(u32, u32)],
) -> Result<Vec<(chop_dfg::NodeId, PartitionId)>, ServiceError> {
    moves
        .iter()
        .map(|&(node, to)| Ok((resolve_node(session, node)?, PartitionId::new(to))))
        .collect()
}

/// Builds the core [`OptimizeSpec`] an `optimize` request describes,
/// resolving its node indices against the session.
fn optimize_spec(
    session: &Session,
    params: &OptimizeParams,
) -> Result<OptimizeSpec, ServiceError> {
    let mut spec = OptimizeSpec::new().with_seed(params.seed).with_heuristic(params.heuristic);
    if let Some(ms) = params.budget.deadline_ms {
        spec = spec.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = params.budget.max_trials {
        spec = spec.with_max_moves(n);
    }
    if params.kicks.is_some() || params.kick_moves.is_some() {
        let kicks = params.kicks.unwrap_or_else(|| spec.kicks());
        let kick_moves = params.kick_moves.unwrap_or_else(|| spec.kick_moves());
        spec = spec.with_kicks(kicks, kick_moves);
    }
    for &node in &params.pinned {
        spec = spec.with_pinned_node(resolve_node(session, node)?);
    }
    for group in &params.groups {
        let nodes = group
            .iter()
            .map(|&node| resolve_node(session, node))
            .collect::<Result<Vec<_>, _>>()?;
        spec = spec.with_group(nodes);
    }
    for &(a, b) in &params.exclusions {
        spec = spec.with_exclusion(resolve_node(session, a)?, resolve_node(session, b)?);
    }
    Ok(spec)
}

/// Builds a core [`Session`] from wire parameters, mirroring the `chop
/// check` defaults: uniform MOSIS packages, a horizontal cut, referenced
/// memory blocks declared as off-the-shelf external parts.
///
/// Exposed so tests (and embedders) can reproduce the exact session a
/// server builds for an `open` request and compare
/// [`SearchOutcome::digest`]s against service results.
///
/// # Errors
///
/// [`ErrorKind::Spec`] for unparseable spec text, an out-of-range
/// partition/chip/package choice, or a non-positive constraint.
pub fn build_session(params: &OpenParams, jobs: usize) -> Result<Session, ServiceError> {
    let spec_err = |m: String| ServiceError::new(ErrorKind::Spec, m);
    let dfg = parse_dfg(&params.spec).map_err(|e| spec_err(e.to_string()))?;
    let partitions = params.partitions as usize;
    if partitions == 0 || partitions > dfg.len() {
        return Err(spec_err(format!(
            "partitions must be in 1..={} for this spec, got {partitions}",
            dfg.len()
        )));
    }
    let chip_count = params.chips.unwrap_or(params.partitions) as usize;
    if chip_count == 0 {
        return Err(spec_err("chip count must be at least 1".into()));
    }
    if params.package_pins != 64 && params.package_pins != 84 {
        return Err(spec_err(format!(
            "package_pins must be 64 or 84 (Table 2), got {}",
            params.package_pins
        )));
    }
    for (field, value) in
        [("performance_ns", params.performance_ns), ("delay_ns", params.delay_ns)]
    {
        if !(value.is_finite() && value > 0.0) {
            return Err(spec_err(format!("{field} must be a positive, finite number")));
        }
    }

    let packages = table2_packages();
    let package = if params.package_pins == 64 { &packages[0] } else { &packages[1] };
    let chips = ChipSet::uniform(package.clone(), chip_count);

    // Declare every memory block the spec references as an off-the-shelf
    // external part (protocol v1 has no on-chip memory placement).
    let mut max_memory: Option<u32> = None;
    for (_, node) in dfg.nodes() {
        if let Some(m) = node.op().memory() {
            max_memory = Some(max_memory.map_or(m.index(), |x| x.max(m.index())));
        }
    }
    let mut builder = PartitioningBuilder::new(dfg, chips).split_horizontal(partitions);
    if let Some(max) = max_memory {
        for _ in 0..=max {
            builder = builder.with_memory(example_off_shelf_ram(), MemoryAssignment::External);
        }
    }
    let partitioning = builder.build().map_err(|e| spec_err(e.to_string()))?;

    let (dp_mult, style) = if params.multi_cycle {
        (1, ArchitectureStyle::multi_cycle())
    } else {
        (10, ArchitectureStyle::single_cycle())
    };
    let clocks =
        ClockConfig::new(Nanos::new(300.0), dp_mult, 1).map_err(|e| spec_err(e.to_string()))?;
    let constraints =
        Constraints::new(Nanos::new(params.performance_ns), Nanos::new(params.delay_ns));
    let session = Session::new(
        partitioning,
        table1_library(),
        clocks,
        style,
        PredictorParams::default(),
        constraints,
    )
    .try_with_constraints(constraints)
    .map_err(|e| spec_err(e.to_string()))?;
    Ok(session.with_jobs(jobs.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BudgetEnvelope;

    const SPEC: &str = "a = input 16\nb = input 16\np = mul a b\ns = add p a\ny = output s\n";

    fn open_params(partitions: u32) -> OpenParams {
        OpenParams { spec: SPEC.into(), partitions, ..OpenParams::default() }
    }

    #[test]
    fn open_explore_stats_close_lifecycle() {
        let mgr = SessionManager::new(1);
        assert_eq!(mgr.open("s1", &open_params(2)).unwrap(), 2);
        let run = mgr.explore("s1", &ExploreParams::default()).unwrap();
        assert!(run.trials > 0);
        let (names, cache, last) = mgr.stats(Some("s1")).unwrap();
        assert_eq!(names, vec!["s1".to_owned()]);
        assert!(cache.misses > 0, "first run must miss the shared cache");
        assert_eq!(last.unwrap().digest, run.digest);
        mgr.close("s1").unwrap();
        assert_eq!(mgr.session_count(), 0);
        assert_eq!(mgr.close("s1").unwrap_err().kind, ErrorKind::UnknownSession);
    }

    #[test]
    fn duplicate_open_is_rejected() {
        let mgr = SessionManager::new(1);
        mgr.open("dup", &open_params(1)).unwrap();
        assert_eq!(
            mgr.open("dup", &open_params(1)).unwrap_err().kind,
            ErrorKind::SessionExists
        );
        assert_eq!(mgr.open("", &open_params(1)).unwrap_err().kind, ErrorKind::Spec);
    }

    #[test]
    fn sibling_sessions_share_the_prediction_cache() {
        let mgr = SessionManager::new(1);
        mgr.open("first", &open_params(2)).unwrap();
        mgr.open("second", &open_params(2)).unwrap();
        let a = mgr.explore("first", &ExploreParams::default()).unwrap();
        let b = mgr.explore("second", &ExploreParams::default()).unwrap();
        assert_eq!(a.digest, b.digest, "identical sessions find identical results");
        assert!(a.predictor_calls > 0);
        assert_eq!(b.predictor_calls, 0, "second session must be served from the cache");
        assert_eq!(b.cache_hits, 2);
    }

    #[test]
    fn repartition_then_explore_repredicts_only_touched_partitions() {
        let spec = "a = input 16\nb = input 16\np = mul a b\ns = add p a\nt = add s b\n\
                    u = add t a\ny = output u\n";
        let mgr = SessionManager::new(1);
        let params = OpenParams { spec: spec.into(), partitions: 3, ..OpenParams::default() };
        mgr.open("inc", &params).unwrap();
        let before = mgr.explore("inc", &ExploreParams::default()).unwrap();
        assert_eq!(before.cache_hits, 0);
        mgr.repartition("inc", 3, 0).unwrap();
        let after = mgr.explore("inc", &ExploreParams::default()).unwrap();
        assert!(
            after.cache_hits >= 1,
            "untouched partitions must be served from the cache, got {after:?}"
        );
        assert!(
            after.predictor_calls < before.predictor_calls,
            "only the touched partitions may be re-predicted"
        );
    }

    #[test]
    fn stale_run_is_not_recorded_on_a_reopened_session() {
        let mgr = SessionManager::new(1);
        mgr.open("s", &open_params(2)).unwrap();
        let stale_gen = mgr.lock().get("s").unwrap().generation;
        let run = mgr.explore("s", &ExploreParams::default()).unwrap();
        // Close and reopen under the same name while a hypothetical
        // search still holds the old generation.
        mgr.close("s").unwrap();
        mgr.open("s", &open_params(2)).unwrap();
        mgr.record_run("s", stale_gen, run.clone());
        let (_, _, last) = mgr.stats(Some("s")).unwrap();
        assert!(last.is_none(), "stale run must not attach to the reopened session");
        // The matching generation still records normally.
        let fresh_gen = mgr.lock().get("s").unwrap().generation;
        assert_ne!(fresh_gen, stale_gen);
        mgr.record_run("s", fresh_gen, run);
        assert!(mgr.stats(Some("s")).unwrap().2.is_some());
    }

    #[test]
    fn explore_budget_truncates() {
        let mgr = SessionManager::new(1);
        mgr.open("b", &open_params(2)).unwrap();
        let params = ExploreParams {
            budget: BudgetEnvelope { max_trials: Some(0), ..BudgetEnvelope::default() },
            ..ExploreParams::default()
        };
        let run = mgr.explore("b", &params).unwrap();
        assert!(run.completion.is_truncated());
    }

    #[test]
    fn errors_are_typed() {
        let mgr = SessionManager::new(1);
        assert_eq!(
            mgr.explore("ghost", &ExploreParams::default()).unwrap_err().kind,
            ErrorKind::UnknownSession
        );
        assert_eq!(mgr.stats(Some("ghost")).unwrap_err().kind, ErrorKind::UnknownSession);
        let bad = OpenParams { spec: "a = frob 16\n".into(), ..OpenParams::default() };
        assert_eq!(mgr.open("x", &bad).unwrap_err().kind, ErrorKind::Spec);
        let bad = OpenParams { partitions: 99, ..open_params(99) };
        assert_eq!(mgr.open("x", &bad).unwrap_err().kind, ErrorKind::Spec);
        let bad = OpenParams { package_pins: 40, ..open_params(1) };
        assert_eq!(mgr.open("x", &bad).unwrap_err().kind, ErrorKind::Spec);
        let bad = OpenParams { performance_ns: 0.0, ..open_params(1) };
        assert_eq!(mgr.open("x", &bad).unwrap_err().kind, ErrorKind::Spec);
        mgr.open("m", &open_params(2)).unwrap();
        assert_eq!(mgr.repartition("m", 99, 0).unwrap_err().kind, ErrorKind::Spec);
        assert_eq!(mgr.repartition("m", 0, 99).unwrap_err().kind, ErrorKind::Engine);
    }

    fn state_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chop-mgr-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn set_constraints_validates_and_applies() {
        let mgr = SessionManager::new(1);
        mgr.open("c", &open_params(2)).unwrap();
        assert_eq!(mgr.set_constraints("c", 0.0, 100.0).unwrap_err().kind, ErrorKind::Spec);
        assert_eq!(
            mgr.set_constraints("c", f64::NAN, 100.0).unwrap_err().kind,
            ErrorKind::Spec
        );
        assert_eq!(
            mgr.set_constraints("ghost", 1.0, 1.0).unwrap_err().kind,
            ErrorKind::UnknownSession
        );
        mgr.set_constraints("c", 50_000.0, 50_000.0).unwrap();
        let run = mgr.explore("c", &ExploreParams::default()).unwrap();
        assert!(run.trials > 0, "session stays explorable after a constraint change");
    }

    #[test]
    fn journaled_mutations_survive_recovery_with_identical_digests() {
        let dir = state_dir("recover");
        let before = {
            let (mgr, report) = SessionManager::recover(1, &dir, 0).unwrap();
            assert_eq!(report, RecoveryReport::default());
            mgr.open("keep", &open_params(2)).unwrap();
            mgr.open("gone", &open_params(1)).unwrap();
            mgr.repartition("keep", 3, 0).unwrap();
            mgr.set_constraints("keep", 40_000.0, 40_000.0).unwrap();
            mgr.close("gone").unwrap();
            mgr.explore("keep", &ExploreParams::default()).unwrap().digest
            // Dropped without any shutdown ceremony — the crash.
        };
        let (mgr, report) = SessionManager::recover(1, &dir, 0).unwrap();
        assert_eq!(report.sessions_restored, 1);
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.records_skipped, 0);
        let (names, _, _) = mgr.stats(None).unwrap();
        assert_eq!(names, vec!["keep".to_owned()]);
        let after = mgr.explore("keep", &ExploreParams::default()).unwrap().digest;
        assert_eq!(before, after, "recovered session must reproduce the digest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_only_live_sessions_and_their_req_ids() {
        let dir = state_dir("compact");
        {
            let (mgr, _) = SessionManager::recover(1, &dir, 3).unwrap();
            let open = Request::Open { session: "live".into(), params: open_params(2) };
            assert!(matches!(
                mgr.dispatch_tagged(&open, Some("open-live")),
                Response::Opened { .. }
            ));
            for i in 0..3 {
                mgr.open(&format!("tmp{i}"), &open_params(1)).unwrap();
                mgr.close(&format!("tmp{i}")).unwrap();
            }
        }
        let (mgr, report) = SessionManager::recover(1, &dir, 3).unwrap();
        assert!(
            report.records_replayed < 7,
            "compaction must have shrunk the log, got {report:?}"
        );
        assert_eq!(report.sessions_restored, 1);
        // The open's req_id survived compaction: a retry is idempotent.
        let open = Request::Open { session: "live".into(), params: open_params(2) };
        assert_eq!(
            mgr.dispatch_tagged(&open, Some("open-live")),
            Response::Opened { session: "live".into(), partitions: 2 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retried_req_id_replays_the_recorded_outcome() {
        let mgr = SessionManager::new(1);
        let open = Request::Open { session: "dup".into(), params: open_params(2) };
        let first = mgr.dispatch_tagged(&open, Some("r-1"));
        assert!(matches!(first, Response::Opened { .. }));
        // Same req_id → replayed outcome, not SessionExists.
        assert_eq!(mgr.dispatch_tagged(&open, Some("r-1")), first);
        // Different req_id → genuinely re-applied, and the failure is
        // itself recorded for *its* retries.
        let conflict = mgr.dispatch_tagged(&open, Some("r-2"));
        let Response::Error(ref e) = conflict else { panic!("{conflict:?}") };
        assert_eq!(e.kind, ErrorKind::SessionExists);
        assert_eq!(mgr.dispatch_tagged(&open, Some("r-2")), conflict);
        // Untagged requests never touch the window.
        let close = Request::Close { session: "dup".into() };
        assert!(matches!(mgr.dispatch_tagged(&close, None), Response::Closed { .. }));
        assert!(matches!(mgr.dispatch_tagged(&close, None), Response::Error(_)));
    }

    #[test]
    fn dedup_window_is_bounded_per_session() {
        let mut window = DedupWindow::default();
        for i in 0..(DEDUP_PER_SESSION + 5) {
            window.record("s", &format!("id-{i}"), Response::ShuttingDown);
        }
        assert_eq!(window.windows["s"].len(), DEDUP_PER_SESSION);
        assert!(window.lookup("s", "id-0").is_none(), "oldest entries must be evicted");
        assert!(window.lookup("s", &format!("id-{}", DEDUP_PER_SESSION + 4)).is_some());
        // Session-count bound evicts whole sessions in insertion order.
        for i in 0..DEDUP_SESSIONS {
            window.record(&format!("extra-{i}"), "x", Response::ShuttingDown);
        }
        assert!(window.lookup("s", &format!("id-{}", DEDUP_PER_SESSION + 4)).is_none());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn journal_append_failure_refuses_the_mutation() {
        use chop_core::prelude::fault::IoFaultPlan;
        let dir = state_dir("append-fail");
        let (mgr, _) = SessionManager::recover(1, &dir, 0).unwrap();
        mgr.open("ok", &open_params(2)).unwrap();
        mgr.inject_journal_faults(IoFaultPlan::none().fail_after(0));
        let err = mgr.open("refused", &open_params(1)).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert_eq!(mgr.session_count(), 1, "refused mutation must not commit");
        let err = mgr.close("ok").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert_eq!(mgr.session_count(), 1, "session must survive a refused close");
        mgr.inject_journal_faults(IoFaultPlan::none());
        mgr.close("ok").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dispatch_covers_every_request() {
        let mgr = SessionManager::new(1);
        assert_eq!(
            mgr.dispatch(&Request::Ping),
            Response::Pong {
                version: PROTOCOL_VERSION,
                role: Some("primary".into()),
                epoch: 0,
                peer: None,
            }
        );
        let open = Request::Open { session: "d".into(), params: open_params(2) };
        assert_eq!(
            mgr.dispatch(&open),
            Response::Opened { session: "d".into(), partitions: 2 }
        );
        let explored = mgr.dispatch(&Request::Explore {
            session: "d".into(),
            params: ExploreParams::default(),
        });
        assert!(matches!(explored, Response::Explored { .. }), "{explored:?}");
        assert!(matches!(
            mgr.dispatch(&Request::Stats { session: Some("d".into()) }),
            Response::Stats { .. }
        ));
        assert_eq!(
            mgr.dispatch(&Request::SetConstraints {
                session: "d".into(),
                performance_ns: 45_000.0,
                delay_ns: 45_000.0,
            }),
            Response::ConstraintsSet {
                session: "d".into(),
                performance_ns: 45_000.0,
                delay_ns: 45_000.0,
            }
        );
        assert_eq!(mgr.dispatch(&Request::Shutdown), Response::ShuttingDown);
        assert_eq!(
            mgr.dispatch(&Request::Close { session: "d".into() }),
            Response::Closed { session: "d".into() }
        );
        assert!(matches!(
            mgr.dispatch(&Request::Close { session: "d".into() }),
            Response::Error(_)
        ));
    }

    #[test]
    fn standby_refuses_direct_mutations_but_serves_reads() {
        let standby = SessionManager::new(1);
        standby.mark_standby();
        assert!(standby.is_standby());
        let open = Request::Open { session: "s".into(), params: open_params(2) };
        let Response::Error(e) = standby.dispatch(&open) else { panic!("mutation allowed") };
        assert_eq!(e.kind, ErrorKind::Standby);
        // Reads are served; explores on replicated sessions too.
        assert!(matches!(
            standby.dispatch(&Request::Stats { session: None }),
            Response::Stats { .. }
        ));
        let record = open.encode_tagged(None);
        assert_eq!(
            standby.dispatch(&Request::ReplApply { seq: 1, record, epoch: 0, primary: None }),
            Response::ReplAck { seq: 1 }
        );
        assert!(matches!(
            standby.dispatch(&Request::Explore {
                session: "s".into(),
                params: ExploreParams::default(),
            }),
            Response::Explored { .. }
        ));
    }

    #[test]
    fn replicated_records_ack_idempotently_below_the_high_water_mark() {
        let standby = SessionManager::new(1);
        standby.mark_standby();
        let open = Request::Open { session: "s".into(), params: open_params(2) };
        let record = open.encode_tagged(Some("open-1"));
        assert_eq!(
            standby.dispatch(&Request::ReplApply {
                seq: 3,
                record: record.clone(),
                epoch: 0,
                primary: None,
            }),
            Response::ReplAck { seq: 3 }
        );
        assert_eq!(standby.replication_high_water(), 3);
        // Re-delivery of the same (or an earlier) seq is acked, not
        // re-applied — no SessionExists noise, state untouched.
        assert_eq!(
            standby.dispatch(&Request::ReplApply { seq: 3, record, epoch: 0, primary: None }),
            Response::ReplAck { seq: 3 }
        );
        assert_eq!(standby.session_count(), 1);
        // A primary fences a same-epoch replication stream outright.
        let primary = SessionManager::new(1);
        let Response::Error(e) = primary.dispatch(&Request::ReplApply {
            seq: 1,
            record: String::new(),
            epoch: 0,
            primary: None,
        }) else {
            panic!("primary accepted a replication record")
        };
        assert_eq!(e.kind, ErrorKind::Fenced);
    }

    #[test]
    fn snapshot_apply_replaces_state_and_promote_flips_the_role() {
        let standby = SessionManager::new(1);
        standby.mark_standby();
        let stale = Request::Open { session: "stale".into(), params: open_params(1) };
        standby.dispatch(&Request::ReplApply {
            seq: 1,
            record: stale.encode(),
            epoch: 0,
            primary: None,
        });
        let fresh = Request::Open { session: "fresh".into(), params: open_params(2) };
        assert_eq!(
            standby.dispatch(&Request::ReplSnapshot {
                seq: 5,
                records: vec![fresh.encode_tagged(Some("open-fresh"))],
                epoch: 0,
                primary: None,
            }),
            Response::ReplAck { seq: 5 }
        );
        let (names, _, _) = standby.stats(None).unwrap();
        assert_eq!(names, vec!["fresh".to_owned()], "snapshot replaces, not merges");
        assert_eq!(standby.replication_high_water(), 5);
        // Promote: mutations flow directly, and a client retrying the
        // replicated open's req_id gets the recorded outcome.
        assert_eq!(
            standby.dispatch(&Request::Promote),
            Response::Promoted { sessions: 1, epoch: 1 }
        );
        assert!(!standby.is_standby());
        assert_eq!(
            standby.dispatch_tagged(&fresh, Some("open-fresh")),
            Response::Opened { session: "fresh".into(), partitions: 2 }
        );
        standby.repartition("fresh", 3, 0).unwrap();
    }

    #[test]
    fn optimize_commits_the_trace_and_records_the_run() {
        let mgr = SessionManager::new(1);
        mgr.open("o", &open_params(2)).unwrap();
        // Skew the start so the optimizer has something to improve.
        mgr.apply_moves("o", &[(3, 0)]).unwrap();
        let result = mgr.optimize("o", &OptimizeParams::default()).unwrap();
        assert!(result.run.trials > 0);
        let (_, _, last) = mgr.stats(Some("o")).unwrap();
        assert_eq!(last.unwrap().digest, result.run.digest, "optimize must record its run");
        // An identically prepared manager reproduces the result
        // byte-for-byte (the seeded optimizer is deterministic).
        let twin = SessionManager::new(1);
        twin.open("o", &open_params(2)).unwrap();
        twin.apply_moves("o", &[(3, 0)]).unwrap();
        let mut again = twin.optimize("o", &OptimizeParams::default()).unwrap();
        again.run.elapsed_ms = result.run.elapsed_ms; // wall-clock, not part of the contract
        assert_eq!(again, result);
    }

    #[test]
    fn optimize_rejects_unknown_nodes_and_sessions() {
        let mgr = SessionManager::new(1);
        assert_eq!(
            mgr.optimize("ghost", &OptimizeParams::default()).unwrap_err().kind,
            ErrorKind::UnknownSession
        );
        mgr.open("o", &open_params(2)).unwrap();
        let bad = OptimizeParams { pinned: vec![99], ..OptimizeParams::default() };
        assert_eq!(mgr.optimize("o", &bad).unwrap_err().kind, ErrorKind::Spec);
        assert_eq!(mgr.apply_moves("o", &[(99, 0)]).unwrap_err().kind, ErrorKind::Spec);
        assert_eq!(mgr.apply_moves("o", &[(3, 99)]).unwrap_err().kind, ErrorKind::Engine);
    }

    #[test]
    fn optimize_req_id_replays_the_recorded_outcome() {
        let mgr = SessionManager::new(1);
        mgr.open("o", &open_params(2)).unwrap();
        mgr.apply_moves("o", &[(3, 0)]).unwrap();
        let request =
            Request::Optimize { session: "o".into(), params: OptimizeParams::default() };
        let first = mgr.dispatch_tagged(&request, Some("opt-1"));
        assert!(matches!(first, Response::Optimized { .. }), "{first:?}");
        // A retry replays the recorded response instead of re-running
        // the search (and re-applying the trace) on the mutated session.
        assert_eq!(mgr.dispatch_tagged(&request, Some("opt-1")), first);
    }

    #[test]
    fn applied_moves_survive_journal_recovery() {
        let dir = state_dir("apply-moves");
        let before = {
            let (mgr, _) = SessionManager::recover(1, &dir, 0).unwrap();
            mgr.open("m", &open_params(2)).unwrap();
            mgr.apply_moves("m", &[(3, 0)]).unwrap();
            mgr.explore("m", &ExploreParams::default()).unwrap().digest
            // Dropped without any shutdown ceremony — the crash.
        };
        let (mgr, report) = SessionManager::recover(1, &dir, 0).unwrap();
        assert_eq!(report.sessions_restored, 1);
        assert_eq!(report.records_replayed, 2);
        let after = mgr.explore("m", &ExploreParams::default()).unwrap().digest;
        assert_eq!(before, after, "replayed moves must reproduce the digest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn standby_refuses_optimize_and_apply_moves() {
        let standby = SessionManager::new(1);
        standby.mark_standby();
        let optimize =
            Request::Optimize { session: "s".into(), params: OptimizeParams::default() };
        let Response::Error(e) = standby.dispatch(&optimize) else {
            panic!("optimize allowed")
        };
        assert_eq!(e.kind, ErrorKind::Standby);
        let apply = Request::ApplyMoves { session: "s".into(), moves: vec![(3, 0)] };
        let Response::Error(e) = standby.dispatch(&apply) else { panic!("apply allowed") };
        assert_eq!(e.kind, ErrorKind::Standby);
    }

    #[test]
    fn committed_mutations_ship_in_sequence_order() {
        let mgr = SessionManager::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        mgr.set_repl_sink(tx);
        mgr.open("a", &open_params(2)).unwrap();
        mgr.repartition("a", 3, 0).unwrap();
        // A refused mutation ships nothing.
        assert!(mgr.open("a", &open_params(2)).is_err());
        mgr.close("a").unwrap();
        let events: Vec<ReplEvent> = rx.try_iter().collect();
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| match e {
                ReplEvent::Record { seq, .. } | ReplEvent::Snapshot { seq, .. } => *seq,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2, 3], "one event per commit, in order: {events:?}");
        // Shipping a record stream into a standby reproduces the state
        // machine: the final close leaves it empty.
        let standby = SessionManager::new(1);
        standby.mark_standby();
        for event in events {
            let ReplEvent::Record { seq, line } = event else { panic!("unexpected snapshot") };
            assert_eq!(
                standby.dispatch(&Request::ReplApply {
                    seq,
                    record: line,
                    epoch: 0,
                    primary: None,
                }),
                Response::ReplAck { seq }
            );
        }
        assert_eq!(standby.session_count(), 0);
    }
}
