//! `chop-service` — CHOP as a long-running partitioning service.
//!
//! The `chop serve` subcommand (and any embedder of [`Server`]) exposes
//! the core [`chop_core::Session`] workflow over TCP: clients open named
//! sessions, explore them, move nodes between partitions and read
//! statistics, all over a newline-delimited JSON protocol
//! ([`protocol`], version [`protocol::PROTOCOL_VERSION`]).
//!
//! What the service adds over one-shot `chop check` runs:
//!
//! * **Concurrent named sessions** — a [`manager::SessionManager`] keeps
//!   every open session; explorations on different connections run in
//!   parallel on a bounded worker pool.
//! * **A shared prediction cache** — all sessions feed one
//!   [`chop_core::PredictionCache`], so opening the same spec twice (or
//!   re-exploring after a `repartition`) reuses prior BAD predictions
//!   across sessions and connections.
//! * **Readiness-driven serving** — one epoll reactor thread ([`net`])
//!   owns every connection's I/O, so tens of thousands of mostly-idle
//!   clients cost registrations, not threads; `--max-connections` and
//!   `--idle-timeout-ms` bound fd and buffer usage.
//! * **Typed backpressure and fault isolation** — past `--max-inflight`
//!   explorations clients get a `busy` response; a client that stops
//!   reading has its output queue capped and its reads paused; a
//!   panicking request becomes one `internal` error reply, never a dead
//!   server.
//! * **Graceful drain** — the `shutdown` request stops the accept loop,
//!   lets in-flight work finish and exits cleanly.
//! * **Warm-standby replication and failover** — `--replicate-to` ships
//!   every committed journal record to a standby ([`replication`]), and
//!   `chop router` ([`router`]) consistent-hashes sessions over backend
//!   pairs, promoting the standby when a primary dies.
//!
//! The wire format is hand-rolled JSON ([`json`]) because this workspace
//! builds offline against a no-op `serde` stub.

#![deny(missing_docs)]
// `net::sys` holds the epoll/eventfd FFI (the approved dependency list
// has no `libc`); it opts back in with a module-level allow. Everything
// else stays `unsafe`-free.
#![deny(unsafe_code)]

#[cfg(feature = "fault-inject")]
pub mod chaos;
pub mod client;
pub mod journal;
pub mod json;
pub mod manager;
#[deny(clippy::unwrap_used)]
pub mod net;
mod pool;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy, DEFAULT_CONNECT_TIMEOUT};
pub use journal::{Journal, JournalEntry, JournalScan};
pub use manager::{build_session, RecoveryReport, SessionManager};
pub use net::ShutdownGate;
pub use protocol::{
    BudgetEnvelope, ErrorKind, ExploreParams, MoveSummary, OpenParams, OptimizeParams,
    OptimizeSummary, Request, Response, RunSummary, ServiceError, PROTOCOL_VERSION,
};
pub use replication::{ReplEvent, Replicator};
pub use router::{BackendSpec, HashRing, Router, RouterConfig};
pub use server::{ServeConfig, Server};
