//! `chop router` — a thin consistent-hashing proxy over replicated
//! backend pairs.
//!
//! The router owns no session state. It hashes each request's session
//! name onto one of N backend *pairs* (a primary `chop serve
//! --replicate-to` plus its warm standby) with a [`HashRing`], forwards
//! the request to the pair's active node, and relays the reply. Two
//! things make a dead node survivable:
//!
//! * **Failover** — when the active node stops answering (a forwarded
//!   request fails, or the health loop misses [`HEALTH_STRIKES`]
//!   consecutive pings), the router promotes the pair's standby with
//!   [`Request::Promote`] and re-points the pair at it.
//! * **Exactly-once retry** — a request that died with its backend is
//!   re-sent to the promoted standby only when that is safe: reads and
//!   explores always (re-running is pure), mutations only when tagged
//!   with a `req_id` (replication delivered the primary's dedup window to
//!   the standby, so a retry of an already-committed mutation is answered
//!   from the recorded outcome, not applied twice). An untagged mutation
//!   gets a typed error instead of a blind, possibly-double apply.
//!
//! The ring uses unseeded FNV-1a over `"label#vnode"` strings, so
//! assignment is deterministic across router restarts, and removing a
//! pair remaps only the sessions that lived on it (verified by proptests
//! in `tests/ring_props.rs`).

use std::collections::HashMap;
use std::io::ErrorKind as IoErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::client::{Client, ClientError, RetryPolicy};
use crate::net::{serve_blocking_lines, ShutdownGate, POLL_INTERVAL};
use crate::protocol::{ErrorKind, Request, Response, ServiceError};

/// Virtual nodes per backend pair on the ring: enough to spread sessions
/// evenly across a handful of pairs without a noticeable ring.
const VNODES_PER_PAIR: usize = 64;
/// Consecutive failed health pings before the health loop fails a pair
/// over (a forwarded request failing trips failover immediately).
const HEALTH_STRIKES: u32 = 2;
/// Dial bound for backend connections — a dead node must fail fast.
const BACKEND_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Per-ping budget for the health loop.
const HEALTH_PING_BUDGET_MS: u64 = 500;
/// Retry budget for the `promote` call during failover (the standby is
/// alive but may be mid-apply).
const PROMOTE_BUDGET_MS: u64 = 2_000;

/// FNV-1a 64-bit with an avalanche finalizer. Unseeded on purpose: ring
/// placement must be identical across process restarts for router
/// failover to be transparent. Raw FNV clusters similar short strings
/// ("addr#0", "addr#1", …) into nearby hashes, which starves ring
/// positions; the final mix spreads them uniformly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring: each label contributes `vnodes` points, keys
/// land on the first point clockwise from their own hash.
pub struct HashRing {
    labels: Vec<String>,
    /// `(point hash, label index)`, sorted by hash.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per label. Order of `labels`
    /// does not affect placement (points are positioned by hash alone),
    /// but [`assign`](Self::assign) returns indices into it.
    #[must_use]
    pub fn new(labels: Vec<String>, vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(labels.len() * vnodes.max(1));
        for (index, label) in labels.iter().enumerate() {
            for vnode in 0..vnodes.max(1) {
                #[allow(clippy::cast_possible_truncation)]
                points.push((fnv1a(format!("{label}#{vnode}").as_bytes()), index as u32));
            }
        }
        points.sort_unstable();
        Self { labels, points }
    }

    /// The label index `key` lands on; `None` for an empty ring.
    #[must_use]
    pub fn assign(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a(key.as_bytes());
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let (_, index) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(index as usize)
    }

    /// The label `key` lands on; `None` for an empty ring.
    #[must_use]
    pub fn assign_label(&self, key: &str) -> Option<&str> {
        self.assign(key).map(|i| self.labels[i].as_str())
    }

    /// The labels this ring was built over, in construction order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// One replicated backend pair, as configured on the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// The primary's `host:port`.
    pub primary: String,
    /// Its warm standby's `host:port`, if the pair has one.
    pub standby: Option<String>,
}

impl BackendSpec {
    /// Parses `primary[,standby]`.
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty or over-split spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(',').map(str::trim);
        let primary = parts.next().unwrap_or_default();
        if primary.is_empty() {
            return Err(format!("backend pair {spec:?} has no primary address"));
        }
        let standby = parts.next().map(str::to_owned).filter(|s| !s.is_empty());
        if parts.next().is_some() {
            return Err(format!("backend pair {spec:?} has more than two addresses"));
        }
        Ok(Self { primary: primary.to_owned(), standby })
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// The backend pairs sessions are sharded over.
    pub pairs: Vec<BackendSpec>,
    /// Health-check cadence for active backends.
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { pairs: Vec::new(), health_interval: Duration::from_millis(500) }
    }
}

/// Which node of a pair is live, and how the health loop is feeling
/// about it.
struct PairState {
    /// The address requests are forwarded to.
    active: String,
    /// Set once the standby has been promoted — after that the pair has
    /// no further failover target.
    promoted: bool,
    /// Consecutive failed health pings against `active`.
    strikes: u32,
}

/// One pair plus its mutable state. The mutex serializes failover:
/// however many request threads and the health loop notice a death at
/// once, exactly one `promote` is sent.
struct Pair {
    spec: BackendSpec,
    state: Mutex<PairState>,
}

impl Pair {
    fn new(spec: BackendSpec) -> Self {
        let active = spec.primary.clone();
        Self { spec, state: Mutex::new(PairState { active, promoted: false, strikes: 0 }) }
    }

    fn active(&self) -> String {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).active.clone()
    }

    /// Fails the pair over *away from* `failed`: promotes the standby
    /// and re-points the pair at it. Returns the address now active, or
    /// `None` when the pair is out of nodes. Idempotent — a concurrent
    /// caller that lost the race just gets the already-promoted address.
    /// `gate` wakes the promote call's retry backoff on shutdown.
    fn fail_over(&self, failed: &str, gate: &ShutdownGate) -> Option<String> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.active != failed {
            // Someone already failed over; the new active is the answer.
            return Some(state.active.clone());
        }
        if state.promoted {
            return None; // the standby died too
        }
        let standby = self.spec.standby.as_ref()?;
        match promote(standby, gate) {
            Ok(sessions) => {
                eprintln!(
                    "chop-router: backend {failed} is down; promoted standby {standby} \
                     ({sessions} sessions)"
                );
                state.active = standby.clone();
                state.promoted = true;
                state.strikes = 0;
                Some(state.active.clone())
            }
            Err(e) => {
                eprintln!("chop-router: failed to promote standby {standby}: {e}");
                None
            }
        }
    }
}

/// Sends `promote` to a standby, returning its session count.
fn promote(addr: &str, gate: &ShutdownGate) -> Result<u64, ClientError> {
    let mut client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
    let policy = RetryPolicy::with_budget_ms(PROMOTE_BUDGET_MS);
    match client.request_with_retry_until(&Request::Promote, None, &policy, gate)? {
        Response::Promoted { sessions } => Ok(sessions),
        other => Err(ClientError::Protocol(ServiceError::protocol(format!(
            "unexpected promote reply: {}",
            other.encode()
        )))),
    }
}

/// Everything the connection and health threads share.
struct RouterState {
    ring: HashRing,
    pairs: Vec<Pair>,
}

/// A bound, not-yet-running router instance.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    shutdown: Arc<ShutdownGate>,
    health_interval: Duration,
}

impl Router {
    /// Binds the router's listener. Pass port 0 to let the OS pick.
    ///
    /// # Errors
    ///
    /// The bind failure, or `InvalidInput` for an empty pair list.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> std::io::Result<Self> {
        if config.pairs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend pair",
            ));
        }
        // Pairs are labeled by their primary address: stable across
        // router restarts no matter which node of the pair is active.
        let labels = config.pairs.iter().map(|p| p.primary.clone()).collect();
        let state = RouterState {
            ring: HashRing::new(labels, VNODES_PER_PAIR),
            pairs: config.pairs.into_iter().map(Pair::new).collect(),
        };
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            shutdown: Arc::new(ShutdownGate::new()),
            health_interval: config.health_interval,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain gate, for embedders (a signal hook calls
    /// [`trigger`](ShutdownGate::trigger)); the wire `shutdown` request
    /// trips the same gate. Unlike a plain flag, tripping it *wakes* the
    /// health loop and any retry backoff mid-sleep.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<ShutdownGate> {
        Arc::clone(&self.shutdown)
    }

    /// Proxies until a `shutdown` request (which the router answers
    /// itself — it is not forwarded to the backends).
    ///
    /// # Errors
    ///
    /// Only fatal listener errors.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let health = {
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let interval = self.health_interval;
            std::thread::Builder::new()
                .name("chop-router-health".into())
                .spawn(move || health_loop(&state, &shutdown, interval))
                .expect("failed to spawn health thread")
        };
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.is_triggered() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.retain(|h| !h.is_finished());
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &state, &shutdown);
                    }));
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    self.shutdown.wait_for(POLL_INTERVAL);
                }
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
        let _ = health.join();
        Ok(())
    }
}

/// Pings every pair's active node once per interval; [`HEALTH_STRIKES`]
/// consecutive misses fail the pair over without waiting for a client
/// request to trip on the dead node. The gate wakes the full-interval
/// wait (and every ping backoff) the moment shutdown trips, so drain
/// latency no longer depends on the health interval.
fn health_loop(state: &RouterState, shutdown: &ShutdownGate, interval: Duration) {
    loop {
        if shutdown.wait_for(interval) {
            return;
        }
        for pair in &state.pairs {
            let addr = pair.active();
            if ping(&addr, shutdown).is_ok() {
                pair.state.lock().unwrap_or_else(PoisonError::into_inner).strikes = 0;
                continue;
            }
            let strikes = {
                let mut st = pair.state.lock().unwrap_or_else(PoisonError::into_inner);
                if st.active != addr {
                    continue; // a request thread already failed over
                }
                st.strikes += 1;
                st.strikes
            };
            if strikes >= HEALTH_STRIKES {
                let _ = pair.fail_over(&addr, shutdown);
            }
        }
    }
}

fn ping(addr: &str, gate: &ShutdownGate) -> Result<(), ClientError> {
    let mut client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
    let policy = RetryPolicy {
        attempt_timeout: Some(Duration::from_millis(HEALTH_PING_BUDGET_MS)),
        ..RetryPolicy::with_budget_ms(HEALTH_PING_BUDGET_MS)
    };
    match client.request_with_retry_until(&Request::Ping, None, &policy, gate)? {
        Response::Pong { .. } => Ok(()),
        other => Err(ClientError::Protocol(ServiceError::protocol(format!(
            "unexpected ping reply: {}",
            other.encode()
        )))),
    }
}

/// Per-connection cache of backend connections: pair index → the address
/// it was dialed for and the live client.
type BackendConns = HashMap<usize, (String, Client)>;

/// Reads newline-delimited requests off one client socket, forwarding
/// each to its pair's active backend. The framing (oversized and
/// truncated lines get a typed `protocol` error before the close) is
/// [`serve_blocking_lines`] — the same rules the server enforces.
fn handle_connection(stream: TcpStream, state: &RouterState, shutdown: &ShutdownGate) {
    let mut conns: BackendConns = HashMap::new();
    serve_blocking_lines(stream, shutdown, |line| respond(line, state, &mut conns, shutdown));
}

/// Decodes one line and routes it: `shutdown` stops the router itself;
/// everything else is forwarded to the session's pair, with
/// promote-and-retry on backend death.
fn respond(
    line: &str,
    state: &RouterState,
    conns: &mut BackendConns,
    shutdown: &ShutdownGate,
) -> Response {
    let (request, req_id) = match Request::decode_tagged(line) {
        Ok(decoded) => decoded,
        Err(e) => return Response::Error(e),
    };
    if matches!(request, Request::Shutdown) {
        shutdown.trigger();
        return Response::ShuttingDown;
    }
    forward(state, conns, &request, req_id.as_deref(), shutdown)
}

fn forward(
    state: &RouterState,
    conns: &mut BackendConns,
    request: &Request,
    req_id: Option<&str>,
    gate: &ShutdownGate,
) -> Response {
    let key = request.session().unwrap_or("");
    let Some(index) = state.ring.assign(key) else {
        return Response::Error(ServiceError::new(ErrorKind::Internal, "empty backend ring"));
    };
    let pair = &state.pairs[index];
    let active = pair.active();
    match send_via(conns, index, &active, request, req_id) {
        Ok(response) => response,
        Err(first_err) => {
            conns.remove(&index);
            let Some(next) = pair.fail_over(&active, gate) else {
                return Response::Error(ServiceError::new(
                    ErrorKind::Internal,
                    format!("no live backend for this session: {first_err}"),
                ));
            };
            // The request died with its backend. Replaying it on the
            // promoted standby is exactly-once only for reads/explores
            // (pure) and req_id-tagged mutations (answered from the
            // replicated dedup window if already applied).
            if request.is_mutation() && req_id.is_none() {
                return Response::Error(ServiceError::new(
                    ErrorKind::Internal,
                    "backend died mid-request; an untagged mutation cannot be retried \
                     safely — tag it with a req_id and resend",
                ));
            }
            match send_via(conns, index, &next, request, req_id) {
                Ok(response) => response,
                Err(e) => {
                    conns.remove(&index);
                    Response::Error(ServiceError::new(
                        ErrorKind::Internal,
                        format!("backend failed over but the standby did not answer: {e}"),
                    ))
                }
            }
        }
    }
}

/// Sends one request over the cached connection for `index`, dialing (or
/// re-dialing, when the active address changed) as needed.
fn send_via(
    conns: &mut BackendConns,
    index: usize,
    addr: &str,
    request: &Request,
    req_id: Option<&str>,
) -> Result<Response, ClientError> {
    let stale = conns.get(&index).is_none_or(|(dialed, _)| dialed != addr);
    if stale {
        let client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
        conns.insert(index, (addr.to_owned(), client));
    }
    let (_, client) = conns.get_mut(&index).expect("connection just ensured");
    client.request_tagged(request, req_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_assignment_is_deterministic_and_total() {
        let labels = vec!["a:1".to_owned(), "b:2".to_owned(), "c:3".to_owned()];
        let ring = HashRing::new(labels.clone(), 64);
        let again = HashRing::new(labels, 64);
        for key in ["", "alpha", "beta", "a-very-long-session-name-with-dashes"] {
            let index = ring.assign(key).expect("non-empty ring");
            assert!(index < 3);
            assert_eq!(again.assign(key), Some(index), "placement must be reproducible");
        }
        assert!(HashRing::new(Vec::new(), 64).assign("x").is_none());
    }

    #[test]
    fn ring_spreads_sessions_across_pairs() {
        let labels: Vec<String> = (0..4).map(|i| format!("node{i}:1991")).collect();
        let ring = HashRing::new(labels, 64);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.assign(&format!("session-{i}")).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                count > 100,
                "pair {i} got {count}/1000 sessions — ring is badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn backend_spec_parses_pairs() {
        assert_eq!(
            BackendSpec::parse("127.0.0.1:1991,127.0.0.1:1992").unwrap(),
            BackendSpec {
                primary: "127.0.0.1:1991".into(),
                standby: Some("127.0.0.1:1992".into()),
            }
        );
        assert_eq!(
            BackendSpec::parse("127.0.0.1:1991").unwrap(),
            BackendSpec { primary: "127.0.0.1:1991".into(), standby: None }
        );
        assert!(BackendSpec::parse("").is_err());
        assert!(BackendSpec::parse("a,b,c").is_err());
        assert!(BackendSpec::parse(",b").is_err());
    }

    #[test]
    fn fail_over_is_idempotent_and_terminal_without_a_standby() {
        let gate = ShutdownGate::new();
        let pair = Pair::new(BackendSpec { primary: "10.0.0.1:1".into(), standby: None });
        assert_eq!(pair.active(), "10.0.0.1:1");
        assert!(pair.fail_over("10.0.0.1:1", &gate).is_none(), "no standby, nowhere to go");
        // A caller holding a stale address learns the current active.
        let pair = Pair::new(BackendSpec { primary: "10.0.0.1:1".into(), standby: None });
        {
            let mut st = pair.state.lock().unwrap();
            st.active = "10.0.0.2:1".into();
            st.promoted = true;
        }
        assert_eq!(pair.fail_over("10.0.0.1:1", &gate), Some("10.0.0.2:1".into()));
        assert!(pair.fail_over("10.0.0.2:1", &gate).is_none(), "the standby died too");
    }
}
