//! `chop router` — a thin consistent-hashing proxy over replicated
//! backend pairs.
//!
//! The router owns no session state. It hashes each request's session
//! name onto one of N backend *pairs* (a primary `chop serve --peer`
//! plus its warm standby) with a [`HashRing`], forwards the request to
//! the pair's active node, and relays the reply. Several things make a
//! dead node survivable:
//!
//! * **Failover** — when the active node stops answering (a forwarded
//!   request fails, or the health loop misses [`HEALTH_STRIKES`]
//!   consecutive pings), the router promotes the pair's standby with
//!   [`Request::Promote`] and re-points the pair at it.
//! * **Re-arm** — failover is no longer terminal: the failed node's
//!   address becomes the pair's *unarmed* standby, and the health loop
//!   watches for it (or whatever address the active node reports as its
//!   replication peer) to come back demoted and epoch-synced, at which
//!   point the pair is re-armed for the next failover.
//! * **Topology re-learning** — a forwarded request answered with a
//!   typed `standby`/`fenced` refusal carrying the real primary's
//!   address proves the pair state is stale (a failover happened behind
//!   the router's back, or a node rejoined demoted): the router adopts
//!   the named primary and re-sends — a refusal means nothing was
//!   applied, so the re-send is safe even for untagged mutations.
//! * **Exactly-once retry** — a request that died with its backend is
//!   re-sent to the promoted standby only when that is safe: reads and
//!   explores always (re-running is pure), mutations only when tagged
//!   with a `req_id` (replication delivered the primary's dedup window to
//!   the standby, so a retry of an already-committed mutation is answered
//!   from the recorded outcome, not applied twice). An untagged mutation
//!   gets a typed error instead of a blind, possibly-double apply.
//!
//! Membership is live: `add_pair` / `remove_pair` admin requests rebuild
//! the ring and migrate the sessions whose assignment moved (genesis +
//! mutation history over the wire via `export` / `import`, then a
//! `close` on the source), and `router_status` reports per-pair state.
//! Mutations committed on a moving session between its export and the
//! ring swap are not carried over — run membership changes during quiet
//! periods (DESIGN.md §16).
//!
//! The ring uses unseeded FNV-1a over `"label#vnode"` strings, so
//! assignment is deterministic across router restarts, and removing a
//! pair remaps only the sessions that lived on it (verified by proptests
//! in `tests/ring_props.rs`).

use std::collections::HashMap;
use std::io::ErrorKind as IoErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::client::{Client, ClientError, Jitter, RetryPolicy};
use crate::net::{serve_blocking_lines, ShutdownGate, POLL_INTERVAL};
use crate::protocol::{ErrorKind, Request, Response, ServiceError};

/// Virtual nodes per backend pair on the ring: enough to spread sessions
/// evenly across a handful of pairs without a noticeable ring.
const VNODES_PER_PAIR: usize = 64;
/// Consecutive failed health pings before the health loop fails a pair
/// over (a forwarded request failing trips failover immediately).
const HEALTH_STRIKES: u32 = 2;
/// Dial bound for backend connections — a dead node must fail fast.
const BACKEND_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Per-ping budget for the health loop.
const HEALTH_PING_BUDGET_MS: u64 = 500;
/// Retry budget for the `promote` call during failover (the standby is
/// alive but may be mid-apply).
const PROMOTE_BUDGET_MS: u64 = 2_000;

/// FNV-1a 64-bit with an avalanche finalizer. Unseeded on purpose: ring
/// placement must be identical across process restarts for router
/// failover to be transparent. Raw FNV clusters similar short strings
/// ("addr#0", "addr#1", …) into nearby hashes, which starves ring
/// positions; the final mix spreads them uniformly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring: each label contributes `vnodes` points, keys
/// land on the first point clockwise from their own hash.
pub struct HashRing {
    labels: Vec<String>,
    /// `(point hash, label index)`, sorted by hash.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per label. Order of `labels`
    /// does not affect placement (points are positioned by hash alone),
    /// but [`assign`](Self::assign) returns indices into it.
    #[must_use]
    pub fn new(labels: Vec<String>, vnodes: usize) -> Self {
        let mut points = Vec::with_capacity(labels.len() * vnodes.max(1));
        for (index, label) in labels.iter().enumerate() {
            for vnode in 0..vnodes.max(1) {
                #[allow(clippy::cast_possible_truncation)]
                points.push((fnv1a(format!("{label}#{vnode}").as_bytes()), index as u32));
            }
        }
        points.sort_unstable();
        Self { labels, points }
    }

    /// The label index `key` lands on; `None` for an empty ring.
    #[must_use]
    pub fn assign(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a(key.as_bytes());
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let (_, index) = self.points[if at == self.points.len() { 0 } else { at }];
        Some(index as usize)
    }

    /// The label `key` lands on; `None` for an empty ring.
    #[must_use]
    pub fn assign_label(&self, key: &str) -> Option<&str> {
        self.assign(key).map(|i| self.labels[i].as_str())
    }

    /// The labels this ring was built over, in construction order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// One replicated backend pair, as configured on the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// The primary's `host:port`.
    pub primary: String,
    /// Its warm standby's `host:port`, if the pair has one.
    pub standby: Option<String>,
}

impl BackendSpec {
    /// Parses `primary[,standby]`.
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty or over-split spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(',').map(str::trim);
        let primary = parts.next().unwrap_or_default();
        if primary.is_empty() {
            return Err(format!("backend pair {spec:?} has no primary address"));
        }
        let standby = parts.next().map(str::to_owned).filter(|s| !s.is_empty());
        if parts.next().is_some() {
            return Err(format!("backend pair {spec:?} has more than two addresses"));
        }
        Ok(Self { primary: primary.to_owned(), standby })
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// The backend pairs sessions are sharded over.
    pub pairs: Vec<BackendSpec>,
    /// Health-check cadence for active backends (jittered ±25% at run
    /// time so many pairs and routers do not ping in lockstep).
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { pairs: Vec::new(), health_interval: Duration::from_millis(500) }
    }
}

/// Which node of a pair is live, and how the health loop is feeling
/// about it.
struct PairState {
    /// The address requests are forwarded to.
    active: String,
    /// The failover target's address, when one is known. After a
    /// failover this is the *failed* node's last address, kept so the
    /// health loop can watch for its rejoin (and replaced by whatever
    /// address the active node reports as its replication peer).
    standby: Option<String>,
    /// Whether `standby` is believed demoted, epoch-synced, and ready to
    /// promote. Cleared by every failover; re-set by the health loop
    /// once the rejoined standby answers pings at the active's epoch.
    armed: bool,
    /// Consecutive failed health pings against `active`.
    strikes: u32,
}

/// One pair plus its mutable state. The mutex serializes failover:
/// however many request threads and the health loop notice a death at
/// once, exactly one `promote` is sent.
struct Pair {
    /// The ring label: the configured primary address, stable across
    /// failovers and router restarts.
    label: String,
    state: Mutex<PairState>,
}

impl Pair {
    fn new(spec: BackendSpec) -> Self {
        let armed = spec.standby.is_some();
        Self {
            label: spec.primary.clone(),
            state: Mutex::new(PairState {
                active: spec.primary,
                standby: spec.standby,
                armed,
                strikes: 0,
            }),
        }
    }

    fn active(&self) -> String {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).active.clone()
    }

    /// Fails the pair over *away from* `failed`: promotes the armed
    /// standby and re-points the pair at it, keeping the failed address
    /// as the (unarmed) rejoin candidate. Returns the address now
    /// active, or `None` when the pair has no armed standby. Idempotent
    /// — a concurrent caller that lost the race just gets the
    /// already-promoted address. `gate` wakes the promote call's retry
    /// backoff on shutdown.
    fn fail_over(&self, failed: &str, gate: &ShutdownGate) -> Option<String> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.active != failed {
            // Someone already failed over; the new active is the answer.
            return Some(state.active.clone());
        }
        if !state.armed {
            return None; // no standby, or it has not rejoined yet
        }
        let standby = state.standby.clone()?;
        match promote(&standby, gate) {
            Ok((sessions, epoch)) => {
                eprintln!(
                    "chop-router: backend {failed} is down; promoted standby {standby} \
                     ({sessions} sessions, epoch {epoch})"
                );
                state.standby = Some(std::mem::replace(&mut state.active, standby));
                state.armed = false;
                state.strikes = 0;
                Some(state.active.clone())
            }
            Err(e) => {
                eprintln!("chop-router: failed to promote standby {standby}: {e}");
                None
            }
        }
    }

    /// Re-points the pair at `redirect` — the primary address a typed
    /// `standby`/`fenced` refusal named. The refusing node keeps serving
    /// as the (unarmed) standby candidate until the health loop confirms
    /// it is synced.
    fn adopt_active(&self, redirect: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.active == redirect {
            return;
        }
        eprintln!(
            "chop-router: pair {}: re-learned active {redirect} from a typed refusal by {}",
            self.label, state.active
        );
        let demoted = std::mem::replace(&mut state.active, redirect.to_owned());
        state.standby = Some(demoted);
        state.armed = false;
        state.strikes = 0;
    }
}

/// Sends `promote` to a standby, returning its session count and the
/// epoch its promotion put in force.
fn promote(addr: &str, gate: &ShutdownGate) -> Result<(u64, u64), ClientError> {
    let mut client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
    let policy = RetryPolicy::with_budget_ms(PROMOTE_BUDGET_MS);
    match client.request_with_retry_until(&Request::Promote, None, &policy, gate)? {
        Response::Promoted { sessions, epoch } => Ok((sessions, epoch)),
        other => Err(ClientError::Protocol(ServiceError::protocol(format!(
            "unexpected promote reply: {}",
            other.encode()
        )))),
    }
}

/// The sharding topology a request routes on: the ring plus one
/// [`Pair`] per label. Immutable once published — membership changes
/// build a new one and swap it in, so in-flight requests keep the
/// topology they started with (pairs themselves are shared, preserving
/// their runtime state across the swap).
struct Shards {
    ring: HashRing,
    pairs: Vec<Arc<Pair>>,
}

impl Shards {
    fn build(pairs: Vec<Arc<Pair>>) -> Self {
        let labels = pairs.iter().map(|p| p.label.clone()).collect();
        Self { ring: HashRing::new(labels, VNODES_PER_PAIR), pairs }
    }
}

/// Everything the connection and health threads share.
struct RouterState {
    /// The current topology; loaded per request, swapped on membership
    /// changes.
    shards: Mutex<Arc<Shards>>,
    /// Serializes `add_pair` / `remove_pair` so two concurrent
    /// membership changes cannot interleave their migrations.
    membership: Mutex<()>,
}

impl RouterState {
    fn shards(&self) -> Arc<Shards> {
        self.shards.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// A bound, not-yet-running router instance.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    shutdown: Arc<ShutdownGate>,
    health_interval: Duration,
}

impl Router {
    /// Binds the router's listener. Pass port 0 to let the OS pick.
    ///
    /// # Errors
    ///
    /// The bind failure, or `InvalidInput` for an empty pair list.
    pub fn bind(addr: impl ToSocketAddrs, config: RouterConfig) -> std::io::Result<Self> {
        if config.pairs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend pair",
            ));
        }
        // Pairs are labeled by their primary address: stable across
        // router restarts no matter which node of the pair is active.
        let pairs = config.pairs.into_iter().map(|spec| Arc::new(Pair::new(spec))).collect();
        let state = RouterState {
            shards: Mutex::new(Arc::new(Shards::build(pairs))),
            membership: Mutex::new(()),
        };
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(state),
            shutdown: Arc::new(ShutdownGate::new()),
            health_interval: config.health_interval,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain gate, for embedders (a signal hook calls
    /// [`trigger`](ShutdownGate::trigger)); the wire `shutdown` request
    /// trips the same gate. Unlike a plain flag, tripping it *wakes* the
    /// health loop and any retry backoff mid-sleep.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<ShutdownGate> {
        Arc::clone(&self.shutdown)
    }

    /// Proxies until a `shutdown` request (which the router answers
    /// itself — it is not forwarded to the backends).
    ///
    /// # Errors
    ///
    /// Only fatal listener errors.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let health = {
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let interval = self.health_interval;
            std::thread::Builder::new()
                .name("chop-router-health".into())
                .spawn(move || health_loop(&state, &shutdown, interval))
                .expect("failed to spawn health thread")
        };
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.is_triggered() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.retain(|h| !h.is_finished());
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &state, &shutdown);
                    }));
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                    self.shutdown.wait_for(POLL_INTERVAL);
                }
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
        let _ = health.join();
        Ok(())
    }
}

/// What a health ping learned about a node.
struct PongInfo {
    role: Option<String>,
    epoch: u64,
    peer: Option<String>,
}

/// Pings every pair's active node once per (jittered) interval;
/// [`HEALTH_STRIKES`] consecutive misses fail the pair over without
/// waiting for a client request to trip on the dead node. Healthy pings
/// also drive **re-arming**: an unarmed pair's standby candidate (the
/// failed ex-active, or whatever the active reports as its replication
/// peer) is pinged too, and once it answers as a demoted standby at the
/// active's epoch the pair is armed for the next failover. The gate
/// wakes the full-interval wait (and every ping backoff) the moment
/// shutdown trips, so drain latency no longer depends on the interval.
fn health_loop(state: &RouterState, shutdown: &ShutdownGate, interval: Duration) {
    // ±25% jitter around the configured cadence: many pairs (or many
    // routers sharing a standby host) must not ping in lockstep.
    let mut jitter = Jitter::from_entropy(interval * 3 / 4, interval * 5 / 4);
    loop {
        if shutdown.wait_for(jitter.next_sleep()) {
            return;
        }
        let shards = state.shards();
        for pair in &shards.pairs {
            let addr = pair.active();
            match ping(&addr, shutdown) {
                Ok(pong) => {
                    pair.state.lock().unwrap_or_else(PoisonError::into_inner).strikes = 0;
                    maybe_rearm(pair, &addr, &pong, shutdown);
                }
                Err(_) => {
                    let strikes = {
                        let mut st = pair.state.lock().unwrap_or_else(PoisonError::into_inner);
                        if st.active != addr {
                            continue; // a request thread already failed over
                        }
                        st.strikes += 1;
                        st.strikes
                    };
                    if strikes >= HEALTH_STRIKES {
                        let _ = pair.fail_over(&addr, shutdown);
                    }
                }
            }
        }
    }
}

/// Re-arms an unarmed pair when its standby candidate has rejoined: the
/// candidate (the active node's reported replication peer, falling back
/// to the last known standby address) must answer a ping as a demoted
/// `standby`/`fenced` node at the active's epoch — proof it heard about
/// the failover and is resyncing from the current primary.
fn maybe_rearm(pair: &Pair, active: &str, active_pong: &PongInfo, gate: &ShutdownGate) {
    let candidate = {
        let st = pair.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.armed {
            return;
        }
        active_pong.peer.clone().or_else(|| st.standby.clone())
    };
    let Some(candidate) = candidate else { return };
    if candidate == active {
        return;
    }
    let Ok(pong) = ping(&candidate, gate) else { return };
    let demoted = matches!(pong.role.as_deref(), Some("standby" | "fenced"));
    if !demoted || pong.epoch != active_pong.epoch {
        return;
    }
    let mut st = pair.state.lock().unwrap_or_else(PoisonError::into_inner);
    if st.armed || st.active != active {
        return;
    }
    st.standby = Some(candidate.clone());
    st.armed = true;
    eprintln!(
        "chop-router: pair {}: standby {candidate} rejoined at epoch {}; pair re-armed",
        pair.label, pong.epoch
    );
}

fn ping(addr: &str, gate: &ShutdownGate) -> Result<PongInfo, ClientError> {
    let mut client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
    let policy = RetryPolicy {
        attempt_timeout: Some(Duration::from_millis(HEALTH_PING_BUDGET_MS)),
        ..RetryPolicy::with_budget_ms(HEALTH_PING_BUDGET_MS)
    };
    match client.request_with_retry_until(&Request::Ping, None, &policy, gate)? {
        Response::Pong { role, epoch, peer, .. } => Ok(PongInfo { role, epoch, peer }),
        other => Err(ClientError::Protocol(ServiceError::protocol(format!(
            "unexpected ping reply: {}",
            other.encode()
        )))),
    }
}

/// Per-connection cache of backend connections, keyed by address (the
/// same node may serve several pairs' sessions after membership churn).
type BackendConns = HashMap<String, Client>;

/// Reads newline-delimited requests off one client socket, forwarding
/// each to its pair's active backend. The framing (oversized and
/// truncated lines get a typed `protocol` error before the close) is
/// [`serve_blocking_lines`] — the same rules the server enforces.
fn handle_connection(stream: TcpStream, state: &RouterState, shutdown: &ShutdownGate) {
    let mut conns: BackendConns = HashMap::new();
    serve_blocking_lines(stream, shutdown, |line| respond(line, state, &mut conns, shutdown));
}

/// Decodes one line and routes it: `shutdown` stops the router itself,
/// membership administration (`add_pair` / `remove_pair` /
/// `router_status`) is handled by the router, and everything else is
/// forwarded to the session's pair, with promote-and-retry on backend
/// death.
fn respond(
    line: &str,
    state: &RouterState,
    conns: &mut BackendConns,
    shutdown: &ShutdownGate,
) -> Response {
    let (request, req_id) = match Request::decode_tagged(line) {
        Ok(decoded) => decoded,
        Err(e) => return Response::Error(e),
    };
    match &request {
        Request::Shutdown => {
            shutdown.trigger();
            Response::ShuttingDown
        }
        Request::AddPair { pair } => add_pair(state, pair, shutdown),
        Request::RemovePair { pair } => remove_pair(state, pair, shutdown),
        Request::RouterStatus => router_status(state),
        _ => forward(state, conns, &request, req_id.as_deref(), shutdown),
    }
}

fn forward(
    state: &RouterState,
    conns: &mut BackendConns,
    request: &Request,
    req_id: Option<&str>,
    gate: &ShutdownGate,
) -> Response {
    let shards = state.shards();
    let key = request.session().unwrap_or("");
    let Some(index) = shards.ring.assign(key) else {
        return Response::Error(ServiceError::new(ErrorKind::Internal, "empty backend ring"));
    };
    let pair = &shards.pairs[index];
    let active = pair.active();
    let (response, via) = match send_via(conns, &active, request, req_id) {
        Ok(response) => (response, active.clone()),
        Err(first_err) => {
            let Some(next) = pair.fail_over(&active, gate) else {
                return Response::Error(ServiceError::new(
                    ErrorKind::Internal,
                    format!("no live backend for this session: {first_err}"),
                ));
            };
            // The request died with its backend. Replaying it on the
            // promoted standby is exactly-once only for reads/explores
            // (pure) and req_id-tagged mutations (answered from the
            // replicated dedup window if already applied).
            if request.is_mutation() && req_id.is_none() {
                return Response::Error(ServiceError::new(
                    ErrorKind::Internal,
                    "backend died mid-request; an untagged mutation cannot be retried \
                     safely — tag it with a req_id and resend",
                ));
            }
            match send_via(conns, &next, request, req_id) {
                Ok(response) => (response, next),
                Err(e) => {
                    return Response::Error(ServiceError::new(
                        ErrorKind::Internal,
                        format!("backend failed over but the standby did not answer: {e}"),
                    ))
                }
            }
        }
    };
    // Topology re-learning: a standby/fenced refusal naming the real
    // primary proves the pair state is stale. A typed refusal means
    // nothing was applied, so re-sending — even an untagged mutation —
    // is safe.
    let Response::Error(e) = &response else { return response };
    if !matches!(e.kind, ErrorKind::Standby | ErrorKind::Fenced) {
        return response;
    }
    let Some(primary) = e.primary.clone() else { return response };
    if primary == via {
        return response;
    }
    pair.adopt_active(&primary);
    match send_via(conns, &primary, request, req_id) {
        Ok(redirected) => redirected,
        // The named primary did not answer: surface the original refusal
        // (it carries the redirect for the client to act on).
        Err(_) => response,
    }
}

/// Sends one request over the cached connection for `addr`, dialing as
/// needed; a transport failure evicts the cached connection.
fn send_via(
    conns: &mut BackendConns,
    addr: &str,
    request: &Request,
    req_id: Option<&str>,
) -> Result<Response, ClientError> {
    if !conns.contains_key(addr) {
        let client = Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)?;
        conns.insert(addr.to_owned(), client);
    }
    let client = conns.get_mut(addr).expect("connection just ensured");
    let outcome = client.request_tagged(request, req_id);
    if outcome.is_err() {
        conns.remove(addr);
    }
    outcome
}

// ---- membership ---------------------------------------------------------

/// Adds a backend pair to the ring, migrating the sessions whose
/// assignment moves onto it before the new topology goes live.
fn add_pair(state: &RouterState, spec: &str, gate: &ShutdownGate) -> Response {
    let spec = match BackendSpec::parse(spec) {
        Ok(spec) => spec,
        Err(e) => return Response::Error(ServiceError::new(ErrorKind::Spec, e)),
    };
    let _admin = state.membership.lock().unwrap_or_else(PoisonError::into_inner);
    let old = state.shards();
    if old.pairs.iter().any(|p| p.label == spec.primary) {
        return Response::Error(ServiceError::new(
            ErrorKind::Spec,
            format!("pair {} is already on the ring", spec.primary),
        ));
    }
    let mut pairs = old.pairs.clone();
    pairs.push(Arc::new(Pair::new(spec)));
    let new = Arc::new(Shards::build(pairs));
    if let Err(e) = migrate(&old, &new, gate) {
        return Response::Error(e);
    }
    *state.shards.lock().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&new);
    Response::PairAdded { pairs: new.ring.labels().to_vec() }
}

/// Removes the pair labeled `label` (its configured primary address),
/// migrating its sessions onto the remaining pairs first.
fn remove_pair(state: &RouterState, label: &str, gate: &ShutdownGate) -> Response {
    let _admin = state.membership.lock().unwrap_or_else(PoisonError::into_inner);
    let old = state.shards();
    if !old.pairs.iter().any(|p| p.label == label) {
        return Response::Error(ServiceError::new(
            ErrorKind::Spec,
            format!("no pair labeled {label:?} on the ring"),
        ));
    }
    let pairs: Vec<Arc<Pair>> =
        old.pairs.iter().filter(|p| p.label != label).map(Arc::clone).collect();
    if pairs.is_empty() {
        return Response::Error(ServiceError::new(
            ErrorKind::Spec,
            "cannot remove the last pair on the ring",
        ));
    }
    let new = Arc::new(Shards::build(pairs));
    if let Err(e) = migrate(&old, &new, gate) {
        return Response::Error(e);
    }
    *state.shards.lock().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&new);
    Response::PairRemoved { pairs: new.ring.labels().to_vec() }
}

/// One status line per pair: label, live addresses, arm state.
fn router_status(state: &RouterState) -> Response {
    let shards = state.shards();
    let pairs = shards
        .pairs
        .iter()
        .map(|p| {
            let st = p.state.lock().unwrap_or_else(PoisonError::into_inner);
            format!(
                "{}: active={} standby={} armed={} strikes={}",
                p.label,
                st.active,
                st.standby.as_deref().unwrap_or("-"),
                st.armed,
                st.strikes
            )
        })
        .collect();
    Response::RouterStatus { pairs }
}

/// Moves every session whose ring assignment differs between `old` and
/// `new` to its new pair: export (genesis + mutation history) from the
/// old active, import on the new active, close on the old. The
/// consistent-hash property keeps this minimal — only sessions touching
/// the added/removed label move.
fn migrate(old: &Shards, new: &Shards, _gate: &ShutdownGate) -> Result<u64, ServiceError> {
    let mut moved = 0u64;
    for pair in &old.pairs {
        let from = pair.active();
        for session in list_sessions(&from)? {
            if old.ring.assign_label(&session) == new.ring.assign_label(&session) {
                continue;
            }
            let Some(target_label) = new.ring.assign_label(&session) else { continue };
            let target = new
                .pairs
                .iter()
                .find(|p| p.label == target_label)
                .expect("assigned label is on the ring")
                .active();
            move_session(&session, &from, &target)?;
            eprintln!("chop-router: membership: moved session {session:?} {from} -> {target}");
            moved += 1;
        }
    }
    Ok(moved)
}

/// The open sessions on one backend, via a `stats` request.
fn list_sessions(addr: &str) -> Result<Vec<String>, ServiceError> {
    let mut client = dial(addr)?;
    match client.request(&Request::Stats { session: None }).map_err(migration_err)? {
        Response::Stats { sessions, .. } => Ok(sessions),
        Response::Error(e) => Err(e),
        other => Err(unexpected_reply("stats", &other)),
    }
}

/// Export → import → close for one session.
fn move_session(session: &str, from: &str, to: &str) -> Result<(), ServiceError> {
    let mut src = dial(from)?;
    let records = match src
        .request(&Request::Export { session: session.to_owned() })
        .map_err(migration_err)?
    {
        Response::Exported { records, .. } => records,
        Response::Error(e) => return Err(e),
        other => return Err(unexpected_reply("export", &other)),
    };
    let mut dst = dial(to)?;
    match dst.request(&Request::Import { records }).map_err(migration_err)? {
        Response::Imported { .. } => {}
        Response::Error(e) => return Err(e),
        other => return Err(unexpected_reply("import", &other)),
    }
    match src.request(&Request::Close { session: session.to_owned() }).map_err(migration_err)? {
        Response::Closed { .. } => Ok(()),
        Response::Error(e) => Err(e),
        other => Err(unexpected_reply("close", &other)),
    }
}

fn dial(addr: &str) -> Result<Client, ServiceError> {
    Client::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT).map_err(migration_err)
}

fn migration_err(e: ClientError) -> ServiceError {
    ServiceError::new(ErrorKind::Internal, format!("session migration failed: {e}"))
}

fn unexpected_reply(what: &str, got: &Response) -> ServiceError {
    ServiceError::protocol(format!(
        "unexpected {what} reply during migration: {}",
        got.encode()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_assignment_is_deterministic_and_total() {
        let labels = vec!["a:1".to_owned(), "b:2".to_owned(), "c:3".to_owned()];
        let ring = HashRing::new(labels.clone(), 64);
        let again = HashRing::new(labels, 64);
        for key in ["", "alpha", "beta", "a-very-long-session-name-with-dashes"] {
            let index = ring.assign(key).expect("non-empty ring");
            assert!(index < 3);
            assert_eq!(again.assign(key), Some(index), "placement must be reproducible");
        }
        assert!(HashRing::new(Vec::new(), 64).assign("x").is_none());
    }

    #[test]
    fn ring_spreads_sessions_across_pairs() {
        let labels: Vec<String> = (0..4).map(|i| format!("node{i}:1991")).collect();
        let ring = HashRing::new(labels, 64);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.assign(&format!("session-{i}")).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                count > 100,
                "pair {i} got {count}/1000 sessions — ring is badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn backend_spec_parses_pairs() {
        assert_eq!(
            BackendSpec::parse("127.0.0.1:1991,127.0.0.1:1992").unwrap(),
            BackendSpec {
                primary: "127.0.0.1:1991".into(),
                standby: Some("127.0.0.1:1992".into()),
            }
        );
        assert_eq!(
            BackendSpec::parse("127.0.0.1:1991").unwrap(),
            BackendSpec { primary: "127.0.0.1:1991".into(), standby: None }
        );
        assert!(BackendSpec::parse("").is_err());
        assert!(BackendSpec::parse("a,b,c").is_err());
        assert!(BackendSpec::parse(",b").is_err());
    }

    #[test]
    fn fail_over_needs_an_armed_standby_and_stale_callers_learn_the_active() {
        let gate = ShutdownGate::new();
        let pair = Pair::new(BackendSpec { primary: "10.0.0.1:1".into(), standby: None });
        assert_eq!(pair.active(), "10.0.0.1:1");
        assert!(pair.fail_over("10.0.0.1:1", &gate).is_none(), "no standby, nowhere to go");
        // A caller holding a stale address learns the current active.
        let pair = Pair::new(BackendSpec { primary: "10.0.0.1:1".into(), standby: None });
        {
            let mut st = pair.state.lock().unwrap();
            st.active = "10.0.0.2:1".into();
            st.standby = Some("10.0.0.1:1".into());
            st.armed = false;
        }
        assert_eq!(pair.fail_over("10.0.0.1:1", &gate), Some("10.0.0.2:1".into()));
        assert!(
            pair.fail_over("10.0.0.2:1", &gate).is_none(),
            "the rejoin candidate is not armed yet, so a second failover has nowhere to go"
        );
    }

    #[test]
    fn adopt_active_swaps_roles_and_disarms() {
        let pair = Pair::new(BackendSpec {
            primary: "10.0.0.1:1".into(),
            standby: Some("10.0.0.2:1".into()),
        });
        // A fenced refusal from 10.0.0.1 named 10.0.0.2 as the primary.
        pair.adopt_active("10.0.0.2:1");
        let st = pair.state.lock().unwrap();
        assert_eq!(st.active, "10.0.0.2:1");
        assert_eq!(st.standby.as_deref(), Some("10.0.0.1:1"));
        assert!(!st.armed, "the demoted node must re-prove sync before it is armed");
        assert_eq!(st.strikes, 0);
        drop(st);
        // Adopting the already-active address is a no-op.
        pair.adopt_active("10.0.0.2:1");
        assert_eq!(pair.active(), "10.0.0.2:1");
    }

    #[test]
    fn shards_rebuild_preserves_pair_state() {
        let a = Arc::new(Pair::new(BackendSpec { primary: "a:1".into(), standby: None }));
        a.adopt_active("a:2");
        let b = Arc::new(Pair::new(BackendSpec { primary: "b:1".into(), standby: None }));
        let shards = Shards::build(vec![Arc::clone(&a), Arc::clone(&b)]);
        assert_eq!(shards.ring.labels(), ["a:1".to_owned(), "b:1".to_owned()]);
        // The rebuilt topology shares the same Pair objects: runtime
        // state (the re-learned active) survives membership changes.
        assert_eq!(shards.pairs[0].active(), "a:2");
    }
}
