//! An in-process TCP fault proxy for chaos testing (compiled only with
//! the `fault-inject` cargo feature).
//!
//! A [`ChaosProxy`] sits between a test client and a real [`Server`]
//! (../server.rs), forwarding bytes faithfully except where a scripted
//! [`ConnFault`] says otherwise. Faults are queued with
//! [`ChaosProxy::push_fault`] and consumed one per accepted connection
//! (FIFO; an empty queue forwards faithfully), so a test can say "the
//! *next* connection dies after 20 bytes" and then assert the client's
//! retry recovers.
//!
//! The proxy is deliberately dumb: it never parses the protocol, it
//! drops/limits/stalls raw bytes. That keeps the faults honest — the
//! server and client under test see exactly what a flaky network would
//! deliver.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// One scripted fault, applied to a single proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Forward faithfully (what an empty fault queue does too).
    None,
    /// Forward this many client→server bytes, then kill the connection
    /// in both directions mid-request.
    ResetAfter(usize),
    /// Forward this many client→server bytes, then half-close the
    /// server-bound side — the server sees a truncated request (EOF with
    /// no newline) while its reply path stays open.
    TruncateRequest(usize),
    /// Sit on the connection this long before forwarding anything — the
    /// stalled-server case a client `attempt_timeout` must trip on.
    StallMs(u64),
}

/// What a forwarding pump does once its byte budget runs out.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Exhaust {
    /// Tear down both directions of both sockets.
    Reset,
    /// Half-close the destination's write side; the paired pump lives on.
    HalfClose,
}

/// A fault-injecting TCP forwarder between test clients and a server.
pub struct ChaosProxy {
    addr: SocketAddr,
    faults: Arc<Mutex<VecDeque<ConnFault>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy on an OS-assigned localhost port, forwarding
    /// every connection to `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn start(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let faults: Arc<Mutex<VecDeque<ConnFault>>> = Arc::new(Mutex::new(VecDeque::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_faults = Arc::clone(&faults);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let fault = accept_faults
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .pop_front()
                            .unwrap_or(ConnFault::None);
                        // Detached deliberately: a pump blocks until its
                        // peers close, and a test tearing the proxy down
                        // may still hold a live client socket — joining
                        // here would deadlock the drop. Pumps die with
                        // their sockets (or the process).
                        std::thread::spawn(move || {
                            proxy_connection(client, upstream, fault);
                        });
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(Self { addr, faults, stop, accept_thread: Some(accept_thread) })
    }

    /// Where test clients connect.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queues a fault for the next accepted connection (FIFO).
    pub fn push_fault(&self, fault: ConnFault) {
        self.faults.lock().unwrap_or_else(PoisonError::into_inner).push_back(fault);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Forwards one client connection per its scripted fault.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: ConnFault) {
    if let ConnFault::StallMs(ms) = fault {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (c2s_budget, exhaust) = match fault {
        ConnFault::ResetAfter(bytes) => (Some(bytes), Exhaust::Reset),
        ConnFault::TruncateRequest(bytes) => (Some(bytes), Exhaust::HalfClose),
        ConnFault::None | ConnFault::StallMs(_) => (None, Exhaust::Reset),
    };
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up = std::thread::spawn(move || pump(client_r, server, c2s_budget, exhaust));
    pump(server_r, client, None, Exhaust::Reset);
    let _ = up.join();
}

/// Copies `from` → `to` until EOF, an error, or the byte budget runs
/// out; then applies the exhaustion action (or, on natural EOF, passes
/// the half-close along).
fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: Option<usize>, exhaust: Exhaust) {
    let mut chunk = [0u8; 4096];
    loop {
        let n = match from.read(&mut chunk) {
            Ok(0) | Err(_) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
        };
        let forward = match budget {
            None => n,
            Some(left) => n.min(left),
        };
        if to.write_all(&chunk[..forward]).is_err() || to.flush().is_err() {
            let _ = from.shutdown(Shutdown::Read);
            return;
        }
        if let Some(left) = &mut budget {
            *left -= forward;
            if *left == 0 {
                match exhaust {
                    Exhaust::Reset => {
                        let _ = to.shutdown(Shutdown::Both);
                        let _ = from.shutdown(Shutdown::Both);
                    }
                    Exhaust::HalfClose => {
                        let _ = to.shutdown(Shutdown::Write);
                    }
                }
                return;
            }
        }
    }
}
