//! Journal-shipped warm-standby replication.
//!
//! A node with a `chop serve --peer <addr>` (or the legacy one-way
//! `--replicate-to`) attaches a [`Replicator`]: a background thread that
//! receives every committed mutation from the
//! [`SessionManager`](crate::manager::SessionManager)
//! (as the exact tagged line the journal persisted, numbered by a
//! monotonic stream sequence) and ships it to the peer over the
//! ordinary wire protocol as [`Request::ReplApply`].
//!
//! The replicator is **role-aware**: while the manager is a standby the
//! stream parks (draining and discarding queued events — promotion
//! restarts from a snapshot anyway) and only ships while primary, so a
//! symmetric pair never echoes records back and forth. Every shipped
//! message carries the sender's cluster epoch and advertised address; a
//! typed `fenced` refusal proving a strictly newer epoch demotes this
//! node on the spot
//! ([`SessionManager::observe_fencing`](crate::manager::SessionManager::observe_fencing)),
//! which is how a restarted stale primary discovers the failover it
//! slept through and rejoins as a standby. The peer address is re-read
//! from the manager on every reconnect, so a primary that fences a stale
//! peer at a new address retargets its own stream to resync it.
//!
//! Stream starts and restarts are **snapshot-first**: on every (re)connect
//! the replicator takes a consistent full-state snapshot from the manager
//! and sends it as [`Request::ReplSnapshot`] before any records, so a
//! standby that joined late, restarted, or missed records during an
//! outage converges without the primary tracking per-standby positions.
//! The standby acks each message with its high-water mark; records at or
//! below an ack are skipped, which makes re-delivery idempotent.
//!
//! Replication is asynchronous: the primary commits locally first and
//! never blocks a client on the standby. The failure window this buys —
//! mutations committed but not yet shipped when the primary dies are lost
//! on failover — is documented in `DESIGN.md` §12.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::client::{Client, ClientError, Jitter, DEFAULT_CONNECT_TIMEOUT};
use crate::manager::SessionManager;
use crate::protocol::{Request, Response, ServiceError};

/// How long the stream thread sleeps between shutdown-flag polls when no
/// events arrive (also the parked-standby poll cadence).
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// Smallest reconnect backoff; each retry sleeps a decorrelated-jitter
/// draw from `INITIAL_BACKOFF..=3×previous`, capped at [`MAX_BACKOFF`] —
/// many replicators recovering from the same outage spread out instead
/// of dialing in lockstep.
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Largest sleep between standby reconnection attempts.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// One event on the primary → standby stream, emitted by the manager
/// under its sessions lock so channel order equals sequence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplEvent {
    /// A committed mutation: the journaled request line at stream
    /// position `seq`.
    Record {
        /// Stream sequence number (1-based, gapless per primary).
        seq: u64,
        /// The tagged request line, exactly as journaled.
        line: String,
    },
    /// A full-state handoff, current through `seq` — emitted after the
    /// primary compacts its journal so the standby can reset to the same
    /// baseline instead of replaying compacted-away history.
    Snapshot {
        /// Stream sequence the snapshot is current through.
        seq: u64,
        /// One journaled request line per record, in replay order.
        records: Vec<String>,
    },
}

/// The primary-side replication pump: owns the stream thread that ships
/// committed records to one warm standby, reconnecting (snapshot-first)
/// through standby outages. Dropping it stops the thread.
pub struct Replicator {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Replicator {
    /// Attaches a replication sink to `manager` and starts streaming to
    /// the peer at `peer_addr` (a `host:port` string, recorded as the
    /// manager's initial peer — the stream re-reads the address on every
    /// reconnect, so later retargeting takes effect live). The peer may
    /// be down: the stream connects (and re-connects) with decorrelated-
    /// jitter backoff, and every successful connect starts with a full
    /// snapshot, so nothing is missed while it was away. While the
    /// manager is a standby the stream parks instead of shipping.
    #[must_use]
    pub fn start(manager: Arc<SessionManager>, peer_addr: String) -> Self {
        let (sink, events) = mpsc::channel();
        manager.set_repl_sink(sink);
        manager.set_peer(Some(peer_addr));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_stream = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("chop-replicator".into())
            .spawn(move || stream(&manager, &events, &stop_stream))
            .expect("failed to spawn replication thread");
        Self { handle: Some(handle), stop }
    }

    /// Stops the stream thread and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The stream loop: while the manager is primary, keep a connection to
/// the peer, resynchronize with a snapshot whenever it is
/// (re)established, then ship records in sequence order, skipping
/// anything the peer already acked. While the manager is a standby the
/// loop parks; a fenced refusal from the peer demotes the manager (and
/// therefore parks the loop) on the spot.
fn stream(manager: &SessionManager, events: &mpsc::Receiver<ReplEvent>, stop: &AtomicBool) {
    // (connection, stream position shipped through)
    let mut conn: Option<(Client, u64)> = None;
    let mut backoff = Jitter::from_entropy(INITIAL_BACKOFF, MAX_BACKOFF);
    while !stop.load(Ordering::Acquire) {
        if manager.is_standby() {
            // Parked: a standby ships nothing (and must not echo applied
            // records back at its primary). Promotion restarts from a
            // fresh snapshot, so queued events can be discarded.
            conn = None;
            match events.recv_timeout(POLL_INTERVAL) {
                Ok(_) | Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if conn.is_none() {
            let Some(peer) = manager.peer() else {
                std::thread::sleep(POLL_INTERVAL);
                continue;
            };
            match connect_and_sync(manager, &peer) {
                Ok(synced) => {
                    conn = Some(synced);
                    backoff.reset();
                }
                Err(e) => {
                    // A fenced refusal of the very first snapshot is how
                    // a restarted stale primary learns it was failed
                    // over: demote now, park on the next iteration.
                    observe_refusal(manager, &e);
                    // Anything queued while the peer is unreachable is
                    // covered by the snapshot the next connect ships —
                    // drain it so the channel stays bounded by the outage.
                    while events.try_recv().is_ok() {}
                    std::thread::sleep(backoff.next_sleep());
                    continue;
                }
            }
        }
        match events.recv_timeout(POLL_INTERVAL) {
            Ok(event) => {
                let (client, shipped) = conn.as_mut().expect("connection just ensured");
                let request = match event {
                    // Already covered by a snapshot resync; and a stale
                    // queued snapshot must never roll `shipped` back.
                    ReplEvent::Record { seq, .. } | ReplEvent::Snapshot { seq, .. }
                        if seq <= *shipped =>
                    {
                        continue
                    }
                    ReplEvent::Record { seq, line } => Request::ReplApply {
                        seq,
                        record: line,
                        epoch: manager.epoch(),
                        primary: manager.advertised(),
                    },
                    ReplEvent::Snapshot { seq, records } => Request::ReplSnapshot {
                        seq,
                        records,
                        epoch: manager.epoch(),
                        primary: manager.advertised(),
                    },
                };
                match ship(client, &request) {
                    Ok(acked) => *shipped = acked.max(*shipped),
                    // Transport or protocol trouble: drop the connection
                    // and resynchronize from a fresh snapshot (after
                    // demoting first if the refusal was a newer fence).
                    Err(e) => {
                        observe_refusal(manager, &e);
                        conn = None;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // The manager replaced this sink (or was dropped): done.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Demotes the manager when a ship failure is a typed `fenced` refusal
/// proving a strictly newer epoch; all other failures are left to the
/// reconnect loop.
fn observe_refusal(manager: &SessionManager, err: &ClientError) {
    if let ClientError::Protocol(e) = err {
        manager.observe_fencing(e);
    }
}

/// Dials the peer and brings it current with one full snapshot taken
/// atomically from the manager, returning the connection and the stream
/// position the peer acked.
fn connect_and_sync(
    manager: &SessionManager,
    peer_addr: &str,
) -> Result<(Client, u64), ClientError> {
    let mut client = Client::connect_with_timeout(peer_addr, DEFAULT_CONNECT_TIMEOUT)?;
    let (seq, records) = manager.replication_snapshot();
    let request = Request::ReplSnapshot {
        seq,
        records,
        epoch: manager.epoch(),
        primary: manager.advertised(),
    };
    let acked = ship(&mut client, &request)?;
    Ok((client, acked))
}

/// Sends one replication request and returns the standby's acked
/// high-water mark. A typed refusal (the peer is itself a primary, say)
/// surfaces as a protocol error so the caller tears the stream down.
fn ship(client: &mut Client, request: &Request) -> Result<u64, ClientError> {
    match client.request(request)? {
        Response::ReplAck { seq } => Ok(seq),
        Response::Error(e) => Err(ClientError::Protocol(e)),
        other => Err(ClientError::Protocol(ServiceError::protocol(format!(
            "unexpected replication reply: {}",
            other.encode()
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// A fake standby: accepts one connection, decodes replication
    /// requests, acks with its running high-water mark, and reports each
    /// message through `notify` as it arrives.
    fn fake_standby(
        listener: TcpListener,
        notify: mpsc::Sender<(&'static str, u64)>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = stream;
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let ack = match Request::decode(line.trim()).expect("decode") {
                    Request::ReplSnapshot { seq, .. } => {
                        let _ = notify.send(("snapshot", seq));
                        seq
                    }
                    Request::ReplApply { seq, .. } => {
                        let _ = notify.send(("record", seq));
                        seq
                    }
                    other => panic!("unexpected request: {other:?}"),
                };
                let reply = Response::ReplAck { seq: ack }.encode();
                writeln!(writer, "{reply}").expect("ack");
            }
        })
    }

    #[test]
    fn stream_starts_with_a_snapshot_then_ships_records_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let (notify, arrivals) = mpsc::channel();
        let standby = fake_standby(listener, notify);
        let wait = |what: &str| {
            arrivals
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("timed out waiting for the standby to see a {what}"))
        };

        let manager = Arc::new(SessionManager::new(1));
        // One committed mutation *before* the stream starts: it must
        // arrive via the snapshot, not as a record.
        let spec = "a = input 16\nb = input 16\np = mul a b\ny = output p\n";
        manager
            .open(
                "early",
                &crate::protocol::OpenParams { spec: spec.into(), ..Default::default() },
            )
            .expect("open early");
        let mut replicator = Replicator::start(Arc::clone(&manager), addr);
        assert_eq!(wait("snapshot"), ("snapshot", 1));
        // Committed after the stream is synced: ship as records 2 and 3.
        manager.set_constraints("early", 40_000.0, 40_000.0).expect("constrain");
        manager.close("early").expect("close");
        assert_eq!(wait("record"), ("record", 2));
        assert_eq!(wait("record"), ("record", 3));
        replicator.stop();
        drop(arrivals);
        standby.join().expect("standby thread");
    }

    #[test]
    fn stop_is_idempotent_and_drop_stops() {
        // No listener at this address: the replicator just backs off.
        let manager = Arc::new(SessionManager::new(1));
        let mut replicator = Replicator::start(manager, "127.0.0.1:1".into());
        replicator.stop();
        replicator.stop();
        // Dropping after stop must not hang or panic.
    }
}
