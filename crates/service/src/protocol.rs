//! The versioned, newline-delimited JSON wire protocol.
//!
//! Every message is one JSON object on one line, and every object carries
//! two envelope fields: `"v"` (the protocol version, currently
//! [`PROTOCOL_VERSION`]) and `"type"` (the variant tag). Unknown *fields*
//! are ignored for forward compatibility; an unknown *type* or a version
//! mismatch is a [`ErrorKind::Protocol`] error.
//!
//! Encoding and decoding are hand-written against the [`json`](crate::json)
//! module (the vendored `serde` is a no-op stub), and the round-trip
//! guarantee — `decode(encode(m)) == m` for every variant — is enforced by
//! property tests in `tests/protocol_roundtrip.rs`.
//!
//! Requests may additionally carry an optional client-generated `req_id`
//! envelope field ([`Request::encode_tagged`] /
//! [`Request::decode_tagged`]). A `req_id` on a *mutating* request lets
//! the server answer a retried mutation from its recorded outcome instead
//! of applying it twice — the idempotency window documented in
//! `DESIGN.md` §11.

use std::fmt;

use chop_core::prelude::{
    CacheStats, Completion, Heuristic, MoveKind, OptimizeResult, SearchOutcome,
};

use crate::json::{self, obj, Value};

/// The wire-protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Longest accepted `req_id` (bounds the server's idempotency window).
pub const MAX_REQ_ID_LEN: usize = 128;

/// Classifies a [`ServiceError`]; the wire tag is the snake_case name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a valid protocol message.
    Protocol,
    /// The named session does not exist.
    UnknownSession,
    /// `open` named a session that already exists.
    SessionExists,
    /// The request was well-formed but its contents are invalid (bad
    /// spec text, out-of-range partition count, zero constraint…).
    Spec,
    /// The exploration engine failed (prediction error, bad move…).
    Engine,
    /// The server malfunctioned (a handler panicked, a worker vanished).
    Internal,
    /// The node's replication role refused the request: a warm standby
    /// refuses direct mutations (they must arrive over the replication
    /// stream), and a primary refuses replication records.
    Standby,
    /// The request carried (or arrived at) a stale cluster epoch: a
    /// fenced ex-primary refuses direct mutations, and a node refuses
    /// replication traffic from a peer whose epoch is older than its
    /// own. The error carries the refusing node's epoch and its best
    /// guess at the current primary so the caller can rejoin.
    Fenced,
}

impl ErrorKind {
    fn wire(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionExists => "session_exists",
            ErrorKind::Spec => "spec",
            ErrorKind::Engine => "engine",
            ErrorKind::Internal => "internal",
            ErrorKind::Standby => "standby",
            ErrorKind::Fenced => "fenced",
        }
    }

    fn from_wire(tag: &str) -> Option<Self> {
        Some(match tag {
            "protocol" => ErrorKind::Protocol,
            "unknown_session" => ErrorKind::UnknownSession,
            "session_exists" => ErrorKind::SessionExists,
            "spec" => ErrorKind::Spec,
            "engine" => ErrorKind::Engine,
            "internal" => ErrorKind::Internal,
            "standby" => ErrorKind::Standby,
            "fenced" => ErrorKind::Fenced,
            _ => return None,
        })
    }
}

/// A typed service failure, sent on the wire as the `error` response and
/// raised locally by the [`SessionManager`](crate::manager::SessionManager).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For `standby`/`fenced` refusals: the refusing node's best guess
    /// at the current primary's `host:port`, so clients can follow the
    /// redirect and routers can re-learn topology. `None` elsewhere.
    pub primary: Option<String>,
    /// For `fenced` refusals: the refusing node's cluster epoch.
    pub epoch: Option<u64>,
}

impl ServiceError {
    /// Builds an error of the given kind.
    #[must_use]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into(), primary: None, epoch: None }
    }

    /// A protocol-level (malformed message) error.
    #[must_use]
    pub fn protocol(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Protocol, message)
    }

    /// Attaches the redirect hint (current primary address) and epoch a
    /// `standby`/`fenced` refusal carries.
    #[must_use]
    pub fn with_redirect(mut self, primary: Option<String>, epoch: u64) -> Self {
        self.primary = primary;
        self.epoch = Some(epoch);
        self
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind.wire(), self.message)?;
        if let Some(primary) = &self.primary {
            write!(f, " (current primary: {primary})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ServiceError {}

/// Parameters of an `open` request — everything needed to build a
/// [`Session`](chop_core::Session) server-side. Mirrors the `chop check`
/// flags; fields omitted on the wire take these defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenParams {
    /// The behavioral spec, inline, in the `.cbs` text format.
    pub spec: String,
    /// Partition count (horizontal cut). Default 1.
    pub partitions: u32,
    /// Chips in the set. Default: one per partition.
    pub chips: Option<u32>,
    /// MOSIS package pins, 64 or 84. Default 84.
    pub package_pins: u32,
    /// Performance constraint in ns. Default 30 000.
    pub performance_ns: f64,
    /// System-delay constraint in ns. Default 30 000.
    pub delay_ns: f64,
    /// Multi-cycle operations (datapath multiplier 1). Default true.
    pub multi_cycle: bool,
}

impl Default for OpenParams {
    fn default() -> Self {
        Self {
            spec: String::new(),
            partitions: 1,
            chips: None,
            package_pins: 84,
            performance_ns: 30_000.0,
            delay_ns: 30_000.0,
            multi_cycle: true,
        }
    }
}

/// The shared budget envelope of every bounded request: `explore` and
/// `optimize` both carry one, and both interpret it the same way —
/// `deadline_ms` is a wall-clock cut-off, `max_trials` caps the units of
/// work examined (combinations for `explore`, move evaluations for
/// `optimize`). The third idempotency-window field, `req_id`, rides the
/// *tagged* message envelope ([`Request::encode_tagged`]) rather than the
/// budget object so read-only requests can carry it too.
///
/// On the wire the canonical form is one nested object,
/// `"budget": {"deadline_ms": …, "max_trials": …}` (omitted entirely when
/// both fields are unset); the pre-envelope flat spelling — top-level
/// `deadline_ms` / `max_trials` — still decodes as a back-compat alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetEnvelope {
    /// Wall-clock deadline for the search, in ms.
    pub deadline_ms: Option<u64>,
    /// Cap on units of work examined (trials / move evaluations).
    pub max_trials: Option<u64>,
}

impl BudgetEnvelope {
    /// Whether no bound is set (the envelope is omitted on the wire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deadline_ms.is_none() && self.max_trials.is_none()
    }
}

fn push_budget(pairs: &mut Vec<(&str, Value)>, budget: &BudgetEnvelope) {
    if budget.is_empty() {
        return;
    }
    let mut inner = Vec::new();
    push_opt_u64(&mut inner, "deadline_ms", budget.deadline_ms);
    push_opt_u64(&mut inner, "max_trials", budget.max_trials);
    pairs.push(("budget", obj(inner)));
}

/// Decodes the budget envelope: the nested `"budget"` object when
/// present, else the legacy flat `deadline_ms` / `max_trials` fields.
fn budget_from_value(v: &Value) -> Result<BudgetEnvelope, ServiceError> {
    let carrier = match v.get("budget") {
        Some(Value::Null) | None => v,
        Some(nested @ Value::Obj(_)) => nested,
        Some(_) => {
            return Err(ServiceError::protocol("field \"budget\" must be an object"));
        }
    };
    Ok(BudgetEnvelope {
        deadline_ms: opt_field(carrier, "deadline_ms", u64_field)?,
        max_trials: opt_field(carrier, "max_trials", u64_field)?,
    })
}

/// Parameters of an `explore` request; the budget reuses the core
/// [`SearchBudget`](chop_core::prelude::SearchBudget) semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreParams {
    /// Which heuristic to run. Default I (iterative).
    pub heuristic: Heuristic,
    /// Deadline / trial-cap envelope. Default: unbounded.
    pub budget: BudgetEnvelope,
    /// Worker threads for this run. Default: the server's `--jobs`.
    pub jobs: Option<u32>,
}

impl Default for ExploreParams {
    fn default() -> Self {
        Self { heuristic: Heuristic::Iterative, budget: BudgetEnvelope::default(), jobs: None }
    }
}

/// Parameters of an `optimize` request, mirroring the builder knobs of
/// [`OptimizeSpec`](chop_core::prelude::OptimizeSpec). Node-naming fields
/// use DFG node indices; the server resolves them against the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeParams {
    /// Seed for the optimizer's deterministic randomness. Default 0.
    /// Wire numbers ride on JSON doubles, so seeds above 2^53 − 1 are
    /// rejected on decode rather than silently rounded.
    pub seed: u64,
    /// Deadline / move-evaluation-cap envelope. Default: the core spec's
    /// built-in move budget.
    pub budget: BudgetEnvelope,
    /// Heuristic for each candidate evaluation. Default I (iterative).
    pub heuristic: Heuristic,
    /// Plateau kicks allowed. Default: the core spec's default.
    pub kicks: Option<u32>,
    /// Annealed moves attempted per kick. Default: the core default.
    pub kick_moves: Option<u32>,
    /// Worker threads for this run. Default: the server's `--jobs`.
    pub jobs: Option<u32>,
    /// Node indices pinned to their current partition.
    pub pinned: Vec<u32>,
    /// Groups of node indices that must move atomically and stay
    /// co-located.
    pub groups: Vec<Vec<u32>>,
    /// Pairs of node indices that must never share a partition.
    pub exclusions: Vec<(u32, u32)>,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        Self {
            seed: 0,
            budget: BudgetEnvelope::default(),
            heuristic: Heuristic::Iterative,
            kicks: None,
            kick_moves: None,
            jobs: None,
            pinned: Vec::new(),
            groups: Vec::new(),
            exclusions: Vec::new(),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness/version probe.
    Ping,
    /// Create a named session.
    Open {
        /// Session name (unique on the server).
        session: String,
        /// Session construction parameters.
        params: OpenParams,
    },
    /// Run an exploration on a session (dispatched to the worker pool).
    Explore {
        /// Session name.
        session: String,
        /// Search parameters.
        params: ExploreParams,
    },
    /// Move one node to another partition (incremental what-if).
    Repartition {
        /// Session name.
        session: String,
        /// DFG node index to move.
        node: u32,
        /// Target partition index.
        to: u32,
    },
    /// Run the move-based optimizer on a session (dispatched to the
    /// worker pool). On success the accepted final partitioning is
    /// installed — the journal records it as an `apply_moves`, because a
    /// deadline-truncated `optimize` is not deterministically replayable
    /// while its accepted move trace always is.
    Optimize {
        /// Session name.
        session: String,
        /// Optimizer parameters.
        params: OptimizeParams,
    },
    /// Apply a batch of `(node, partition)` moves atomically — the
    /// journaled/replicated form of an accepted optimizer trace, also
    /// usable directly as a multi-node what-if.
    ApplyMoves {
        /// Session name.
        session: String,
        /// `(node index, target partition index)` pairs, applied in
        /// order with one final validation.
        moves: Vec<(u32, u32)>,
    },
    /// Replace a session's performance/delay constraints (the next
    /// `explore` searches under the new envelope; predictions are
    /// constraint-independent, so the cache stays warm).
    SetConstraints {
        /// Session name.
        session: String,
        /// New performance constraint in ns.
        performance_ns: f64,
        /// New system-delay constraint in ns.
        delay_ns: f64,
    },
    /// Server and cache statistics; with a session name, also that
    /// session's last run.
    Stats {
        /// Optional session whose last run to report.
        session: Option<String>,
    },
    /// Discard a session.
    Close {
        /// Session name.
        session: String,
    },
    /// Ask the server to drain and exit.
    Shutdown,
    /// Replication: apply one committed journal record on a standby.
    /// `record` is the exact tagged request line the primary journaled;
    /// `seq` is the primary's monotonic replication sequence number.
    ReplApply {
        /// Position of this record in the primary's replication stream.
        seq: u64,
        /// The journaled request line, verbatim.
        record: String,
        /// The sender's cluster epoch; a receiver at a higher epoch
        /// refuses with `fenced`. 0 from pre-epoch senders.
        epoch: u64,
        /// The sender's advertised `host:port`, so a fenced receiver
        /// (and its replicator) can find the peer again after restarts.
        primary: Option<String>,
    },
    /// Replication: replace the standby's entire state with a snapshot
    /// (sent on stream start and after primary-side compaction).
    ReplSnapshot {
        /// Replication sequence number the snapshot is current through.
        seq: u64,
        /// One journaled request line per record, in replay order.
        records: Vec<String>,
        /// The sender's cluster epoch (see [`Request::ReplApply`]).
        epoch: u64,
        /// The sender's advertised `host:port`.
        primary: Option<String>,
    },
    /// Promote a warm standby to primary: it bumps the cluster epoch,
    /// journals the role change, starts accepting direct mutations and
    /// stops accepting replication records from stale-epoch peers.
    Promote,
    /// Journal-internal: a durable role/epoch transition (`promote`
    /// writes `primary`, a fencing demotion writes `fenced`). Never sent
    /// by clients; it exists so a restarted node replays its way back
    /// into the role it held at the crash.
    RoleChange {
        /// The cluster epoch this transition established.
        epoch: u64,
        /// Whether the node became primary (else standby).
        primary: bool,
        /// Whether the standby role was forced by fencing (a demoted
        /// ex-primary) rather than configured.
        fenced: bool,
    },
    /// Router admin: add a backend pair (`primary[,standby]`) to the
    /// ring, migrating the sessions that remap onto it. Refused by
    /// `chop serve` backends.
    AddPair {
        /// The pair spec, `primary[,standby]`.
        pair: String,
    },
    /// Router admin: remove the backend pair whose primary label
    /// matches, migrating its sessions to the surviving pairs.
    RemovePair {
        /// The pair's primary label (`host:port`).
        pair: String,
    },
    /// Router admin: report the router's pairs and their health state.
    RouterStatus,
    /// Export one session's replayable history (its genesis `open` plus
    /// every mutation since, as tagged journal lines) for migration.
    Export {
        /// Session name.
        session: String,
    },
    /// Import a session exported from another node: replay its records
    /// through the normal mutation paths (journaled and replicated).
    Import {
        /// The exported tagged request lines, in replay order.
        records: Vec<String>,
    },
}

/// A condensed [`SearchOutcome`]: the digest plus the counters a client
/// needs to reason about feasibility, truncation and cache behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Heuristic that produced the run.
    pub heuristic: Heuristic,
    /// Canonical result fingerprint ([`SearchOutcome::digest`]).
    pub digest: String,
    /// Combinations examined.
    pub trials: u64,
    /// Feasible combinations.
    pub feasible_trials: u64,
    /// Feasible, non-inferior implementations found.
    pub feasible: u64,
    /// How the search ended.
    pub completion: Completion,
    /// Whether heuristic E degraded to I.
    pub degraded: bool,
    /// Wall-clock search time in ms.
    pub elapsed_ms: f64,
    /// BAD predictor invocations this run (cache misses that did work).
    pub predictor_calls: u64,
    /// Partition predictions served from the shared cache this run.
    pub cache_hits: u64,
    /// Cache lookups that missed this run.
    pub cache_misses: u64,
    /// Odometer subtrees skipped by the branch-and-bound search.
    pub subtrees_skipped: u64,
    /// Combinations never visited thanks to subtree skipping.
    pub combinations_skipped: u64,
}

impl RunSummary {
    /// Condenses a full outcome into its wire summary.
    #[must_use]
    pub fn from_outcome(outcome: &SearchOutcome) -> Self {
        Self {
            heuristic: outcome.heuristic,
            digest: outcome.digest(),
            trials: outcome.trials as u64,
            feasible_trials: outcome.feasible_trials as u64,
            feasible: outcome.feasible.len() as u64,
            completion: outcome.completion,
            degraded: outcome.degraded,
            elapsed_ms: outcome.elapsed.as_secs_f64() * 1e3,
            predictor_calls: outcome.trace.predictor_calls,
            cache_hits: outcome.trace.cache_hits,
            cache_misses: outcome.trace.cache_misses,
            subtrees_skipped: outcome.trace.subtrees_skipped,
            combinations_skipped: outcome.trace.combinations_skipped,
        }
    }
}

/// One accepted optimizer move on the wire: the unit's node indices, the
/// partitions it left and joined, and which phase proposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveSummary {
    /// DFG node indices of the moved unit (singleton or group).
    pub nodes: Vec<u32>,
    /// Partition index the unit left.
    pub from: u32,
    /// Partition index the unit joined.
    pub to: u32,
    /// 1-based optimizer pass that proposed the move.
    pub pass: u32,
    /// Whether a gain-directed pass or an annealing kick proposed it.
    pub kind: MoveKind,
}

/// A condensed [`OptimizeResult`]: the digest, the accepted move trace
/// and the counters a client needs, plus the final state's run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeSummary {
    /// Canonical result fingerprint ([`OptimizeResult::digest`]).
    pub digest: String,
    /// Whether the final partitioning has a feasible implementation.
    pub feasible: bool,
    /// Objective score of the starting partitioning.
    pub initial_score: f64,
    /// Objective score of the final partitioning.
    pub final_score: f64,
    /// Candidate evaluations spent.
    pub evaluations: u64,
    /// Gain-directed passes run.
    pub passes: u32,
    /// Plateau kicks used.
    pub kicks: u32,
    /// How the search ended.
    pub completion: Completion,
    /// The accepted move trace, in application order.
    pub moves: Vec<MoveSummary>,
    /// Exploration summary of the final partitioning.
    pub run: RunSummary,
}

impl OptimizeSummary {
    /// Condenses a full optimizer result into its wire summary.
    #[must_use]
    pub fn from_result(result: &OptimizeResult) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let moves = result
            .moves
            .iter()
            .map(|m| MoveSummary {
                nodes: m.nodes.iter().map(|n| n.index() as u32).collect(),
                from: m.from.index() as u32,
                to: m.to.index() as u32,
                pass: m.pass,
                kind: m.kind,
            })
            .collect();
        Self {
            digest: result.digest(),
            feasible: result.feasible(),
            initial_score: result.initial_score,
            final_score: result.final_score,
            evaluations: result.evaluations,
            passes: result.passes,
            kicks: result.kicks_used,
            completion: result.completion,
            moves,
            run: RunSummary::from_outcome(&result.outcome),
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `ping`.
    Pong {
        /// The server's protocol version.
        version: u64,
        /// The node's replication role (`"primary"`, `"standby"` or
        /// `"fenced"`); `None` from routers and pre-epoch servers.
        role: Option<String>,
        /// The node's cluster epoch (0 when it never changed roles).
        epoch: u64,
        /// The node's configured replication peer, if any — the router
        /// learns a rejoined standby's address from its primary's pong.
        peer: Option<String>,
    },
    /// A session was created.
    Opened {
        /// Session name.
        session: String,
        /// Partition count of the built partitioning.
        partitions: u64,
    },
    /// An exploration finished.
    Explored {
        /// Session name.
        session: String,
        /// The run's summary.
        run: RunSummary,
    },
    /// A node was moved.
    Repartitioned {
        /// Session name.
        session: String,
        /// Node that moved.
        node: u32,
        /// Its new partition.
        to: u32,
    },
    /// An optimization finished and its final partitioning is installed.
    Optimized {
        /// Session name.
        session: String,
        /// The optimizer run's summary (boxed: by far the largest
        /// response payload, and `Response` values are moved around a
        /// lot — completion queues, dedup windows).
        result: Box<OptimizeSummary>,
    },
    /// A batch of moves was applied atomically.
    MovesApplied {
        /// Session name.
        session: String,
        /// How many `(node, partition)` pairs the batch carried.
        moves: u64,
    },
    /// A session's constraints were replaced.
    ConstraintsSet {
        /// Session name.
        session: String,
        /// The performance constraint now in force, in ns.
        performance_ns: f64,
        /// The system-delay constraint now in force, in ns.
        delay_ns: f64,
    },
    /// Server statistics.
    Stats {
        /// Names of the open sessions, sorted.
        sessions: Vec<String>,
        /// Shared prediction-cache counters (lifetime).
        cache: CacheStats,
        /// Resident entries per cache shard, in shard order (empty from
        /// servers that predate the sharded cache tier).
        shard_entries: Vec<u64>,
        /// The named session's most recent run, if any.
        last_run: Option<RunSummary>,
    },
    /// A session was discarded.
    Closed {
        /// Session name.
        session: String,
    },
    /// The server acknowledged `shutdown` and is draining.
    ShuttingDown,
    /// A replication record or snapshot was applied; the standby's
    /// high-water mark is now at least `seq`.
    ReplAck {
        /// Highest replication sequence number applied or skipped.
        seq: u64,
    },
    /// The standby was promoted (or already was primary).
    Promoted {
        /// Sessions live on the newly-promoted node.
        sessions: u64,
        /// The cluster epoch the promotion established (0 from pre-epoch
        /// servers).
        epoch: u64,
    },
    /// The worker pool is saturated; retry later.
    Busy {
        /// Explorations queued or running.
        inflight: u64,
        /// The server's `--max-inflight` bound.
        max_inflight: u64,
        /// Server-suggested backoff before retrying, in ms, derived from
        /// the inflight depth (0 when the server predates the hint).
        retry_after_ms: u64,
    },
    /// A backend pair joined the router's ring.
    PairAdded {
        /// The router's pairs after the change, rendered for display.
        pairs: Vec<String>,
    },
    /// A backend pair left the router's ring.
    PairRemoved {
        /// The router's pairs after the change, rendered for display.
        pairs: Vec<String>,
    },
    /// The router's membership and health report.
    RouterStatus {
        /// One rendered line per pair (active, standby, armed state).
        pairs: Vec<String>,
    },
    /// A session's replayable history, for migration.
    Exported {
        /// Session name.
        session: String,
        /// Tagged request lines: the genesis `open` plus every mutation.
        records: Vec<String>,
    },
    /// An exported session was replayed into this node.
    Imported {
        /// Session name the records established.
        session: String,
        /// How many records were applied.
        records: u64,
    },
    /// The request failed.
    Error(ServiceError),
}

fn heuristic_wire(h: Heuristic) -> &'static str {
    match h {
        Heuristic::Enumeration => "E",
        Heuristic::Iterative => "I",
    }
}

fn heuristic_from_wire(tag: &str) -> Option<Heuristic> {
    match tag {
        "E" => Some(Heuristic::Enumeration),
        "I" => Some(Heuristic::Iterative),
        _ => None,
    }
}

fn move_kind_wire(k: MoveKind) -> &'static str {
    match k {
        MoveKind::Gain => "gain",
        MoveKind::Kick => "kick",
    }
}

fn move_kind_from_wire(tag: &str) -> Option<MoveKind> {
    match tag {
        "gain" => Some(MoveKind::Gain),
        "kick" => Some(MoveKind::Kick),
        _ => None,
    }
}

fn completion_wire(c: Completion) -> &'static str {
    match c {
        Completion::Complete => "complete",
        Completion::TruncatedDeadline => "truncated_deadline",
        Completion::TruncatedTrials => "truncated_trials",
        Completion::DegradedToIterative => "degraded_to_iterative",
    }
}

fn completion_from_wire(tag: &str) -> Option<Completion> {
    match tag {
        "complete" => Some(Completion::Complete),
        "truncated_deadline" => Some(Completion::TruncatedDeadline),
        "truncated_trials" => Some(Completion::TruncatedTrials),
        "degraded_to_iterative" => Some(Completion::DegradedToIterative),
        _ => None,
    }
}

// ---- field accessors -------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ServiceError> {
    v.get(key).ok_or_else(|| ServiceError::protocol(format!("missing field {key:?}")))
}

fn str_field(v: &Value, key: &str) -> Result<String, ServiceError> {
    field(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be a string")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ServiceError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be an integer")))
}

fn str_array(v: &Value, key: &str) -> Result<Vec<String>, ServiceError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be an array")))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ServiceError::protocol(format!("{key} items must be strings")))
        })
        .collect()
}

fn f64_field(v: &Value, key: &str) -> Result<f64, ServiceError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be a number")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, ServiceError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be a boolean")))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, ServiceError> {
    u32::try_from(u64_field(v, key)?)
        .map_err(|_| ServiceError::protocol(format!("field {key:?} out of u32 range")))
}

/// `Some(x)` if `key` is present and non-null, mapped through `get`.
fn opt_field<T>(
    v: &Value,
    key: &str,
    get: impl Fn(&Value, &str) -> Result<T, ServiceError>,
) -> Result<Option<T>, ServiceError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => get(v, key).map(Some),
    }
}

/// One non-negative integer in u32 range, out of an array element.
fn u32_item(v: &Value) -> Result<u32, ServiceError> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| ServiceError::protocol("array items must be u32 integers"))
}

/// An array of u32s under `key`, `None` when absent.
fn u32_array(v: &Value, key: &str) -> Result<Option<Vec<u32>>, ServiceError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(arr) => arr
            .as_arr()
            .ok_or_else(|| ServiceError::protocol(format!("field {key:?} must be an array")))?
            .iter()
            .map(u32_item)
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

/// A nested array value as a list of u32s.
fn u32_items(v: &Value) -> Result<Vec<u32>, ServiceError> {
    v.as_arr()
        .ok_or_else(|| ServiceError::protocol("expected a nested array of integers"))?
        .iter()
        .map(u32_item)
        .collect()
}

/// A two-element `[a, b]` array value as a u32 pair.
fn u32_pair(v: &Value) -> Result<(u32, u32), ServiceError> {
    let items = u32_items(v)?;
    let [a, b] = items[..] else {
        return Err(ServiceError::protocol("expected a two-element [a, b] integer pair"));
    };
    Ok((a, b))
}

fn push_opt_u64(pairs: &mut Vec<(&str, Value)>, key: &'static str, v: Option<u64>) {
    if let Some(n) = v {
        #[allow(clippy::cast_precision_loss)]
        pairs.push((key, Value::Num(n as f64)));
    }
}

fn envelope(kind: &str, mut rest: Vec<(&str, Value)>) -> Value {
    #[allow(clippy::cast_precision_loss)]
    let mut pairs =
        vec![("v", Value::Num(PROTOCOL_VERSION as f64)), ("type", Value::Str(kind.into()))];
    pairs.append(&mut rest);
    obj(pairs)
}

/// Parses and checks the `"v"` / `"type"` envelope, returning the type tag.
fn open_envelope(line: &str) -> Result<(Value, String), ServiceError> {
    let v = json::parse(line).map_err(|e| ServiceError::protocol(e.to_string()))?;
    let version = u64_field(&v, "v")?;
    if version != PROTOCOL_VERSION {
        return Err(ServiceError::protocol(format!(
            "protocol version {version} not supported (this server speaks {PROTOCOL_VERSION})"
        )));
    }
    let kind = str_field(&v, "type")?;
    Ok((v, kind))
}

impl Request {
    /// Whether this request mutates server-side session state (and is
    /// therefore journaled, deduplicated by `req_id`, and only retried by
    /// clients when tagged). `explore` is *not* a mutation: re-running it
    /// produces a byte-identical digest.
    #[must_use]
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Request::Open { .. }
                | Request::Repartition { .. }
                | Request::Optimize { .. }
                | Request::ApplyMoves { .. }
                | Request::SetConstraints { .. }
                | Request::Close { .. }
                | Request::Import { .. }
        )
    }

    /// The session this request targets, if any — the router's sharding
    /// key. Sessionless requests (`ping`, global `stats`, replication
    /// traffic) return `None` and may be answered by any backend.
    #[must_use]
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Open { session, .. }
            | Request::Explore { session, .. }
            | Request::Repartition { session, .. }
            | Request::Optimize { session, .. }
            | Request::ApplyMoves { session, .. }
            | Request::SetConstraints { session, .. }
            | Request::Close { session }
            | Request::Export { session } => Some(session),
            Request::Stats { session } => session.as_deref(),
            Request::Ping
            | Request::Shutdown
            | Request::ReplApply { .. }
            | Request::ReplSnapshot { .. }
            | Request::Promote
            | Request::RoleChange { .. }
            | Request::AddPair { .. }
            | Request::RemovePair { .. }
            | Request::RouterStatus
            | Request::Import { .. } => None,
        }
    }

    /// Encodes this request as one line of JSON (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        self.encode_tagged(None)
    }

    /// Encodes this request with an optional `req_id` envelope field.
    ///
    /// # Panics
    ///
    /// Never — the encoder always produces an object envelope.
    #[must_use]
    pub fn encode_tagged(&self, req_id: Option<&str>) -> String {
        let mut value = self.encode_value();
        if let Some(id) = req_id {
            let Value::Obj(pairs) = &mut value else {
                unreachable!("request envelopes are always objects")
            };
            pairs.push(("req_id".to_owned(), Value::Str(id.to_owned())));
        }
        value.to_string()
    }

    fn encode_value(&self) -> Value {
        #[allow(clippy::cast_precision_loss)]
        let value = match self {
            Request::Ping => envelope("ping", vec![]),
            Request::Open { session, params } => {
                let mut rest = vec![
                    ("session", Value::Str(session.clone())),
                    ("spec", Value::Str(params.spec.clone())),
                    ("partitions", Value::Num(f64::from(params.partitions))),
                ];
                if let Some(chips) = params.chips {
                    rest.push(("chips", Value::Num(f64::from(chips))));
                }
                rest.push(("package_pins", Value::Num(f64::from(params.package_pins))));
                rest.push(("performance_ns", Value::Num(params.performance_ns)));
                rest.push(("delay_ns", Value::Num(params.delay_ns)));
                rest.push(("multi_cycle", Value::Bool(params.multi_cycle)));
                envelope("open", rest)
            }
            Request::Explore { session, params } => {
                let mut rest = vec![
                    ("session", Value::Str(session.clone())),
                    ("heuristic", Value::Str(heuristic_wire(params.heuristic).into())),
                ];
                push_budget(&mut rest, &params.budget);
                push_opt_u64(&mut rest, "jobs", params.jobs.map(u64::from));
                envelope("explore", rest)
            }
            Request::Repartition { session, node, to } => envelope(
                "repartition",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("node", Value::Num(f64::from(*node))),
                    ("to", Value::Num(f64::from(*to))),
                ],
            ),
            Request::Optimize { session, params } => {
                let mut rest = vec![
                    ("session", Value::Str(session.clone())),
                    ("seed", Value::Num(params.seed as f64)),
                    ("heuristic", Value::Str(heuristic_wire(params.heuristic).into())),
                ];
                push_budget(&mut rest, &params.budget);
                push_opt_u64(&mut rest, "kicks", params.kicks.map(u64::from));
                push_opt_u64(&mut rest, "kick_moves", params.kick_moves.map(u64::from));
                push_opt_u64(&mut rest, "jobs", params.jobs.map(u64::from));
                if !params.pinned.is_empty() {
                    rest.push((
                        "pinned",
                        Value::Arr(
                            params.pinned.iter().map(|&n| Value::Num(f64::from(n))).collect(),
                        ),
                    ));
                }
                if !params.groups.is_empty() {
                    rest.push((
                        "groups",
                        Value::Arr(
                            params
                                .groups
                                .iter()
                                .map(|g| {
                                    Value::Arr(
                                        g.iter().map(|&n| Value::Num(f64::from(n))).collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ));
                }
                if !params.exclusions.is_empty() {
                    rest.push((
                        "exclusions",
                        Value::Arr(
                            params
                                .exclusions
                                .iter()
                                .map(|&(a, b)| {
                                    Value::Arr(vec![
                                        Value::Num(f64::from(a)),
                                        Value::Num(f64::from(b)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                envelope("optimize", rest)
            }
            Request::ApplyMoves { session, moves } => envelope(
                "apply_moves",
                vec![
                    ("session", Value::Str(session.clone())),
                    (
                        "moves",
                        Value::Arr(
                            moves
                                .iter()
                                .map(|&(node, to)| {
                                    Value::Arr(vec![
                                        Value::Num(f64::from(node)),
                                        Value::Num(f64::from(to)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
            Request::SetConstraints { session, performance_ns, delay_ns } => envelope(
                "set_constraints",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("performance_ns", Value::Num(*performance_ns)),
                    ("delay_ns", Value::Num(*delay_ns)),
                ],
            ),
            Request::Stats { session } => {
                let mut rest = vec![];
                if let Some(s) = session {
                    rest.push(("session", Value::Str(s.clone())));
                }
                envelope("stats", rest)
            }
            Request::Close { session } => {
                envelope("close", vec![("session", Value::Str(session.clone()))])
            }
            Request::Shutdown => envelope("shutdown", vec![]),
            Request::ReplApply { seq, record, epoch, primary } => {
                let mut rest = vec![
                    ("seq", Value::Num(*seq as f64)),
                    ("record", Value::Str(record.clone())),
                    ("epoch", Value::Num(*epoch as f64)),
                ];
                if let Some(addr) = primary {
                    rest.push(("primary", Value::Str(addr.clone())));
                }
                envelope("repl_apply", rest)
            }
            Request::ReplSnapshot { seq, records, epoch, primary } => {
                let mut rest = vec![
                    ("seq", Value::Num(*seq as f64)),
                    (
                        "records",
                        Value::Arr(records.iter().map(|r| Value::Str(r.clone())).collect()),
                    ),
                    ("epoch", Value::Num(*epoch as f64)),
                ];
                if let Some(addr) = primary {
                    rest.push(("primary", Value::Str(addr.clone())));
                }
                envelope("repl_snapshot", rest)
            }
            Request::Promote => envelope("promote", vec![]),
            Request::RoleChange { epoch, primary, fenced } => {
                let role = match (primary, fenced) {
                    (true, _) => "primary",
                    (false, true) => "fenced",
                    (false, false) => "standby",
                };
                envelope(
                    "role_change",
                    vec![
                        ("epoch", Value::Num(*epoch as f64)),
                        ("role", Value::Str(role.into())),
                    ],
                )
            }
            Request::AddPair { pair } => {
                envelope("add_pair", vec![("pair", Value::Str(pair.clone()))])
            }
            Request::RemovePair { pair } => {
                envelope("remove_pair", vec![("pair", Value::Str(pair.clone()))])
            }
            Request::RouterStatus => envelope("router_status", vec![]),
            Request::Export { session } => {
                envelope("export", vec![("session", Value::Str(session.clone()))])
            }
            Request::Import { records } => envelope(
                "import",
                vec![(
                    "records",
                    Value::Arr(records.iter().map(|r| Value::Str(r.clone())).collect()),
                )],
            ),
        };
        value
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Protocol`] error for malformed JSON, a
    /// version mismatch, an unknown type tag or mistyped fields.
    pub fn decode(line: &str) -> Result<Self, ServiceError> {
        Self::decode_tagged(line).map(|(request, _)| request)
    }

    /// Decodes one request line together with its optional `req_id`.
    ///
    /// # Errors
    ///
    /// Everything [`decode`](Request::decode) rejects, plus an empty or
    /// over-long (> [`MAX_REQ_ID_LEN`]) `req_id`.
    pub fn decode_tagged(line: &str) -> Result<(Self, Option<String>), ServiceError> {
        let (v, kind) = open_envelope(line)?;
        let req_id = opt_field(&v, "req_id", str_field)?;
        if let Some(id) = &req_id {
            if id.is_empty() || id.len() > MAX_REQ_ID_LEN {
                return Err(ServiceError::protocol(format!(
                    "req_id must be 1..={MAX_REQ_ID_LEN} bytes"
                )));
            }
        }
        Ok((Self::decode_body(&v, &kind)?, req_id))
    }

    fn decode_body(v: &Value, kind: &str) -> Result<Self, ServiceError> {
        match kind {
            "ping" => Ok(Request::Ping),
            "open" => {
                let defaults = OpenParams::default();
                #[allow(clippy::cast_possible_truncation)]
                let params = OpenParams {
                    spec: str_field(v, "spec")?,
                    partitions: opt_field(v, "partitions", u32_field)?
                        .unwrap_or(defaults.partitions),
                    chips: opt_field(v, "chips", u32_field)?,
                    package_pins: opt_field(v, "package_pins", u32_field)?
                        .unwrap_or(defaults.package_pins),
                    performance_ns: opt_field(v, "performance_ns", f64_field)?
                        .unwrap_or(defaults.performance_ns),
                    delay_ns: opt_field(v, "delay_ns", f64_field)?.unwrap_or(defaults.delay_ns),
                    multi_cycle: opt_field(v, "multi_cycle", bool_field)?
                        .unwrap_or(defaults.multi_cycle),
                };
                Ok(Request::Open { session: str_field(v, "session")?, params })
            }
            "explore" => {
                let heuristic = match opt_field(v, "heuristic", str_field)? {
                    None => Heuristic::Iterative,
                    Some(tag) => heuristic_from_wire(&tag).ok_or_else(|| {
                        ServiceError::protocol(format!("unknown heuristic {tag:?}"))
                    })?,
                };
                let params = ExploreParams {
                    heuristic,
                    budget: budget_from_value(v)?,
                    jobs: opt_field(v, "jobs", u32_field)?,
                };
                Ok(Request::Explore { session: str_field(v, "session")?, params })
            }
            "repartition" => Ok(Request::Repartition {
                session: str_field(v, "session")?,
                node: u32_field(v, "node")?,
                to: u32_field(v, "to")?,
            }),
            "optimize" => {
                let heuristic = match opt_field(v, "heuristic", str_field)? {
                    None => Heuristic::Iterative,
                    Some(tag) => heuristic_from_wire(&tag).ok_or_else(|| {
                        ServiceError::protocol(format!("unknown heuristic {tag:?}"))
                    })?,
                };
                let params = OptimizeParams {
                    seed: opt_field(v, "seed", u64_field)?.unwrap_or(0),
                    budget: budget_from_value(v)?,
                    heuristic,
                    kicks: opt_field(v, "kicks", u32_field)?,
                    kick_moves: opt_field(v, "kick_moves", u32_field)?,
                    jobs: opt_field(v, "jobs", u32_field)?,
                    pinned: u32_array(v, "pinned")?.unwrap_or_default(),
                    groups: match v.get("groups") {
                        None | Some(Value::Null) => Vec::new(),
                        Some(groups) => groups
                            .as_arr()
                            .ok_or_else(|| {
                                ServiceError::protocol("field \"groups\" must be an array")
                            })?
                            .iter()
                            .map(u32_items)
                            .collect::<Result<Vec<_>, _>>()?,
                    },
                    exclusions: match v.get("exclusions") {
                        None | Some(Value::Null) => Vec::new(),
                        Some(pairs) => pairs
                            .as_arr()
                            .ok_or_else(|| {
                                ServiceError::protocol("field \"exclusions\" must be an array")
                            })?
                            .iter()
                            .map(u32_pair)
                            .collect::<Result<Vec<_>, _>>()?,
                    },
                };
                Ok(Request::Optimize { session: str_field(v, "session")?, params })
            }
            "apply_moves" => {
                let moves = field(v, "moves")?
                    .as_arr()
                    .ok_or_else(|| ServiceError::protocol("field \"moves\" must be an array"))?
                    .iter()
                    .map(u32_pair)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::ApplyMoves { session: str_field(v, "session")?, moves })
            }
            "set_constraints" => Ok(Request::SetConstraints {
                session: str_field(v, "session")?,
                performance_ns: f64_field(v, "performance_ns")?,
                delay_ns: f64_field(v, "delay_ns")?,
            }),
            "stats" => Ok(Request::Stats { session: opt_field(v, "session", str_field)? }),
            "close" => Ok(Request::Close { session: str_field(v, "session")? }),
            "shutdown" => Ok(Request::Shutdown),
            "repl_apply" => Ok(Request::ReplApply {
                seq: u64_field(v, "seq")?,
                record: str_field(v, "record")?,
                // Pre-epoch senders omit both fields.
                epoch: opt_field(v, "epoch", u64_field)?.unwrap_or(0),
                primary: opt_field(v, "primary", str_field)?,
            }),
            "repl_snapshot" => {
                let records = field(v, "records")?
                    .as_arr()
                    .ok_or_else(|| {
                        ServiceError::protocol("field \"records\" must be an array")
                    })?
                    .iter()
                    .map(|r| {
                        r.as_str().map(str::to_owned).ok_or_else(|| {
                            ServiceError::protocol("snapshot records must be strings")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::ReplSnapshot {
                    seq: u64_field(v, "seq")?,
                    records,
                    epoch: opt_field(v, "epoch", u64_field)?.unwrap_or(0),
                    primary: opt_field(v, "primary", str_field)?,
                })
            }
            "promote" => Ok(Request::Promote),
            "role_change" => {
                let role = str_field(v, "role")?;
                let (primary, fenced) = match role.as_str() {
                    "primary" => (true, false),
                    "standby" => (false, false),
                    "fenced" => (false, true),
                    other => {
                        return Err(ServiceError::protocol(format!("unknown role {other:?}")))
                    }
                };
                Ok(Request::RoleChange { epoch: u64_field(v, "epoch")?, primary, fenced })
            }
            "add_pair" => Ok(Request::AddPair { pair: str_field(v, "pair")? }),
            "remove_pair" => Ok(Request::RemovePair { pair: str_field(v, "pair")? }),
            "router_status" => Ok(Request::RouterStatus),
            "export" => Ok(Request::Export { session: str_field(v, "session")? }),
            "import" => {
                let records = field(v, "records")?
                    .as_arr()
                    .ok_or_else(|| {
                        ServiceError::protocol("field \"records\" must be an array")
                    })?
                    .iter()
                    .map(|r| {
                        r.as_str().map(str::to_owned).ok_or_else(|| {
                            ServiceError::protocol("import records must be strings")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Import { records })
            }
            other => Err(ServiceError::protocol(format!("unknown request type {other:?}"))),
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn run_to_value(run: &RunSummary) -> Value {
    obj(vec![
        ("heuristic", Value::Str(heuristic_wire(run.heuristic).into())),
        ("digest", Value::Str(run.digest.clone())),
        ("trials", Value::Num(run.trials as f64)),
        ("feasible_trials", Value::Num(run.feasible_trials as f64)),
        ("feasible", Value::Num(run.feasible as f64)),
        ("completion", Value::Str(completion_wire(run.completion).into())),
        ("degraded", Value::Bool(run.degraded)),
        ("elapsed_ms", Value::Num(run.elapsed_ms)),
        ("predictor_calls", Value::Num(run.predictor_calls as f64)),
        ("cache_hits", Value::Num(run.cache_hits as f64)),
        ("cache_misses", Value::Num(run.cache_misses as f64)),
        ("subtrees_skipped", Value::Num(run.subtrees_skipped as f64)),
        ("combinations_skipped", Value::Num(run.combinations_skipped as f64)),
    ])
}

fn run_from_value(v: &Value) -> Result<RunSummary, ServiceError> {
    let tag = str_field(v, "heuristic")?;
    let heuristic = heuristic_from_wire(&tag)
        .ok_or_else(|| ServiceError::protocol(format!("unknown heuristic {tag:?}")))?;
    let tag = str_field(v, "completion")?;
    let completion = completion_from_wire(&tag)
        .ok_or_else(|| ServiceError::protocol(format!("unknown completion {tag:?}")))?;
    Ok(RunSummary {
        heuristic,
        digest: str_field(v, "digest")?,
        trials: u64_field(v, "trials")?,
        feasible_trials: u64_field(v, "feasible_trials")?,
        feasible: u64_field(v, "feasible")?,
        completion,
        degraded: bool_field(v, "degraded")?,
        elapsed_ms: f64_field(v, "elapsed_ms")?,
        predictor_calls: u64_field(v, "predictor_calls")?,
        cache_hits: u64_field(v, "cache_hits")?,
        cache_misses: u64_field(v, "cache_misses")?,
        subtrees_skipped: u64_field(v, "subtrees_skipped")?,
        combinations_skipped: u64_field(v, "combinations_skipped")?,
    })
}

#[allow(clippy::cast_precision_loss)]
fn optimize_to_value(result: &OptimizeSummary) -> Value {
    let moves = result
        .moves
        .iter()
        .map(|m| {
            obj(vec![
                (
                    "nodes",
                    Value::Arr(m.nodes.iter().map(|&n| Value::Num(f64::from(n))).collect()),
                ),
                ("from", Value::Num(f64::from(m.from))),
                ("to", Value::Num(f64::from(m.to))),
                ("pass", Value::Num(f64::from(m.pass))),
                ("kind", Value::Str(move_kind_wire(m.kind).into())),
            ])
        })
        .collect();
    obj(vec![
        ("digest", Value::Str(result.digest.clone())),
        ("feasible", Value::Bool(result.feasible)),
        ("initial_score", Value::Num(result.initial_score)),
        ("final_score", Value::Num(result.final_score)),
        ("evaluations", Value::Num(result.evaluations as f64)),
        ("passes", Value::Num(f64::from(result.passes))),
        ("kicks", Value::Num(f64::from(result.kicks))),
        ("completion", Value::Str(completion_wire(result.completion).into())),
        ("moves", Value::Arr(moves)),
        ("run", run_to_value(&result.run)),
    ])
}

fn optimize_from_value(v: &Value) -> Result<OptimizeSummary, ServiceError> {
    let tag = str_field(v, "completion")?;
    let completion = completion_from_wire(&tag)
        .ok_or_else(|| ServiceError::protocol(format!("unknown completion {tag:?}")))?;
    let moves = field(v, "moves")?
        .as_arr()
        .ok_or_else(|| ServiceError::protocol("field \"moves\" must be an array"))?
        .iter()
        .map(|m| {
            let tag = str_field(m, "kind")?;
            let kind = move_kind_from_wire(&tag)
                .ok_or_else(|| ServiceError::protocol(format!("unknown move kind {tag:?}")))?;
            Ok(MoveSummary {
                nodes: u32_array(m, "nodes")?.ok_or_else(|| {
                    ServiceError::protocol("move records need a \"nodes\" array")
                })?,
                from: u32_field(m, "from")?,
                to: u32_field(m, "to")?,
                pass: u32_field(m, "pass")?,
                kind,
            })
        })
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(OptimizeSummary {
        digest: str_field(v, "digest")?,
        feasible: bool_field(v, "feasible")?,
        initial_score: f64_field(v, "initial_score")?,
        final_score: f64_field(v, "final_score")?,
        evaluations: u64_field(v, "evaluations")?,
        passes: u32_field(v, "passes")?,
        kicks: u32_field(v, "kicks")?,
        completion,
        moves,
        run: run_from_value(field(v, "run")?)?,
    })
}

#[allow(clippy::cast_precision_loss)]
fn cache_to_value(c: &CacheStats) -> Value {
    obj(vec![
        ("hits", Value::Num(c.hits as f64)),
        ("misses", Value::Num(c.misses as f64)),
        ("evictions", Value::Num(c.evictions as f64)),
        ("entries", Value::Num(c.entries as f64)),
        ("bytes", Value::Num(c.bytes as f64)),
    ])
}

fn cache_from_value(v: &Value) -> Result<CacheStats, ServiceError> {
    Ok(CacheStats {
        hits: u64_field(v, "hits")?,
        misses: u64_field(v, "misses")?,
        evictions: u64_field(v, "evictions")?,
        entries: u64_field(v, "entries")?,
        bytes: u64_field(v, "bytes")?,
    })
}

impl Response {
    /// Encodes this response as one line of JSON (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        #[allow(clippy::cast_precision_loss)]
        let value = match self {
            Response::Pong { version, role, epoch, peer } => {
                let mut rest = vec![("version", Value::Num(*version as f64))];
                if let Some(role) = role {
                    rest.push(("role", Value::Str(role.clone())));
                    rest.push(("epoch", Value::Num(*epoch as f64)));
                }
                if let Some(peer) = peer {
                    rest.push(("peer", Value::Str(peer.clone())));
                }
                envelope("pong", rest)
            }
            Response::Opened { session, partitions } => envelope(
                "opened",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("partitions", Value::Num(*partitions as f64)),
                ],
            ),
            Response::Explored { session, run } => envelope(
                "explored",
                vec![("session", Value::Str(session.clone())), ("run", run_to_value(run))],
            ),
            Response::Repartitioned { session, node, to } => envelope(
                "repartitioned",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("node", Value::Num(f64::from(*node))),
                    ("to", Value::Num(f64::from(*to))),
                ],
            ),
            Response::Optimized { session, result } => envelope(
                "optimized",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("result", optimize_to_value(result)),
                ],
            ),
            Response::MovesApplied { session, moves } => envelope(
                "moves_applied",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("moves", Value::Num(*moves as f64)),
                ],
            ),
            Response::ConstraintsSet { session, performance_ns, delay_ns } => envelope(
                "constraints_set",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("performance_ns", Value::Num(*performance_ns)),
                    ("delay_ns", Value::Num(*delay_ns)),
                ],
            ),
            Response::Stats { sessions, cache, shard_entries, last_run } => envelope(
                "stats",
                vec![
                    (
                        "sessions",
                        Value::Arr(sessions.iter().map(|s| Value::Str(s.clone())).collect()),
                    ),
                    ("cache", cache_to_value(cache)),
                    (
                        "shard_entries",
                        Value::Arr(
                            shard_entries.iter().map(|&n| Value::Num(n as f64)).collect(),
                        ),
                    ),
                    ("last_run", last_run.as_ref().map_or(Value::Null, run_to_value)),
                ],
            ),
            Response::Closed { session } => {
                envelope("closed", vec![("session", Value::Str(session.clone()))])
            }
            Response::ShuttingDown => envelope("shutting_down", vec![]),
            Response::ReplAck { seq } => {
                envelope("repl_ack", vec![("seq", Value::Num(*seq as f64))])
            }
            Response::Promoted { sessions, epoch } => envelope(
                "promoted",
                vec![
                    ("sessions", Value::Num(*sessions as f64)),
                    ("epoch", Value::Num(*epoch as f64)),
                ],
            ),
            Response::Busy { inflight, max_inflight, retry_after_ms } => envelope(
                "busy",
                vec![
                    ("inflight", Value::Num(*inflight as f64)),
                    ("max_inflight", Value::Num(*max_inflight as f64)),
                    ("retry_after_ms", Value::Num(*retry_after_ms as f64)),
                ],
            ),
            Response::PairAdded { pairs } => envelope(
                "pair_added",
                vec![(
                    "pairs",
                    Value::Arr(pairs.iter().map(|p| Value::Str(p.clone())).collect()),
                )],
            ),
            Response::PairRemoved { pairs } => envelope(
                "pair_removed",
                vec![(
                    "pairs",
                    Value::Arr(pairs.iter().map(|p| Value::Str(p.clone())).collect()),
                )],
            ),
            Response::RouterStatus { pairs } => envelope(
                "router_status",
                vec![(
                    "pairs",
                    Value::Arr(pairs.iter().map(|p| Value::Str(p.clone())).collect()),
                )],
            ),
            Response::Exported { session, records } => envelope(
                "exported",
                vec![
                    ("session", Value::Str(session.clone())),
                    (
                        "records",
                        Value::Arr(records.iter().map(|r| Value::Str(r.clone())).collect()),
                    ),
                ],
            ),
            Response::Imported { session, records } => envelope(
                "imported",
                vec![
                    ("session", Value::Str(session.clone())),
                    ("records", Value::Num(*records as f64)),
                ],
            ),
            Response::Error(e) => {
                let mut rest = vec![
                    ("kind", Value::Str(e.kind.wire().into())),
                    ("message", Value::Str(e.message.clone())),
                ];
                if let Some(primary) = &e.primary {
                    rest.push(("primary", Value::Str(primary.clone())));
                }
                if let Some(epoch) = e.epoch {
                    rest.push(("epoch", Value::Num(epoch as f64)));
                }
                envelope("error", rest)
            }
        };
        value.to_string()
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Protocol`] error for malformed JSON, a
    /// version mismatch, an unknown type tag or mistyped fields.
    pub fn decode(line: &str) -> Result<Self, ServiceError> {
        let (v, kind) = open_envelope(line)?;
        match kind.as_str() {
            "pong" => Ok(Response::Pong {
                version: u64_field(&v, "version")?,
                // Routers and pre-epoch servers omit the role fields.
                role: opt_field(&v, "role", str_field)?,
                epoch: opt_field(&v, "epoch", u64_field)?.unwrap_or(0),
                peer: opt_field(&v, "peer", str_field)?,
            }),
            "opened" => Ok(Response::Opened {
                session: str_field(&v, "session")?,
                partitions: u64_field(&v, "partitions")?,
            }),
            "explored" => Ok(Response::Explored {
                session: str_field(&v, "session")?,
                run: run_from_value(field(&v, "run")?)?,
            }),
            "repartitioned" => Ok(Response::Repartitioned {
                session: str_field(&v, "session")?,
                node: u32_field(&v, "node")?,
                to: u32_field(&v, "to")?,
            }),
            "optimized" => Ok(Response::Optimized {
                session: str_field(&v, "session")?,
                result: Box::new(optimize_from_value(field(&v, "result")?)?),
            }),
            "moves_applied" => Ok(Response::MovesApplied {
                session: str_field(&v, "session")?,
                moves: u64_field(&v, "moves")?,
            }),
            "constraints_set" => Ok(Response::ConstraintsSet {
                session: str_field(&v, "session")?,
                performance_ns: f64_field(&v, "performance_ns")?,
                delay_ns: f64_field(&v, "delay_ns")?,
            }),
            "stats" => {
                let sessions = field(&v, "sessions")?
                    .as_arr()
                    .ok_or_else(|| {
                        ServiceError::protocol("field \"sessions\" must be an array")
                    })?
                    .iter()
                    .map(|s| {
                        s.as_str().map(str::to_owned).ok_or_else(|| {
                            ServiceError::protocol("session names must be strings")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let last_run = match v.get("last_run") {
                    None | Some(Value::Null) => None,
                    Some(run) => Some(run_from_value(run)?),
                };
                // Tolerant decode: servers that predate the sharded cache
                // tier omit the field entirely.
                let shard_entries = match v.get("shard_entries") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(arr) => arr
                        .as_arr()
                        .ok_or_else(|| {
                            ServiceError::protocol("field \"shard_entries\" must be an array")
                        })?
                        .iter()
                        .map(|n| {
                            n.as_f64().map(|f| f as u64).ok_or_else(|| {
                                ServiceError::protocol("shard entries must be numbers")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(Response::Stats {
                    sessions,
                    cache: cache_from_value(field(&v, "cache")?)?,
                    shard_entries,
                    last_run,
                })
            }
            "closed" => Ok(Response::Closed { session: str_field(&v, "session")? }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "repl_ack" => Ok(Response::ReplAck { seq: u64_field(&v, "seq")? }),
            "promoted" => Ok(Response::Promoted {
                sessions: u64_field(&v, "sessions")?,
                // Pre-epoch servers omit the field.
                epoch: opt_field(&v, "epoch", u64_field)?.unwrap_or(0),
            }),
            "busy" => Ok(Response::Busy {
                inflight: u64_field(&v, "inflight")?,
                max_inflight: u64_field(&v, "max_inflight")?,
                // Servers that predate the hint omit the field.
                retry_after_ms: opt_field(&v, "retry_after_ms", u64_field)?.unwrap_or(0),
            }),
            "pair_added" => Ok(Response::PairAdded { pairs: str_array(&v, "pairs")? }),
            "pair_removed" => Ok(Response::PairRemoved { pairs: str_array(&v, "pairs")? }),
            "router_status" => Ok(Response::RouterStatus { pairs: str_array(&v, "pairs")? }),
            "exported" => Ok(Response::Exported {
                session: str_field(&v, "session")?,
                records: str_array(&v, "records")?,
            }),
            "imported" => Ok(Response::Imported {
                session: str_field(&v, "session")?,
                records: u64_field(&v, "records")?,
            }),
            "error" => {
                let tag = str_field(&v, "kind")?;
                let kind = ErrorKind::from_wire(&tag).ok_or_else(|| {
                    ServiceError::protocol(format!("unknown error kind {tag:?}"))
                })?;
                let mut error = ServiceError::new(kind, str_field(&v, "message")?);
                error.primary = opt_field(&v, "primary", str_field)?;
                error.epoch = opt_field(&v, "epoch", u64_field)?;
                Ok(Response::Error(error))
            }
            other => Err(ServiceError::protocol(format!("unknown response type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Open {
                session: "a".into(),
                params: OpenParams {
                    spec: "x = input 16\ny = output x\n".into(),
                    partitions: 2,
                    chips: Some(3),
                    ..OpenParams::default()
                },
            },
            Request::Explore {
                session: "a".into(),
                params: ExploreParams {
                    heuristic: Heuristic::Enumeration,
                    budget: BudgetEnvelope { deadline_ms: Some(250), max_trials: None },
                    jobs: Some(4),
                },
            },
            Request::Repartition { session: "a".into(), node: 3, to: 0 },
            Request::Optimize {
                session: "a".into(),
                params: OptimizeParams {
                    seed: 42,
                    budget: BudgetEnvelope { deadline_ms: Some(100), max_trials: Some(64) },
                    kicks: Some(1),
                    kick_moves: Some(2),
                    jobs: Some(2),
                    pinned: vec![0, 7],
                    groups: vec![vec![1, 2], vec![9]],
                    exclusions: vec![(3, 4)],
                    ..OptimizeParams::default()
                },
            },
            Request::Optimize { session: "a".into(), params: OptimizeParams::default() },
            Request::ApplyMoves { session: "a".into(), moves: vec![(3, 1), (5, 0)] },
            Request::ApplyMoves { session: "a".into(), moves: vec![] },
            Request::SetConstraints {
                session: "a".into(),
                performance_ns: 20_000.0,
                delay_ns: 25_000.5,
            },
            Request::Stats { session: None },
            Request::Stats { session: Some("a".into()) },
            Request::Close { session: "a".into() },
            Request::Shutdown,
            Request::ReplApply {
                seq: 7,
                record: r#"{"v":1,"type":"close","session":"a"}"#.into(),
                epoch: 3,
                primary: Some("10.0.0.1:1991".into()),
            },
            Request::ReplSnapshot {
                seq: 12,
                records: vec![r#"{"v":1,"type":"close","session":"a"}"#.into()],
                epoch: 2,
                primary: None,
            },
            Request::ReplSnapshot { seq: 0, records: vec![], epoch: 0, primary: None },
            Request::Promote,
            Request::RoleChange { epoch: 4, primary: true, fenced: false },
            Request::RoleChange { epoch: 4, primary: false, fenced: true },
            Request::RoleChange { epoch: 0, primary: false, fenced: false },
            Request::AddPair { pair: "10.0.0.3:1991,10.0.0.4:1991".into() },
            Request::RemovePair { pair: "10.0.0.3:1991".into() },
            Request::RouterStatus,
            Request::Export { session: "a".into() },
            Request::Import {
                records: vec![r#"{"v":1,"type":"open","session":"a","spec":""}"#.into()],
            },
        ];
        for req in reqs {
            let line = req.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn req_id_rides_the_envelope_and_round_trips() {
        let req = Request::Repartition { session: "a".into(), node: 3, to: 0 };
        let line = req.encode_tagged(Some("retry-42"));
        let (decoded, id) = Request::decode_tagged(&line).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(id.as_deref(), Some("retry-42"));
        // Untagged lines decode with no id, and plain decode ignores one.
        assert_eq!(Request::decode_tagged(&req.encode()).unwrap().1, None);
        assert_eq!(Request::decode(&line).unwrap(), req);
    }

    #[test]
    fn hostile_req_ids_are_protocol_errors() {
        for bad in [
            format!(r#"{{"v":1,"type":"ping","req_id":"{}"}}"#, "x".repeat(200)),
            r#"{"v":1,"type":"ping","req_id":""}"#.to_owned(),
            r#"{"v":1,"type":"ping","req_id":7}"#.to_owned(),
        ] {
            let err = Request::decode_tagged(&bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{bad}");
        }
    }

    #[test]
    fn mutation_classification_matches_the_journal_set() {
        assert!(
            Request::Open { session: "s".into(), params: OpenParams::default() }.is_mutation()
        );
        assert!(Request::Repartition { session: "s".into(), node: 0, to: 0 }.is_mutation());
        assert!(Request::Optimize { session: "s".into(), params: OptimizeParams::default() }
            .is_mutation());
        assert!(Request::ApplyMoves { session: "s".into(), moves: vec![(0, 1)] }.is_mutation());
        assert!(Request::SetConstraints {
            session: "s".into(),
            performance_ns: 1.0,
            delay_ns: 1.0
        }
        .is_mutation());
        assert!(Request::Close { session: "s".into() }.is_mutation());
        // An import replays mutations, so the carrier is one too (and a
        // standby must refuse it).
        assert!(Request::Import { records: vec![] }.is_mutation());
        for read_only in [
            Request::Ping,
            Request::Explore { session: "s".into(), params: ExploreParams::default() },
            Request::Stats { session: None },
            Request::Shutdown,
            // Replication traffic carries mutations *inside* records, but
            // the carrier itself is seq-idempotent, never journaled as-is.
            Request::ReplApply { seq: 1, record: String::new(), epoch: 0, primary: None },
            Request::ReplSnapshot { seq: 1, records: vec![], epoch: 0, primary: None },
            Request::Promote,
            // Role changes are journal-internal, not client mutations.
            Request::RoleChange { epoch: 1, primary: true, fenced: false },
            Request::AddPair { pair: "x:1".into() },
            Request::RemovePair { pair: "x:1".into() },
            Request::RouterStatus,
            Request::Export { session: "s".into() },
        ] {
            assert!(!read_only.is_mutation(), "{read_only:?}");
        }
    }

    #[test]
    fn session_routing_key_covers_every_variant() {
        assert_eq!(
            Request::Open { session: "s".into(), params: OpenParams::default() }.session(),
            Some("s")
        );
        assert_eq!(
            Request::Explore { session: "s".into(), params: ExploreParams::default() }
                .session(),
            Some("s")
        );
        assert_eq!(
            Request::Repartition { session: "s".into(), node: 0, to: 0 }.session(),
            Some("s")
        );
        assert_eq!(Request::Close { session: "s".into() }.session(), Some("s"));
        assert_eq!(
            Request::Optimize { session: "s".into(), params: OptimizeParams::default() }
                .session(),
            Some("s")
        );
        assert_eq!(
            Request::ApplyMoves { session: "s".into(), moves: vec![] }.session(),
            Some("s")
        );
        assert_eq!(Request::Stats { session: Some("s".into()) }.session(), Some("s"));
        assert_eq!(Request::Stats { session: None }.session(), None);
        assert_eq!(Request::Ping.session(), None);
        assert_eq!(Request::Shutdown.session(), None);
        assert_eq!(Request::Promote.session(), None);
        // An export routes to the backend that owns the session.
        assert_eq!(Request::Export { session: "s".into() }.session(), Some("s"));
        assert_eq!(Request::Import { records: vec![] }.session(), None);
        assert_eq!(Request::RouterStatus.session(), None);
    }

    #[test]
    fn legacy_flat_budget_fields_decode_as_alias() {
        // Pre-envelope clients spelled the budget as top-level fields;
        // they must keep decoding to the same params as the nested form.
        let flat = r#"{"v":1,"type":"explore","session":"s","deadline_ms":250,"max_trials":9}"#;
        let nested = r#"{"v":1,"type":"explore","session":"s","budget":{"deadline_ms":250,"max_trials":9}}"#;
        assert_eq!(Request::decode(flat).unwrap(), Request::decode(nested).unwrap());
        let Request::Explore { params, .. } = Request::decode(flat).unwrap() else { panic!() };
        assert_eq!(
            params.budget,
            BudgetEnvelope { deadline_ms: Some(250), max_trials: Some(9) }
        );
        // The alias works for optimize too, and a present-but-non-object
        // budget is a typed protocol error.
        let flat_opt = r#"{"v":1,"type":"optimize","session":"s","max_trials":5}"#;
        let Request::Optimize { params, .. } = Request::decode(flat_opt).unwrap() else {
            panic!()
        };
        assert_eq!(params.budget.max_trials, Some(5));
        let err = Request::decode(r#"{"v":1,"type":"explore","session":"s","budget":7}"#)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
    }

    #[test]
    fn optimize_fields_default_when_omitted() {
        let req = Request::decode(r#"{"v":1,"type":"optimize","session":"s"}"#).unwrap();
        let Request::Optimize { params, .. } = req else { panic!() };
        assert_eq!(params, OptimizeParams::default());
        for bad in [
            r#"{"v":1,"type":"optimize","session":"s","pinned":[-1]}"#,
            r#"{"v":1,"type":"optimize","session":"s","groups":[7]}"#,
            r#"{"v":1,"type":"optimize","session":"s","exclusions":[[1]]}"#,
            r#"{"v":1,"type":"apply_moves","session":"s","moves":[[1,2,3]]}"#,
            r#"{"v":1,"type":"apply_moves","session":"s"}"#,
        ] {
            let err = Request::decode(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{bad}");
        }
    }

    #[test]
    fn open_fields_default_when_omitted() {
        let req =
            Request::decode(r#"{"v":1,"type":"open","session":"s","spec":"x = input 8"}"#)
                .unwrap();
        let Request::Open { params, .. } = req else { panic!() };
        assert_eq!(params.partitions, 1);
        assert_eq!(params.package_pins, 84);
        assert!(params.multi_cycle);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Request::decode(r#"{"v":2,"type":"ping"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
        assert!(err.to_string().contains("version"));
        assert!(Request::decode(r#"{"type":"ping"}"#).is_err());
    }

    #[test]
    fn unknown_type_and_bad_fields_are_protocol_errors() {
        for bad in [
            "not json",
            r#"{"v":1,"type":"frobnicate"}"#,
            r#"{"v":1,"type":"open","session":7,"spec":""}"#,
            r#"{"v":1,"type":"explore","session":"s","heuristic":"Q"}"#,
            r#"{"v":1,"type":"repartition","session":"s","node":-1,"to":0}"#,
        ] {
            let err = Request::decode(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{bad}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let run = RunSummary {
            heuristic: Heuristic::Iterative,
            digest: "h=I;trials=9".into(),
            trials: 9,
            feasible_trials: 4,
            feasible: 2,
            completion: Completion::Complete,
            degraded: false,
            elapsed_ms: 1.25,
            predictor_calls: 2,
            cache_hits: 1,
            cache_misses: 2,
            subtrees_skipped: 3,
            combinations_skipped: 120,
        };
        let resps = [
            Response::Pong { version: PROTOCOL_VERSION, role: None, epoch: 0, peer: None },
            Response::Pong {
                version: PROTOCOL_VERSION,
                role: Some("standby".into()),
                epoch: 5,
                peer: Some("10.0.0.2:1991".into()),
            },
            Response::Opened { session: "a".into(), partitions: 2 },
            Response::Explored { session: "a".into(), run: run.clone() },
            Response::Repartitioned { session: "a".into(), node: 3, to: 1 },
            Response::Optimized {
                session: "a".into(),
                result: Box::new(OptimizeSummary {
                    digest: "opt;completion=Complete;".into(),
                    feasible: true,
                    initial_score: 1e18,
                    final_score: 61_252.5,
                    evaluations: 17,
                    passes: 3,
                    kicks: 1,
                    completion: Completion::Complete,
                    moves: vec![
                        MoveSummary {
                            nodes: vec![4],
                            from: 0,
                            to: 2,
                            pass: 1,
                            kind: MoveKind::Gain,
                        },
                        MoveSummary {
                            nodes: vec![1, 2],
                            from: 2,
                            to: 1,
                            pass: 2,
                            kind: MoveKind::Kick,
                        },
                    ],
                    run: run.clone(),
                }),
            },
            Response::MovesApplied { session: "a".into(), moves: 2 },
            Response::ConstraintsSet {
                session: "a".into(),
                performance_ns: 12_500.0,
                delay_ns: 8_000.25,
            },
            Response::Stats {
                sessions: vec!["a".into(), "b".into()],
                cache: CacheStats { hits: 5, misses: 3, evictions: 0, entries: 3, bytes: 640 },
                shard_entries: vec![2, 0, 1, 0],
                last_run: Some(run),
            },
            Response::Stats {
                sessions: vec![],
                cache: CacheStats::default(),
                shard_entries: vec![],
                last_run: None,
            },
            Response::Closed { session: "a".into() },
            Response::ShuttingDown,
            Response::ReplAck { seq: 99 },
            Response::Promoted { sessions: 3, epoch: 7 },
            Response::Busy { inflight: 8, max_inflight: 8, retry_after_ms: 75 },
            Response::PairAdded { pairs: vec!["a:1 active".into(), "b:2 active".into()] },
            Response::PairRemoved { pairs: vec!["a:1 active".into()] },
            Response::RouterStatus { pairs: vec!["a:1 active, standby b:2 (armed)".into()] },
            Response::Exported {
                session: "a".into(),
                records: vec![r#"{"v":1,"type":"open","session":"a","spec":""}"#.into()],
            },
            Response::Imported { session: "a".into(), records: 4 },
            Response::Error(ServiceError::new(ErrorKind::UnknownSession, "no session \"z\"")),
            Response::Error(
                ServiceError::new(ErrorKind::Standby, "standby refuses mutations")
                    .with_redirect(Some("10.0.0.1:1991".into()), 2),
            ),
            Response::Error(
                ServiceError::new(ErrorKind::Fenced, "stale epoch").with_redirect(None, 9),
            ),
        ];
        for resp in resps {
            let line = resp.encode();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn busy_without_a_hint_defaults_to_zero_backoff() {
        let decoded =
            Response::decode(r#"{"v":1,"type":"busy","inflight":3,"max_inflight":2}"#).unwrap();
        assert_eq!(decoded, Response::Busy { inflight: 3, max_inflight: 2, retry_after_ms: 0 });
    }

    #[test]
    fn pre_epoch_replies_decode_with_defaults() {
        // A pre-epoch pong has no role/epoch/peer; a pre-epoch promoted
        // reply has no epoch; a pre-epoch repl_apply has neither field.
        assert_eq!(
            Response::decode(r#"{"v":1,"type":"pong","version":1}"#).unwrap(),
            Response::Pong { version: 1, role: None, epoch: 0, peer: None }
        );
        assert_eq!(
            Response::decode(r#"{"v":1,"type":"promoted","sessions":2}"#).unwrap(),
            Response::Promoted { sessions: 2, epoch: 0 }
        );
        assert_eq!(
            Request::decode(r#"{"v":1,"type":"repl_apply","seq":4,"record":"r"}"#).unwrap(),
            Request::ReplApply { seq: 4, record: "r".into(), epoch: 0, primary: None }
        );
        // Pre-epoch errors have no redirect hint.
        let decoded =
            Response::decode(r#"{"v":1,"type":"error","kind":"standby","message":"m"}"#)
                .unwrap();
        let Response::Error(e) = decoded else { panic!() };
        assert_eq!((e.primary, e.epoch), (None, None));
    }

    #[test]
    fn service_error_implements_error_trait() {
        let e = ServiceError::new(ErrorKind::Spec, "bad spec");
        let dynamic: &dyn std::error::Error = &e;
        assert!(dynamic.to_string().contains("spec error: bad spec"));
    }
}
