//! A minimal JSON value model, parser and writer for the wire protocol.
//!
//! The workspace builds offline against a no-op `serde` stub (its derives
//! expand to nothing), so the service cannot lean on `serde_json`. This
//! module implements exactly the JSON subset the newline-delimited
//! protocol needs: the six value kinds, UTF-8 strings with full escape
//! handling (including `\uXXXX` and surrogate pairs), and a writer whose
//! output never contains a raw newline — one encoded message is always
//! one line.
//!
//! Numbers are kept as `f64`. Values that are mathematically integral are
//! written without a fractional part (`3`, not `3.0`); everything else
//! uses Rust's shortest round-trip float formatting, so
//! `parse(&v.to_string())` reproduces `v` bit-for-bit for every value
//! this protocol produces.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Pairs keep insertion order; keys are not deduplicated
    /// by the parser (last one wins on lookup).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for non-objects and missing
    /// keys). The *last* occurrence wins, matching common JSON parsers.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a number that is
    /// mathematically an integer in `u64` range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value onto `out` as compact single-line JSON.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// A convenience constructor for object values.
#[must_use]
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the protocol never produces them, but
        // the writer must still emit *valid* JSON for arbitrary input.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{n:.0}");
    } else {
        // Rust's float Display is shortest-round-trip: parsing the text
        // back yields the identical f64.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Maximum container nesting the parser accepts. The parser recurses
/// once per `[`/`{` level, so without a cap a hostile line of repeated
/// open brackets overflows the thread stack — an abort that no
/// `catch_unwind` can contain. 128 levels is far beyond anything the
/// protocol produces.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Counts one more container level, rejecting input past
    /// [`MAX_DEPTH`]. Error paths never restore the counter — the whole
    /// parse aborts — so only success returns pair this with `leave`.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "1e3"] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(-3.0).to_string(), "-3");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "line1\nline2\t\"quoted\" \\slash\\ u\u{1}z — π 🦀";
        let v = Value::Str(tricky.to_owned());
        let text = v.to_string();
        assert!(!text.contains('\n'), "writer output must be single-line");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Value::Str("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err());
        assert!(parse(r#""\udd80""#).is_err());
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x","a":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // Duplicate keys: last occurrence wins on lookup.
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
    }

    #[test]
    fn accessors_type_check() {
        let v = parse(r#"{"n":3,"s":"x","b":true,"a":[1],"f":2.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
    }

    #[test]
    fn malformed_inputs_report_offsets() {
        for bad in ["{", "[1,", "\"abc", "{\"a\"1}", "tru", "1 2", "{'a':1}", "\"\\q\""] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        // Within the cap: parses fine (mixed arrays and objects).
        let deep = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep).is_ok());
        // One past the cap: a typed error, not a recursion blow-up.
        let over = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&over).unwrap_err().to_string().contains("nesting"));
        // The classic attack: 100k unclosed open brackets must error
        // quickly instead of overflowing the stack (an uncatchable abort).
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"k\":".repeat(100_000)).is_err());
        // Sibling (non-nested) containers do not accumulate depth.
        let wide = format!("[{}0]", "[1],".repeat(10_000));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for n in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 12_345.678_9] {
            let text = Value::Num(n).to_string();
            let Value::Num(back) = parse(&text).unwrap() else { panic!() };
            assert_eq!(n.to_bits(), back.to_bits(), "{text}");
        }
    }
}
