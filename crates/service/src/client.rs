//! A small blocking client for the wire protocol, with deadline-aware
//! retry.
//!
//! [`Client::request`] is the bare one-shot call. For flaky transport,
//! [`Client::request_with_retry`] reconnects and retries under a
//! [`RetryPolicy`]: exponential backoff with *decorrelated jitter*
//! (each sleep is drawn uniformly from `base..=3×previous`, capped), the
//! scheme that avoids retry synchronization between clients recovering
//! from the same outage. `busy` replies are always retried (the server
//! refused admission, so nothing was applied) honoring the server's
//! `retry_after_ms` hint; transport failures are retried only when the
//! request is idempotent by nature (`!is_mutation()`) or tagged with a
//! `req_id` the server can deduplicate — retrying an untagged mutation
//! blind could apply it twice.
//!
//! A client may be given several nodes ([`Client::connect_nodes`]): it
//! connects to the first reachable one and rotates reconnection through
//! the list on transport failures, so a retried request lands on the next
//! node when its current one dies. Every dial is bounded by a connect
//! timeout ([`DEFAULT_CONNECT_TIMEOUT`] unless the policy's
//! `attempt_timeout` is tighter) — a black-holed peer costs a timeout,
//! never a hang.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::net::ShutdownGate;
use crate::protocol::{ErrorKind, Request, Response, ServiceError};

/// A client-side failure: transport trouble or a malformed reply.
///
/// A *typed* server failure is not an error at this layer — it arrives
/// as [`Response::Error`] so callers can match on its
/// [`kind`](crate::protocol::ErrorKind).
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed.
    Io(std::io::Error),
    /// The server closed the connection mid-request.
    ConnectionClosed,
    /// The reply line did not decode as a protocol response.
    Protocol(ServiceError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "malformed server reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::ConnectionClosed => None,
            ClientError::Protocol(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry tuning for [`Client::request_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total budget: once elapsed, the last failure is returned as-is.
    pub max_elapsed: Duration,
    /// Smallest backoff sleep (also the first one).
    pub base: Duration,
    /// Largest backoff sleep.
    pub cap: Duration,
    /// Per-attempt socket read timeout, so a stalled server trips a
    /// retry instead of blocking forever. `None` waits indefinitely
    /// (required for long explores).
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_elapsed: Duration::from_secs(2),
            base: Duration::from_millis(25),
            cap: Duration::from_millis(500),
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with the given total budget in milliseconds.
    #[must_use]
    pub fn with_budget_ms(ms: u64) -> Self {
        Self { max_elapsed: Duration::from_millis(ms), ..Self::default() }
    }
}

/// Longest a connection attempt may block when nothing tighter is
/// configured — a black-holed node must trip failover, not hang forever.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Longest `standby`/`fenced` redirect chain
/// [`Client::request_following_redirects`] walks before giving up and
/// returning the refusal as-is — two nodes pointing at each other must
/// cost four hops, not an infinite bounce.
const MAX_REDIRECT_HOPS: usize = 4;

/// One connection speaking the newline-delimited protocol, over a set of
/// candidate peers: connects to the first reachable one, and rotates to
/// the next on reconnect after a transport failure.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Candidate peers in preference order; `active` indexes the
    /// currently connected one.
    peers: Vec<SocketAddr>,
    active: usize,
    /// Per-dial bound used when the retry policy has no
    /// `attempt_timeout` of its own.
    connect_timeout: Duration,
}

impl Client {
    /// Connects to a running `chop serve`, bounding the dial by
    /// [`DEFAULT_CONNECT_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// [`connect`](Self::connect) with an explicit per-dial timeout.
    /// `addr` may resolve to several peers; each is tried in order.
    ///
    /// # Errors
    ///
    /// The last dial failure when no peer is reachable.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        Self::connect_peers(addr.to_socket_addrs()?.collect(), timeout)
    }

    /// Connects to the first reachable of several nodes (each a
    /// `host:port` string); later transport failures rotate reconnection
    /// through the whole list — the client-side half of failover.
    ///
    /// # Errors
    ///
    /// When no address resolves or no resolved peer accepts in time.
    pub fn connect_nodes(addrs: &[String], timeout: Duration) -> Result<Self, ClientError> {
        let mut peers = Vec::new();
        let mut resolve_err = None;
        for addr in addrs {
            match addr.to_socket_addrs() {
                Ok(resolved) => peers.extend(resolved),
                Err(e) => resolve_err = Some(e),
            }
        }
        if peers.is_empty() {
            return Err(ClientError::Io(resolve_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses given")
            })));
        }
        Self::connect_peers(peers, timeout)
    }

    fn connect_peers(peers: Vec<SocketAddr>, timeout: Duration) -> Result<Self, ClientError> {
        let mut last_err: Option<std::io::Error> = None;
        for (active, peer) in peers.iter().enumerate() {
            match TcpStream::connect_timeout(peer, timeout) {
                Ok(writer) => {
                    writer.set_nodelay(true).ok();
                    let reader = BufReader::new(writer.try_clone()?);
                    return Ok(Self {
                        writer,
                        reader,
                        peers,
                        active,
                        connect_timeout: timeout,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// The peer currently connected.
    #[must_use]
    pub fn peer(&self) -> SocketAddr {
        self.peers[self.active]
    }

    /// Drops the current connection and redials, starting from the
    /// current peer and rotating through the rest of the node list.
    fn reconnect(&mut self, timeout: Duration) -> Result<(), ClientError> {
        let mut last_err: Option<std::io::Error> = None;
        for offset in 0..self.peers.len() {
            let candidate = (self.active + offset) % self.peers.len();
            match TcpStream::connect_timeout(&self.peers[candidate], timeout) {
                Ok(writer) => {
                    writer.set_nodelay(true).ok();
                    self.reader = BufReader::new(writer.try_clone()?);
                    self.writer = writer;
                    self.active = candidate;
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(
            last_err.unwrap_or_else(|| std::io::Error::other("no peers to reconnect to")),
        ))
    }

    /// Sends one request and blocks for its response. Note that a long
    /// `explore` blocks for as long as the search runs — bound it with
    /// [`ExploreParams::deadline_ms`](crate::protocol::ExploreParams).
    ///
    /// # Errors
    ///
    /// Transport failures and undecodable replies; typed server errors
    /// come back as [`Response::Error`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.request_tagged(request, None)
    }

    /// [`request`](Self::request) with the envelope `req_id` the server's
    /// idempotency window deduplicates on.
    ///
    /// # Errors
    ///
    /// As [`request`](Self::request).
    pub fn request_tagged(
        &mut self,
        request: &Request,
        req_id: Option<&str>,
    ) -> Result<Response, ClientError> {
        let mut line = request.encode_tagged(req_id);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::ConnectionClosed);
        }
        Response::decode(reply.trim()).map_err(ClientError::Protocol)
    }

    /// Sends a request, retrying across reconnects until it gets a
    /// response or `policy.max_elapsed` runs out.
    ///
    /// * [`Response::Busy`] is always retried — the server refused
    ///   admission, nothing was applied — sleeping at least its
    ///   `retry_after_ms` hint.
    /// * Transport failures ([`ClientError::Io`] /
    ///   [`ClientError::ConnectionClosed`]) are retried only when the
    ///   request [is not a mutation](Request::is_mutation) or carries a
    ///   `req_id` (so a duplicate delivery is answered from the server's
    ///   dedup window, not re-applied).
    /// * Malformed replies ([`ClientError::Protocol`]) are never retried.
    ///
    /// # Errors
    ///
    /// The last failure once the budget is exhausted, or immediately for
    /// non-retryable ones.
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        req_id: Option<&str>,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        self.retry_with_sleep(request, req_id, policy, |d| {
            std::thread::sleep(d);
            false
        })
    }

    /// [`request_with_retry`](Self::request_with_retry) whose backoff
    /// sleeps wake the moment `gate` trips, at which point the in-hand
    /// outcome (the last `busy` reply or transport error) is returned
    /// instead of burning the rest of the budget asleep. The router's
    /// health loop retries pings this way so `shutdown` never waits out a
    /// backoff.
    ///
    /// # Errors
    ///
    /// As [`request_with_retry`](Self::request_with_retry).
    pub fn request_with_retry_until(
        &mut self,
        request: &Request,
        req_id: Option<&str>,
        policy: &RetryPolicy,
        gate: &ShutdownGate,
    ) -> Result<Response, ClientError> {
        self.retry_with_sleep(request, req_id, policy, |d| gate.wait_for(d))
    }

    /// [`request_with_retry`](Self::request_with_retry) that additionally
    /// follows `standby`/`fenced` refusals carrying the current primary's
    /// address: the client redials the named primary (keeping the old
    /// peers as reconnect fallbacks) and re-sends. Safe even for untagged
    /// mutations — a typed refusal means nothing was applied. Chains are
    /// bounded; an over-long bounce returns the last refusal unchanged.
    ///
    /// The raw [`request`](Self::request) path deliberately does *not*
    /// follow redirects: the replicator and the router must see the
    /// refusal itself to drive demotion and topology learning.
    ///
    /// # Errors
    ///
    /// As [`request_with_retry`](Self::request_with_retry), plus dial
    /// failures against a redirect target.
    pub fn request_following_redirects(
        &mut self,
        request: &Request,
        req_id: Option<&str>,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let mut response = self.request_with_retry(request, req_id, policy)?;
        for _ in 0..MAX_REDIRECT_HOPS {
            let Response::Error(e) = &response else { break };
            if !matches!(e.kind, ErrorKind::Standby | ErrorKind::Fenced) {
                break;
            }
            let Some(primary) = e.primary.clone() else { break };
            self.redirect_to(&primary)?;
            response = self.request_with_retry(request, req_id, policy)?;
        }
        Ok(response)
    }

    /// Redials at a redirect target, making it the preferred peer; the
    /// previous peers stay in rotation as reconnect fallbacks.
    fn redirect_to(&mut self, addr: &str) -> Result<(), ClientError> {
        let mut peers: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if peers.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("redirect target {addr:?} resolved to nothing"),
            )));
        }
        let fallbacks: Vec<SocketAddr> =
            self.peers.iter().copied().filter(|p| !peers.contains(p)).collect();
        peers.extend(fallbacks);
        self.peers = peers;
        self.active = 0;
        self.reconnect(self.connect_timeout)
    }

    /// The retry engine, parameterized over its sleep: `sleep(d)` blocks
    /// up to `d` and returns `true` to abandon the retry loop (a tripped
    /// shutdown gate), `false` after an undisturbed wait.
    fn retry_with_sleep(
        &mut self,
        request: &Request,
        req_id: Option<&str>,
        policy: &RetryPolicy,
        mut sleep: impl FnMut(Duration) -> bool,
    ) -> Result<Response, ClientError> {
        let started = Instant::now();
        let transport_retry_safe = !request.is_mutation() || req_id.is_some();
        let mut jitter = Jitter::from_entropy(policy.base, policy.cap);
        let mut broken = false;
        loop {
            if broken {
                // Reconnect failures burn budget like any other attempt.
                let dial = policy.attempt_timeout.unwrap_or(self.connect_timeout);
                match self.reconnect(dial) {
                    Ok(()) => broken = false,
                    Err(e) => {
                        if started.elapsed() + jitter.previous() >= policy.max_elapsed
                            || sleep(jitter.next_sleep())
                        {
                            return Err(e);
                        }
                        continue;
                    }
                }
            }
            self.writer.set_read_timeout(policy.attempt_timeout).ok();
            let outcome = self.request_tagged(request, req_id);
            self.writer.set_read_timeout(None).ok();
            match outcome {
                Ok(response) => {
                    let Response::Busy { retry_after_ms, .. } = &response else {
                        return Ok(response);
                    };
                    let hint = Duration::from_millis(*retry_after_ms);
                    let pause = jitter.next_sleep().max(hint);
                    if started.elapsed() + pause >= policy.max_elapsed || sleep(pause) {
                        // Budget gone (or shutdown): surface the busy
                        // reply itself.
                        return Ok(response);
                    }
                }
                Err(e @ ClientError::Protocol(_)) => return Err(e),
                Err(e) => {
                    // Io or ConnectionClosed: the connection is suspect
                    // either way; reconnect before the next attempt.
                    broken = true;
                    if !transport_retry_safe {
                        return Err(e);
                    }
                    let pause = jitter.next_sleep();
                    if started.elapsed() + pause >= policy.max_elapsed || sleep(pause) {
                        return Err(e);
                    }
                }
            }
        }
    }
}

/// Decorrelated-jitter backoff state: each sleep is uniform in
/// `base..=3×previous`, capped. Randomness comes from a tiny xorshift64*
/// seeded off the clock — retry jitter needs to be *spread*, not
/// cryptographic, and the workspace builds without a `rand` crate.
/// Shared crate-wide: the replicator's reconnect loop and the router's
/// health loop reuse it so cluster-internal retries desynchronize too.
pub(crate) struct Jitter {
    base: Duration,
    cap: Duration,
    previous: Duration,
    state: u64,
}

impl Jitter {
    pub(crate) fn from_entropy(base: Duration, cap: Duration) -> Self {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9E37_79B9_7F4A_7C15, |d| d.as_nanos() as u64)
            | 1;
        Self { base, cap, previous: base, state: seed }
    }

    pub(crate) fn previous(&self) -> Duration {
        self.previous
    }

    /// Resets the spread back to `base`, as after a successful attempt.
    pub(crate) fn reset(&mut self) {
        self.previous = self.base;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna); period 2^64-1, plenty for sleep jitter.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn next_sleep(&mut self) -> Duration {
        let base = self.base.as_millis() as u64;
        let upper = (self.previous.as_millis() as u64).saturating_mul(3).max(base + 1);
        let span = upper - base;
        let sleep =
            Duration::from_millis(base + self.next_u64() % span).min(self.cap).max(self.base);
        self.previous = sleep;
        sleep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_errors_display_and_chain() {
        let e = ClientError::from(std::io::Error::other("nope"));
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ClientError::ConnectionClosed.to_string().contains("closed"));
    }

    #[test]
    fn jitter_stays_within_base_and_cap() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_millis(500);
        let mut jitter = Jitter::from_entropy(base, cap);
        let mut seen_above_base = false;
        for _ in 0..1000 {
            let sleep = jitter.next_sleep();
            assert!(sleep >= base && sleep <= cap, "{sleep:?} outside [{base:?}, {cap:?}]");
            seen_above_base |= sleep > base;
        }
        assert!(seen_above_base, "jitter must actually spread, not pin to base");
    }

    #[test]
    fn retry_policy_budget_constructor() {
        let policy = RetryPolicy::with_budget_ms(750);
        assert_eq!(policy.max_elapsed, Duration::from_millis(750));
        assert_eq!(policy.base, RetryPolicy::default().base);
    }

    #[test]
    fn untagged_mutation_is_not_retried_over_transport_failure() {
        // A listener that accepts and instantly drops the connection:
        // every attempt fails with ConnectionClosed / a reset.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let alive = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let alive_bg = std::sync::Arc::clone(&alive);
        let handle = std::thread::spawn(move || {
            listener.set_nonblocking(true).ok();
            while alive_bg.load(std::sync::atomic::Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => drop(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        let mut client = Client::connect(addr).unwrap();
        let close = Request::Close { session: "s".into() };
        let policy = RetryPolicy::with_budget_ms(400);
        let started = Instant::now();
        let err = client.request_with_retry(&close, None, &policy).unwrap_err();
        assert!(matches!(err, ClientError::Io(_) | ClientError::ConnectionClosed), "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "untagged mutation must fail fast, not burn the retry budget"
        );
        alive.store(false, std::sync::atomic::Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn tripped_gate_aborts_retry_backoff_early() {
        // A listener that accepts and instantly drops: every ping
        // attempt fails, so the client sits in backoff for most of its
        // 30 s budget — unless the gate wakes it.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let alive = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let alive_bg = std::sync::Arc::clone(&alive);
        let acceptor = std::thread::spawn(move || {
            listener.set_nonblocking(true).ok();
            while alive_bg.load(std::sync::atomic::Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => drop(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        let gate = std::sync::Arc::new(ShutdownGate::new());
        let trigger = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                gate.trigger();
            })
        };
        let mut client = Client::connect(addr).unwrap();
        let policy = RetryPolicy::with_budget_ms(30_000);
        let started = Instant::now();
        let outcome = client.request_with_retry_until(&Request::Ping, None, &policy, &gate);
        assert!(outcome.is_err(), "the dead backend never answered");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "a tripped gate must abandon the 30 s retry budget, took {:?}",
            started.elapsed()
        );
        alive.store(false, std::sync::atomic::Ordering::SeqCst);
        trigger.join().unwrap();
        acceptor.join().unwrap();
    }

    #[test]
    fn connect_nodes_skips_dead_peers() {
        // A bound-then-dropped listener leaves a port that refuses.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let live_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let live = live_listener.local_addr().unwrap();
        let client =
            Client::connect_nodes(&[dead, live.to_string()], Duration::from_millis(500))
                .expect("second node is reachable");
        assert_eq!(client.peer(), live, "the dead first node must be skipped");
        // No node reachable → the dial error surfaces, promptly.
        drop(live_listener);
        let started = Instant::now();
        let Err(err) = Client::connect_nodes(&[live.to_string()], Duration::from_millis(500))
        else {
            panic!("a dropped listener must refuse connections")
        };
        assert!(matches!(err, ClientError::Io(_)), "{err}");
        assert!(started.elapsed() < Duration::from_secs(2));
        // An empty list is refused outright.
        assert!(Client::connect_nodes(&[], Duration::from_millis(10)).is_err());
    }

    #[test]
    fn retry_reconnects_to_the_next_node_after_a_transport_failure() {
        // Node A accepts one connection then dies; node B answers pings.
        let a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = [a.local_addr().unwrap().to_string(), b.local_addr().unwrap().to_string()];
        let a_thread = std::thread::spawn(move || {
            let (stream, _) = a.accept().unwrap();
            drop(stream); // immediate hangup, then the listener dies too
        });
        let b_thread = std::thread::spawn(move || {
            use std::io::{BufRead, BufReader, Write};
            let (stream, _) = b.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(Request::decode(line.trim()), Ok(Request::Ping)));
            let reply = Response::Pong {
                version: crate::protocol::PROTOCOL_VERSION,
                role: None,
                epoch: 0,
                peer: None,
            }
            .encode();
            writeln!(writer, "{reply}").unwrap();
        });
        let mut client = Client::connect_nodes(&addrs, Duration::from_millis(500)).unwrap();
        a_thread.join().unwrap();
        let policy = RetryPolicy::with_budget_ms(3_000);
        let response = client.request_with_retry(&Request::Ping, None, &policy).unwrap();
        assert!(matches!(response, Response::Pong { .. }), "{response:?}");
        assert_eq!(client.peer().to_string(), addrs[1], "must have failed over to node B");
        b_thread.join().unwrap();
    }
}
