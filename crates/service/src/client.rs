//! A small blocking client for the wire protocol.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Request, Response, ServiceError};

/// A client-side failure: transport trouble or a malformed reply.
///
/// A *typed* server failure is not an error at this layer — it arrives
/// as [`Response::Error`] so callers can match on its
/// [`kind`](crate::protocol::ErrorKind).
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed.
    Io(std::io::Error),
    /// The server closed the connection mid-request.
    ConnectionClosed,
    /// The reply line did not decode as a protocol response.
    Protocol(ServiceError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "malformed server reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::ConnectionClosed => None,
            ClientError::Protocol(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection speaking the newline-delimited protocol.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running `chop serve`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request and blocks for its response. Note that a long
    /// `explore` blocks for as long as the search runs — bound it with
    /// [`ExploreParams::deadline_ms`](crate::protocol::ExploreParams).
    ///
    /// # Errors
    ///
    /// Transport failures and undecodable replies; typed server errors
    /// come back as [`Response::Error`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::ConnectionClosed);
        }
        Response::decode(reply.trim()).map_err(ClientError::Protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_errors_display_and_chain() {
        let e = ClientError::from(std::io::Error::other("nope"));
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ClientError::ConnectionClosed.to_string().contains("closed"));
    }
}
