//! The write-ahead journal that makes sessions crash-safe.
//!
//! Every state-mutating request the [`SessionManager`](crate::manager::
//! SessionManager) applies (`open`, `repartition`, `set_constraints`,
//! `close`) is appended to one append-only file under `--state-dir`
//! before the client is answered. The journal also records cluster
//! **role transitions** as `role_change {epoch, role}` lines — written
//! on every promotion and fencing demotion, and prepended to compaction
//! snapshots — so a restarted node replays straight back into its last
//! epoch and role instead of waking up as a split-brain primary. On
//! startup
//! [`SessionManager::recover`](crate::manager::SessionManager::recover)
//! replays the journal through the exact same mutation paths, rebuilding
//! every named session; the shared prediction cache re-warms naturally on
//! the first explore.
//!
//! # Record format
//!
//! One record per line:
//!
//! ```text
//! J1 <len> <crc32> <payload>\n
//! ```
//!
//! * `J1` — record magic + format version.
//! * `<len>` — byte length of `<payload>` (decimal). A record whose
//!   payload is shorter than declared is *torn* (the process died
//!   mid-write) and is skipped on recovery.
//! * `<crc32>` — CRC-32 (IEEE) of the payload bytes, lowercase hex. A
//!   mismatch means on-disk corruption; the record is skipped.
//! * `<payload>` — the mutating [`Request`] in its wire encoding
//!   (including the optional `req_id` envelope field), so the journal is
//!   versioned by the same `"v"` field as the protocol and replays
//!   through [`Request::decode_tagged`].
//!
//! Each append is flushed and `fsync`'d before it is acknowledged.
//! Recovery is *lenient at the tail and strict before it*: the first
//! invalid record ends replay (everything after it is counted as
//! skipped, reported with a warning, and truncated away so new appends
//! start on a clean boundary) — a torn tail never panics and never
//! poisons later appends.
//!
//! # Compaction
//!
//! The log grows with every mutation, so once it holds more than
//! `snapshot_every` records [`Journal::compact`] rewrites it as a
//! snapshot: the minimal replay sequence for the *live* sessions only
//! (one `open` plus the net mutation history per session, `req_id`s
//! preserved so the idempotency window survives a restart). The rewrite
//! goes to a temp file that is fsync'd and atomically renamed over the
//! journal, then the directory is fsync'd — a crash during compaction
//! leaves either the old journal or the new one, never a mix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::protocol::Request;

#[cfg(feature = "fault-inject")]
use chop_core::prelude::fault::{AppendFault, IoFaultPlan};

/// File name of the journal inside `--state-dir`.
pub const JOURNAL_FILE: &str = "journal.chopwal";

/// Record magic + format version.
const MAGIC: &str = "J1";

/// One journaled mutation: the request plus its optional `req_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The mutating request, exactly as it was applied.
    pub request: Request,
    /// The client's idempotency tag, if the request carried one.
    pub req_id: Option<String>,
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// Records that validated and decoded, in append order.
    pub entries: Vec<JournalEntry>,
    /// Torn or corrupt records dropped at the tail (0 on a clean log).
    pub skipped: usize,
}

/// An open, append-only journal handle.
pub struct Journal {
    path: PathBuf,
    file: File,
    records: usize,
    snapshot_every: usize,
    #[cfg(feature = "fault-inject")]
    io_faults: IoFaultPlan,
    #[cfg(feature = "fault-inject")]
    appends: usize,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("records", &self.records)
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

/// CRC-32 (IEEE 802.3), bitwise — no table, the journal is not a hot
/// path (every record also pays an `fsync`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Validates one journal line, returning its payload on success.
fn parse_record(line: &str) -> Result<&str, String> {
    let mut parts = line.splitn(4, ' ');
    let (magic, len, crc, payload) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(l), Some(c), Some(p)) => (m, l, c, p),
            _ => return Err("short record header".to_owned()),
        };
    if magic != MAGIC {
        return Err(format!("unknown record magic {magic:?}"));
    }
    let declared: usize = len.parse().map_err(|_| format!("bad record length {len:?}"))?;
    if payload.len() != declared {
        return Err(format!("torn record: {} of {declared} payload bytes", payload.len()));
    }
    let expected =
        u32::from_str_radix(crc, 16).map_err(|_| format!("bad record crc {crc:?}"))?;
    let actual = crc32(payload.as_bytes());
    if actual != expected {
        return Err(format!("crc mismatch: stored {expected:08x}, computed {actual:08x}"));
    }
    Ok(payload)
}

/// Renders one entry as a full record line (with trailing newline).
fn render_record(entry_payload: &str) -> String {
    format!(
        "{MAGIC} {} {:08x} {entry_payload}\n",
        entry_payload.len(),
        crc32(entry_payload.as_bytes())
    )
}

impl Journal {
    /// Opens (creating if needed) the journal under `state_dir`, scanning
    /// any existing records. Torn or corrupt tail records are reported in
    /// the scan — never an error — and truncated away so appends resume
    /// on a clean record boundary. `snapshot_every == 0` disables
    /// compaction.
    ///
    /// # Errors
    ///
    /// Real I/O failures only (unreadable directory, permission trouble).
    pub fn open(
        state_dir: &Path,
        snapshot_every: usize,
    ) -> std::io::Result<(Self, JournalScan)> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new().read(true).create(true).append(true).open(&path)?;
        let mut raw = String::new();
        file.read_to_string(&mut raw)?;

        let mut scan = JournalScan::default();
        let mut valid_bytes = 0_u64;
        let mut lines = raw.split_inclusive('\n');
        for line in &mut lines {
            let complete = line.ends_with('\n');
            let body = line.trim_end_matches('\n');
            let outcome = if complete {
                parse_record(body).and_then(|payload| {
                    Request::decode_tagged(payload)
                        .map(|(request, req_id)| JournalEntry { request, req_id })
                        .map_err(|e| format!("undecodable payload: {e}"))
                })
            } else {
                Err("torn record: no newline before end of file".to_owned())
            };
            match outcome {
                Ok(entry) => {
                    scan.entries.push(entry);
                    valid_bytes += line.len() as u64;
                }
                Err(reason) => {
                    // First bad record ends replay: everything from here
                    // on is untrusted tail.
                    eprintln!("chop-service: journal: skipping record: {reason}");
                    scan.skipped = 1 + lines.count();
                    break;
                }
            }
        }
        if valid_bytes < raw.len() as u64 {
            file.set_len(valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = scan.entries.len();
        Ok((
            Self {
                path,
                file,
                records,
                snapshot_every,
                #[cfg(feature = "fault-inject")]
                io_faults: IoFaultPlan::none(),
                #[cfg(feature = "fault-inject")]
                appends: 0,
            },
            scan,
        ))
    }

    /// Scripts I/O faults into subsequent appends (tests only).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_io_faults(mut self, plan: IoFaultPlan) -> Self {
        self.set_io_faults(plan);
        self
    }

    /// In-place variant of [`Journal::with_io_faults`], for a journal
    /// already mounted behind a lock. Resets the append counter so the
    /// plan's budget counts from now.
    #[cfg(feature = "fault-inject")]
    pub fn set_io_faults(&mut self, plan: IoFaultPlan) {
        self.io_faults = plan;
        self.appends = 0;
    }

    /// Records currently in the journal file.
    #[must_use]
    pub fn records(&self) -> usize {
        self.records
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one mutation record, flushing and `fsync`ing before
    /// returning — when this succeeds, the record survives a crash.
    ///
    /// # Errors
    ///
    /// The write or sync failure; the caller must not apply (or must not
    /// acknowledge) the mutation when the append fails.
    pub fn append(&mut self, request: &Request, req_id: Option<&str>) -> std::io::Result<()> {
        let record = render_record(&request.encode_tagged(req_id));
        #[cfg(feature = "fault-inject")]
        {
            let verdict = self.io_faults.take_append_fault(self.appends);
            self.appends += 1;
            match verdict {
                AppendFault::None => {}
                AppendFault::Fail => {
                    return Err(std::io::Error::other("injected journal append fault"));
                }
                AppendFault::Torn(bytes) => {
                    // Persist a prefix only — the crash-time torn write.
                    let keep = bytes.min(record.len());
                    self.file.write_all(&record.as_bytes()[..keep])?;
                    self.file.flush()?;
                    self.file.sync_data()?;
                    self.records += 1;
                    return Ok(());
                }
            }
        }
        self.file.write_all(record.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Whether the journal has grown past the snapshot threshold.
    #[must_use]
    pub fn should_compact(&self) -> bool {
        self.snapshot_every > 0 && self.records > self.snapshot_every
    }

    /// Rewrites the journal as the given snapshot (the minimal replay
    /// sequence for the live sessions): temp file, fsync, atomic rename,
    /// directory fsync. On failure the old journal is left untouched.
    ///
    /// # Errors
    ///
    /// The underlying write, sync or rename failure.
    pub fn compact(&mut self, snapshot: &[JournalEntry]) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("chopwal.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            for entry in snapshot {
                let payload = entry.request.encode_tagged(entry.req_id.as_deref());
                tmp.write_all(render_record(&payload).as_bytes())?;
            }
            tmp.flush()?;
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Persist the rename itself. Directory fsync is a no-op (or
            // an error to ignore) on some filesystems; best effort.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.records = snapshot.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OpenParams;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chop-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_req(name: &str) -> Request {
        Request::Open {
            session: name.into(),
            params: OpenParams {
                spec: "x = input 8\ny = output x\n".into(),
                ..OpenParams::default()
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tempdir("roundtrip");
        let (mut journal, scan) = Journal::open(&dir, 0).unwrap();
        assert!(scan.entries.is_empty());
        journal.append(&open_req("a"), Some("id-1")).unwrap();
        journal
            .append(&Request::Repartition { session: "a".into(), node: 1, to: 0 }, None)
            .unwrap();
        journal.append(&Request::Close { session: "a".into() }, Some("id-2")).unwrap();
        drop(journal);

        let (journal, scan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(journal.records(), 3);
        assert_eq!(scan.skipped, 0);
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(scan.entries[0].request, open_req("a"));
        assert_eq!(scan.entries[0].req_id.as_deref(), Some("id-1"));
        assert_eq!(scan.entries[2].req_id.as_deref(), Some("id-2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_skipped_and_truncated() {
        let dir = tempdir("torn");
        let (mut journal, _) = Journal::open(&dir, 0).unwrap();
        journal.append(&open_req("keep"), None).unwrap();
        journal.append(&open_req("gone"), None).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Tear the last record in half, as a crash mid-write would.
        let raw = std::fs::read_to_string(&path).unwrap();
        let keep = raw.len() - 20;
        std::fs::write(&path, &raw[..keep]).unwrap();

        let (journal, scan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].request, open_req("keep"));
        assert_eq!(scan.skipped, 1);
        // The torn bytes are gone: appends resume on a clean boundary.
        assert_eq!(journal.records(), 1);
        drop(journal);
        let (_, rescan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(rescan.skipped, 0, "truncation must leave a clean log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_corruption_ends_replay_at_the_bad_record() {
        let dir = tempdir("crc");
        let (mut journal, _) = Journal::open(&dir, 0).unwrap();
        journal.append(&open_req("good"), None).unwrap();
        journal.append(&open_req("bad"), None).unwrap();
        journal.append(&open_req("after"), None).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Flip one payload byte inside the middle record.
        let mut raw = std::fs::read(&path).unwrap();
        let lines: Vec<&[u8]> = raw.split_inclusive(|&b| b == b'\n').collect();
        let offset = lines[0].len() + lines[1].len() - 5;
        drop(lines);
        raw[offset] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();

        let (_, scan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(scan.entries.len(), 1, "replay must stop at the corrupt record");
        assert_eq!(scan.entries[0].request, open_req("good"));
        assert_eq!(scan.skipped, 2, "the corrupt record and everything after it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_to_the_snapshot() {
        let dir = tempdir("compact");
        let (mut journal, _) = Journal::open(&dir, 2).unwrap();
        for i in 0..5 {
            journal.append(&open_req(&format!("s{i}")), None).unwrap();
        }
        assert!(journal.should_compact());
        let snapshot =
            vec![JournalEntry { request: open_req("s4"), req_id: Some("keep-id".into()) }];
        journal.compact(&snapshot).unwrap();
        assert!(!journal.should_compact());
        assert_eq!(journal.records(), 1);
        // Appends keep working after the swap.
        journal.append(&open_req("s5"), None).unwrap();
        drop(journal);
        let (_, scan) = Journal::open(&dir, 2).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.entries[0].req_id.as_deref(), Some("keep-id"));
        assert_eq!(scan.entries[1].request, open_req("s5"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_append_faults_fail_and_tear() {
        use chop_core::prelude::fault::IoFaultPlan;
        let dir = tempdir("iofault");
        let (journal, _) = Journal::open(&dir, 0).unwrap();
        let mut journal = journal.with_io_faults(IoFaultPlan::none().fail_after(1));
        journal.append(&open_req("ok"), None).unwrap();
        assert!(journal.append(&open_req("refused"), None).is_err());
        drop(journal);
        let (journal, scan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(scan.entries.len(), 1, "failed append must not persist");

        let mut journal =
            journal.with_io_faults(IoFaultPlan::none().fail_after(0).torn_tail(9));
        journal.append(&open_req("torn"), None).unwrap();
        drop(journal);
        let (_, scan) = Journal::open(&dir, 0).unwrap();
        assert_eq!(scan.entries.len(), 1, "torn record must be skipped on recovery");
        assert_eq!(scan.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
