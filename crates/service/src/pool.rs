//! The worker pool and its two reactor-facing contracts: admission and
//! completion hand-back.
//!
//! Connections used to park a thread on an mpsc rendezvous waiting for
//! their exploration to finish. Under the epoll reactor no thread waits
//! anywhere: the dispatch layer acquires an [`Admission`] token, hands
//! the pool a job that runs the exploration, and the job pushes its
//! [`Response`] into the shared [`Completions`] queue, ringing the
//! reactor's eventfd doorbell. The reactor wakes, pops the completion
//! and queues the encoded reply on the owning connection.
//!
//! The pool itself stays deliberately tiny — `std::sync::mpsc` plus a
//! shared `Mutex<Receiver>` — because [`Admission`] already bounds how
//! much work can ever be queued.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::net::sys::EventFd;
use crate::protocol::Response;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of job-running threads.
pub(crate) struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) threads.
    pub(crate) fn new(workers: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("chop-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while *receiving*; jobs run
                        // unlocked so workers drain the queue in parallel.
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            // Jobs contain their own panic isolation, but a
                            // worker thread must survive even if that fails.
                            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                            Err(_) => break, // all senders dropped: drain done
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        Self { sender: Some(sender), handles }
    }

    /// Enqueues a job. Fails only while the pool is shutting down.
    pub(crate) fn execute(&self, job: Job) -> Result<(), ()> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Drops the queue (letting workers finish what is already enqueued)
    /// and joins every worker.
    pub(crate) fn shutdown(mut self) {
        self.sender = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Finished worker results on their way back to the reactor: a mutexed
/// queue of `(connection token, response)` pairs plus the eventfd
/// doorbell that interrupts the reactor's `epoll_wait`.
pub(crate) struct Completions {
    queue: Mutex<Vec<(u64, Response)>>,
    doorbell: EventFd,
}

impl Completions {
    /// Creates the queue and its doorbell.
    ///
    /// # Errors
    ///
    /// The `eventfd(2)` failure, if the fd table is exhausted.
    pub(crate) fn new() -> std::io::Result<Self> {
        Ok(Self { queue: Mutex::new(Vec::new()), doorbell: EventFd::new()? })
    }

    /// Hands one finished response back and wakes the reactor. Called
    /// from worker threads.
    pub(crate) fn push(&self, token: u64, response: Response) {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner).push((token, response));
        self.doorbell.signal();
    }

    /// Takes every pending completion and clears the doorbell. Called
    /// from the reactor thread.
    pub(crate) fn drain(&self) -> Vec<(u64, Response)> {
        self.doorbell.drain();
        std::mem::take(&mut *self.queue.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The doorbell fd, for epoll registration.
    pub(crate) fn waker_fd(&self) -> std::os::fd::RawFd {
        self.doorbell.raw()
    }
}

/// Admission control for explorations: at most `max` may be queued or
/// running; past that the dispatch layer answers [`Response::Busy`]
/// instead of growing an unbounded queue.
pub(crate) struct Admission {
    inflight: AtomicUsize,
    max: usize,
}

impl Admission {
    pub(crate) fn new(max: usize) -> Self {
        Self { inflight: AtomicUsize::new(0), max }
    }

    /// Takes one slot, or `None` when the pool is saturated.
    pub(crate) fn try_acquire(self: &Arc<Self>) -> Option<AdmissionToken> {
        self.inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.max).then_some(n + 1)
            })
            .ok()
            .map(|_| AdmissionToken(Arc::clone(self)))
    }

    /// The `busy` reply for a saturated pool, with a backoff hint scaled
    /// by how oversubscribed it is: one explore-slot's worth of queueing
    /// (50 ms) per excess in-flight request, clamped to 25 ms..=2 s.
    pub(crate) fn busy_reply(&self) -> Response {
        let inflight = self.inflight.load(Ordering::SeqCst);
        let excess = inflight.saturating_sub(self.max) as u64;
        Response::Busy {
            inflight: inflight as u64,
            max_inflight: self.max as u64,
            retry_after_ms: (50 * (excess + 1)).clamp(25, 2000),
        }
    }
}

/// RAII admission slot: holding one counts toward the cap; dropping it
/// (wherever the job ends — success, error or panic) releases it.
pub(crate) struct AdmissionToken(Arc<Admission>);

impl Drop for AdmissionToken {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.execute(Box::new(|| panic!("boom"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1, "the single worker must survive");
    }

    #[test]
    fn completions_hand_back_through_the_pool() {
        let completions = Arc::new(Completions::new().expect("eventfd"));
        let pool = WorkerPool::new(2);
        for token in 0..8u64 {
            let completions = Arc::clone(&completions);
            pool.execute(Box::new(move || {
                completions.push(token, Response::ShuttingDown);
            }))
            .unwrap();
        }
        pool.shutdown();
        let mut got = completions.drain();
        got.sort_by_key(|(token, _)| *token);
        assert_eq!(got.len(), 8);
        assert_eq!(got[7].0, 7);
        assert!(completions.drain().is_empty(), "drain must take everything");
    }

    #[test]
    fn admission_caps_and_releases() {
        let admission = Arc::new(Admission::new(2));
        let a = admission.try_acquire().expect("slot 1");
        let _b = admission.try_acquire().expect("slot 2");
        assert!(admission.try_acquire().is_none(), "third slot must be refused");
        match admission.busy_reply() {
            Response::Busy { inflight: 2, max_inflight: 2, retry_after_ms: 50 } => {}
            other => panic!("unexpected busy reply: {other:?}"),
        }
        drop(a);
        assert!(admission.try_acquire().is_some(), "released slot must be reusable");
    }
}
