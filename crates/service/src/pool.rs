//! A small bounded worker pool for exploration jobs.
//!
//! Connections enqueue closures; a fixed set of worker threads drains
//! them. The pool is deliberately tiny — `std::sync::mpsc` plus a shared
//! `Mutex<Receiver>` — because the *admission* bound (the server's
//! `--max-inflight` backpressure) lives upstream in
//! [`Server`](crate::server::Server), not here.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of job-running threads.
pub(crate) struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) threads.
    pub(crate) fn new(workers: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("chop-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while *receiving*; jobs run
                        // unlocked so workers drain the queue in parallel.
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            // Jobs contain their own panic isolation, but a
                            // worker thread must survive even if that fails.
                            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                            Err(_) => break, // all senders dropped: drain done
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        Self { sender: Some(sender), handles }
    }

    /// Enqueues a job. Fails only while the pool is shutting down.
    pub(crate) fn execute(&self, job: Job) -> Result<(), ()> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Drops the queue (letting workers finish what is already enqueued)
    /// and joins every worker.
    pub(crate) fn shutdown(mut self) {
        self.sender = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.execute(Box::new(|| panic!("boom"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(Box::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1, "the single worker must survive");
    }
}
