//! Shared networking plumbing: the epoll reactor, NDJSON line framing,
//! and shutdown wakeups.
//!
//! Three layers live here, bottom to top:
//!
//! * [`sys`] — raw `epoll`/`eventfd` FFI behind safe RAII wrappers (the
//!   only `unsafe` in the crate).
//! * Framing and timing helpers shared by the server and the router:
//!   [`LineBuffer`] (incremental newline framing with an `O(n)` resume
//!   scan), [`serve_blocking_lines`] (the router's thread-per-connection
//!   read loop), [`POLL_INTERVAL`] and [`MAX_LINE_BYTES`] (previously
//!   duplicated constants), and [`ShutdownGate`] (a Condvar-backed drain
//!   flag that *wakes* sleepers instead of letting them sleep-step).
//! * [`reactor`] — the readiness-driven connection engine `chop serve`
//!   runs on.

pub(crate) mod reactor;
pub(crate) mod sys;

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::protocol::{ErrorKind, Response, ServiceError};

/// How long blocked waits (the reactor's idle tick, the router's accept
/// poll and per-connection read timeouts) run before re-checking
/// shutdown and kill flags that may be flipped from outside the wait.
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Maximum bytes one request line may occupy. A client streaming data
/// without a newline would otherwise grow the connection buffer without
/// bound; past this limit the connection gets one typed protocol error
/// reply and is closed. 4 MiB comfortably fits any real spec.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// A drain flag that can *wake* waiters.
///
/// The plain `Arc<AtomicBool>` drain handles forced every long sleep
/// (the router's health-loop interval, client retry backoffs) to be
/// chopped into [`POLL_INTERVAL`] steps so shutdown stayed responsive.
/// This couples the flag with a Condvar: sleepers call
/// [`wait_for`](ShutdownGate::wait_for) with their *full* interval and
/// [`trigger`](ShutdownGate::trigger) interrupts them immediately.
#[derive(Debug, Default)]
pub struct ShutdownGate {
    triggered: AtomicBool,
    lock: Mutex<()>,
    wake: Condvar,
}

impl ShutdownGate {
    /// A fresh, untriggered gate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the gate and wakes every current and future waiter.
    pub fn trigger(&self) {
        self.triggered.store(true, Ordering::SeqCst);
        // Taking the lock orders the store before any waiter's re-check,
        // so a sleeper cannot miss the wakeup between its own check and
        // its wait.
        drop(self.lock.lock().unwrap_or_else(PoisonError::into_inner));
        self.wake.notify_all();
    }

    /// Whether the gate has been tripped.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.triggered.load(Ordering::SeqCst)
    }

    /// Sleeps up to `timeout`, returning early — with `true` — the
    /// moment the gate trips. Returns `false` after an undisturbed wait.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.is_triggered() {
                return true;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (next, _timed_out) = self
                .wake
                .wait_timeout(guard, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            guard = next;
        }
    }
}

/// Incremental newline framing over an append-only byte buffer.
///
/// `scanned` remembers how far the last search got, so feeding a 4 MiB
/// newline-less flood in 4 KiB chunks costs one pass total instead of a
/// quadratic re-scan per chunk.
///
/// Framing is zero-copy: [`next_line`](Self::next_line) hands out a
/// slice *borrowed from the buffer* instead of draining the bytes into
/// a fresh `Vec` per request. Consumed lines linger in front of `head`
/// until the next [`extend`](Self::extend), which compacts them away in
/// one tail memmove per socket read — previously every line paid its
/// own allocation plus a memmove of the entire remaining buffer.
#[derive(Debug, Default)]
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Start of the unconsumed bytes; everything before belongs to
    /// lines already handed out and is reclaimed on the next `extend`.
    head: usize,
    /// End of the prefix known to contain no `\n` past `head` (always
    /// in `head..=buf.len()`).
    scanned: usize,
}

impl LineBuffer {
    /// Appends freshly read bytes, first reclaiming the space held by
    /// lines that were handed out since the previous call.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.scanned -= self.head;
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Returns the next full line *including* its trailing newline, or
    /// `None` when no complete line is buffered yet. The slice borrows
    /// the buffer in place; it is consumed immediately (a later call
    /// returns the following line) but stays valid until the next
    /// [`extend`](Self::extend).
    pub(crate) fn next_line(&mut self) -> Option<&[u8]> {
        let offset = self.buf[self.scanned..].iter().position(|&b| b == b'\n');
        match offset {
            Some(at) => {
                let start = self.head;
                let end = self.scanned + at;
                self.head = end + 1;
                self.scanned = self.head;
                Some(&self.buf[start..=end])
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Unconsumed bytes currently buffered (all part of one incomplete
    /// line whenever [`next_line`](Self::next_line) just returned
    /// `None`).
    pub(crate) fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether no unconsumed bytes are buffered.
    pub(crate) fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }
}

/// One encoded protocol-error reply line, as sent before every
/// server-initiated close (oversized line, truncated request, idle
/// timeout, connection limit) so the peer never sees a silent drop.
pub(crate) fn refusal_line(kind: ErrorKind, message: String) -> Vec<u8> {
    let mut out = Response::Error(ServiceError::new(kind, message)).encode();
    out.push('\n');
    out.into_bytes()
}

/// The blocking thread-per-connection serving loop the router still
/// uses: newline framing with the [`MAX_LINE_BYTES`] cap, a
/// [`POLL_INTERVAL`] read timeout re-checking `gate`, and a typed
/// protocol error before every server-initiated close (oversized line,
/// truncated request). `respond` handles one trimmed, non-empty line.
pub(crate) fn serve_blocking_lines<F>(stream: TcpStream, gate: &ShutdownGate, mut respond: F)
where
    F: FnMut(&str) -> Response,
{
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = stream;
    let mut buf = LineBuffer::default();
    let mut chunk = [0u8; 4096];
    let refuse = |writer: &mut TcpStream, message: String| {
        let _ = writer.write_all(&refusal_line(ErrorKind::Protocol, message));
        let _ = writer.flush();
    };
    loop {
        while let Some(line) = buf.next_line() {
            if line.len() > MAX_LINE_BYTES {
                // A completed line past the limit must be refused like a
                // partial one — parsing it would let a newline smuggled
                // at the end of a flood bypass the cap.
                refuse(&mut writer, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                return;
            }
            let text = String::from_utf8_lossy(line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let mut out = respond(text).encode();
            out.push('\n');
            if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            refuse(&mut writer, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            return;
        }
        if gate.is_triggered() {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    // The peer half-closed mid-request. Tell it what got
                    // lost before closing instead of vanishing silently.
                    refuse(
                        &mut writer,
                        format!(
                            "truncated request: EOF after {} bytes with no newline",
                            buf.len()
                        ),
                    );
                }
                return;
            }
            Ok(n) => buf.extend(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    IoErrorKind::WouldBlock | IoErrorKind::TimedOut | IoErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn line_buffer_frames_across_chunk_boundaries() {
        let mut buf = LineBuffer::default();
        buf.extend(b"alpha\nbe");
        assert_eq!(buf.next_line(), Some(b"alpha\n".as_slice()));
        assert_eq!(buf.next_line(), None);
        buf.extend(b"ta\n\ngamma");
        assert_eq!(buf.next_line(), Some(b"beta\n".as_slice()));
        assert_eq!(buf.next_line(), Some(b"\n".as_slice()));
        assert_eq!(buf.next_line(), None);
        assert_eq!(buf.len(), 5);
        buf.extend(b"\n");
        assert_eq!(buf.next_line(), Some(b"gamma\n".as_slice()));
        assert!(buf.is_empty());
    }

    #[test]
    fn line_buffer_consumes_in_place_and_compacts_on_extend() {
        let mut buf = LineBuffer::default();
        buf.extend(b"one\ntwo\nthree\ntail");
        // Three lines served from one read, no extend in between: each
        // view is a slice of the same backing buffer, and `len` tracks
        // only the unconsumed tail.
        assert_eq!(buf.next_line(), Some(b"one\n".as_slice()));
        assert_eq!(buf.next_line(), Some(b"two\n".as_slice()));
        assert_eq!(buf.next_line(), Some(b"three\n".as_slice()));
        assert_eq!(buf.next_line(), None);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
        // The next extend reclaims the consumed prefix and framing
        // continues across the compaction seam.
        buf.extend(b" end\n");
        assert_eq!(buf.next_line(), Some(b"tail end\n".as_slice()));
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }

    #[test]
    fn shutdown_gate_wakes_sleepers_immediately() {
        let gate = Arc::new(ShutdownGate::new());
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let start = Instant::now();
                let woken = gate.wait_for(Duration::from_secs(30));
                (woken, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        gate.trigger();
        let (woken, waited) = waiter.join().expect("waiter");
        assert!(woken, "a triggered gate must report the wake");
        assert!(
            waited < Duration::from_secs(5),
            "a 30 s wait must be interrupted promptly, waited {waited:?}"
        );
        // Once triggered, waits return instantly.
        assert!(gate.wait_for(Duration::from_secs(30)));
        assert!(gate.is_triggered());
    }

    #[test]
    fn untriggered_gate_times_out() {
        let gate = ShutdownGate::new();
        let start = Instant::now();
        assert!(!gate.wait_for(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
