//! The epoll reactor: one thread, every socket.
//!
//! [`Reactor::run`] owns the listener and every accepted connection and
//! multiplexes them over a single level-triggered epoll instance. It
//! does *only* I/O and framing; request semantics stay with the
//! [`LineHandler`] it is handed (for `chop serve`, the dispatch layer in
//! `server.rs`, which answers cheap requests inline and sends explores
//! to the worker pool).
//!
//! Per-connection state machine:
//!
//! ```text
//!            ┌────────── reading ──────────┐
//!            │  nonblocking reads feed the  │   complete line
//!            │  LineBuffer; EPOLLIN armed   ├────────────────┐
//!            └──────────────▲───────────────┘                ▼
//!                           │ completion            ┌─ dispatching ─┐
//!            outbuf drained │ (via eventfd)         │ explore in the │
//!                           │                       │ worker pool;   │
//!            ┌────────── writing ───────────┐       │ EPOLLIN parked │
//!            │ outbuf flushed opportunisti-  │◀──────┴───────────────┘
//!            │ cally, EPOLLOUT armed only    │  reply queued
//!            │ while bytes remain            │
//!            └──────────────┬───────────────┘
//!                           │ close decided (drain, refusal, EOF)
//!                           ▼
//!            ┌────────── draining ──────────┐
//!            │ no more reads; flush the last │
//!            │ queued replies, then close    │
//!            └──────────────────────────────┘
//! ```
//!
//! Three invariants keep the loop honest:
//!
//! * **Backpressure** — a connection whose pending output exceeds
//!   [`OUT_SOFT_CAP`] stops parsing *and reading* until the peer drains
//!   it, so a non-reading client caps its own memory at roughly the soft
//!   cap plus kernel socket buffers, and can never starve the loop.
//! * **No busy-spin** — `EPOLLIN` is deregistered whenever the
//!   connection is not willing to read (mid-dispatch, output-capped,
//!   draining); with level-triggered epoll, staying subscribed to a
//!   ready-but-unread socket would turn `epoll_wait` into a hot loop.
//! * **Bounded token lifetime** — connection tokens are never reused, so
//!   a worker completion for a connection that died mid-explore is
//!   silently dropped instead of landing on a stranger.

use std::collections::HashMap;
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::sys::{Epoll, EpollEvent, EVENT_ERROR, EVENT_HANGUP, EVENT_READ, EVENT_WRITE};
use super::{refusal_line, LineBuffer, MAX_LINE_BYTES, POLL_INTERVAL};
use crate::pool::Completions;
use crate::protocol::{ErrorKind, Response};

/// Pending-output bytes past which a connection stops parsing and
/// reading until the peer drains replies. Small enough to bound memory
/// per slow consumer, large enough to hold hundreds of typical replies.
pub(crate) const OUT_SOFT_CAP: usize = 256 * 1024;

/// Compact the output buffer once this many flushed bytes accumulate in
/// front of the unsent tail.
const OUT_COMPACT_AT: usize = 64 * 1024;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// What the dispatch layer did with one request line.
pub(crate) enum LineOutcome {
    /// Answer ready now: queue it on the connection.
    Reply(Response),
    /// The request went to the worker pool; the reply will arrive as a
    /// completion tagged with this connection's token. The connection
    /// parks (no parsing, no reading) until then, which is what keeps
    /// per-connection replies in request order.
    Dispatched,
}

/// Request semantics, supplied by the server layer.
pub(crate) trait LineHandler {
    /// Handles one trimmed, non-empty request line from connection
    /// `conn`. Must not block on client I/O (the reactor owns all of
    /// it); CPU-heavy work belongs in the worker pool via
    /// [`LineOutcome::Dispatched`].
    fn handle_line(&self, conn: u64, line: &str) -> LineOutcome;
}

/// Reactor tuning, from the server's `ServeConfig`.
pub(crate) struct ReactorConfig {
    /// Connections past this cap are refused with a typed error.
    pub max_connections: usize,
    /// Idle connections are reaped after this long; `None` disables.
    pub idle_timeout: Option<Duration>,
    /// Request lines admitted per connection per second; lines past the
    /// cap get a typed `busy` reply carrying the window's remaining
    /// milliseconds as `retry_after_ms`, and the connection stays open.
    /// `None` disables.
    pub max_requests_per_sec: Option<u32>,
}

/// One connection's full state.
struct Conn {
    stream: TcpStream,
    inbuf: LineBuffer,
    outbuf: Vec<u8>,
    /// Bytes of `outbuf` already written to the socket.
    out_pos: usize,
    /// A dispatched request is in the worker pool; replies arrive as
    /// completions. No parsing or reading happens until it returns.
    awaiting_worker: bool,
    /// Close as soon as the output buffer flushes (refusal sent, EOF
    /// handled, or drain finished).
    closing: bool,
    /// The peer half-closed its write side (read returned 0).
    read_closed: bool,
    /// Last moment the peer sent bytes or a reply was queued.
    last_activity: Instant,
    /// Event set currently registered with epoll.
    interest: u32,
    /// Start of the current request-rate window.
    rate_window: Instant,
    /// Request lines admitted since `rate_window`.
    rate_count: u32,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Self {
            stream,
            inbuf: LineBuffer::default(),
            outbuf: Vec::new(),
            out_pos: 0,
            awaiting_worker: false,
            closing: false,
            read_closed: false,
            last_activity: now,
            interest: EVENT_READ,
            rate_window: now,
            rate_count: 0,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    /// Whether the state machine wants more input right now.
    fn willing_to_read(&self, draining: bool) -> bool {
        !self.awaiting_worker
            && !self.closing
            && !self.read_closed
            && !draining
            && self.pending_out() <= OUT_SOFT_CAP
    }

    /// Queues one encoded reply line.
    fn push_response(&mut self, response: &Response) {
        let mut out = response.encode();
        out.push('\n');
        self.outbuf.extend_from_slice(out.as_bytes());
        self.last_activity = Instant::now();
    }

    /// Queues a typed error and moves the connection to draining: the
    /// refusal is flushed, then the socket closes.
    fn refuse(&mut self, kind: ErrorKind, message: String) {
        self.outbuf.extend_from_slice(&refusal_line(kind, message));
        self.closing = true;
    }

    /// Writes as much pending output as the socket accepts. `false`
    /// means the connection is dead (write error).
    fn flush_out(&mut self) -> bool {
        loop {
            if self.out_pos == self.outbuf.len() {
                self.outbuf.clear();
                self.out_pos = 0;
                return true;
            }
            match (&self.stream).write(&self.outbuf[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.out_pos > OUT_COMPACT_AT {
            self.outbuf.drain(..self.out_pos);
            self.out_pos = 0;
        }
        true
    }
}

/// The readiness loop. Owns the listener, the epoll instance and every
/// live connection; see the module docs for the state machine.
pub(crate) struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    completions: Arc<Completions>,
    shutdown: Arc<AtomicBool>,
    /// Chaos "power cord": severs every socket and returns immediately.
    kill: Option<Arc<AtomicBool>>,
    config: ReactorConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Graceful drain in progress: no accepts, no reads, finish buffered
    /// requests and flush replies, then exit once every socket is gone.
    draining: bool,
    last_reap: Instant,
}

impl Reactor {
    /// Registers the listener and completion doorbell with a fresh epoll
    /// instance.
    ///
    /// # Errors
    ///
    /// Epoll setup failures (fd exhaustion, kernel without epoll).
    pub(crate) fn new(
        listener: TcpListener,
        completions: Arc<Completions>,
        shutdown: Arc<AtomicBool>,
        kill: Option<Arc<AtomicBool>>,
        config: ReactorConfig,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EVENT_READ)?;
        epoll.add(completions.waker_fd(), TOKEN_WAKER, EVENT_READ)?;
        Ok(Self {
            epoll,
            listener,
            completions,
            shutdown,
            kill,
            config,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            draining: false,
            last_reap: Instant::now(),
        })
    }

    /// Serves until drained (returns `Ok`), killed (returns `Ok`
    /// immediately, dropping every socket), or a fatal listener/epoll
    /// error.
    ///
    /// # Errors
    ///
    /// Only fatal listener or epoll failures; per-connection errors
    /// close that connection and per-request errors are answered on the
    /// wire.
    pub(crate) fn run<H: LineHandler>(mut self, handler: &H) -> std::io::Result<()> {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if let Some(kill) = &self.kill {
                if kill.load(Ordering::SeqCst) {
                    // Simulated `kill -9`: dropping self closes every
                    // socket with no drain and no journal ceremony.
                    // In-flight worker jobs are abandoned; their
                    // completions land in a queue nobody drains, exactly
                    // as a real process death would abandon them.
                    return Ok(());
                }
            }
            if !self.draining && self.shutdown.load(Ordering::SeqCst) {
                self.begin_drain(handler);
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }
            let ready = self.epoll.wait(&mut events, POLL_INTERVAL)?;
            for event in &events[..ready] {
                // Copy out of the (packed on x86) kernel struct first.
                let token = { event.data };
                let flags = { event.events };
                match token {
                    TOKEN_LISTENER => self.accept_ready(handler)?,
                    TOKEN_WAKER => {} // completions drained below every tick
                    _ => self.conn_ready(token, flags, handler),
                }
            }
            self.deliver_completions(handler);
            self.reap_idle(handler);
        }
    }

    /// Accepts until the backlog is empty, registering each connection
    /// (or refusing it with a typed error past `max_connections`).
    fn accept_ready<H: LineHandler>(&mut self, handler: &H) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // raced the drain: close immediately
                    }
                    if self.conns.len() >= self.config.max_connections {
                        // One typed reply, then the socket drops. The
                        // stream is still blocking here, but a fresh
                        // socket's send buffer always takes one line.
                        let _ = stream.set_nodelay(true);
                        let _ = (&stream).write(&refusal_line(
                            ErrorKind::Internal,
                            format!(
                                "connection limit reached ({} connections); retry later",
                                self.config.max_connections
                            ),
                        ));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(stream.as_raw_fd(), token, EVENT_READ).is_err() {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream));
                    // The peer may have sent its first request already;
                    // with level-triggered epoll the next wait reports
                    // it, but serving it now saves a tick.
                    self.conn_ready(token, EVENT_READ, handler);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == IoErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Handles readiness on one connection.
    fn conn_ready<H: LineHandler>(&mut self, token: u64, flags: u32, handler: &H) {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // closed earlier this tick; token is never reused
        };
        let mut alive = true;
        if flags & EVENT_READ != 0 {
            alive = read_some(conn, token, draining, self.config.max_requests_per_sec, handler);
        }
        if alive && flags & (EVENT_ERROR | EVENT_HANGUP) != 0 && flags & EVENT_READ == 0 {
            // Broken pipe with nothing readable: nothing left to say.
            alive = false;
        }
        if alive {
            self.settle(token, handler);
        } else {
            self.conns.remove(&token);
        }
    }

    /// Drains the worker completion queue, queueing each reply on its
    /// connection (or dropping it if the connection died mid-explore).
    fn deliver_completions<H: LineHandler>(&mut self, handler: &H) {
        for (token, response) in self.completions.drain() {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.awaiting_worker = false;
                conn.push_response(&response);
                self.settle(token, handler);
            }
        }
    }

    /// The post-I/O fixpoint for one connection: flush, resume parsing
    /// when backpressure lifts, resolve EOF/drain closes, and re-sync
    /// epoll interest. Removes the connection when it is done or dead.
    fn settle<H: LineHandler>(&mut self, token: u64, handler: &H) {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else { return };
        loop {
            if !conn.flush_out() {
                self.conns.remove(&token);
                return;
            }
            let before_out = conn.outbuf.len();
            let before_state = (conn.awaiting_worker, conn.closing);
            if !conn.awaiting_worker && !conn.closing && conn.pending_out() <= OUT_SOFT_CAP {
                process_lines(conn, token, self.config.max_requests_per_sec, handler);
            }
            if conn.outbuf.len() == before_out
                && (conn.awaiting_worker, conn.closing) == before_state
            {
                break;
            }
        }
        // EOF resolution: every buffered complete line has been served
        // (or is parked behind a dispatch); what remains is either a
        // truncated tail or a clean end.
        if conn.read_closed && !conn.awaiting_worker && !conn.closing {
            if conn.inbuf.is_empty() {
                conn.closing = true;
            } else {
                conn.refuse(
                    ErrorKind::Protocol,
                    format!(
                        "truncated request: EOF after {} bytes with no newline",
                        conn.inbuf.len()
                    ),
                );
            }
            let _ = conn.flush_out();
        }
        // Graceful drain: once the buffered requests are answered and
        // flushed, the connection is done.
        if draining && !conn.awaiting_worker && !conn.closing && conn.pending_out() == 0 {
            conn.closing = true;
        }
        if conn.closing && conn.pending_out() == 0 {
            self.conns.remove(&token);
            return;
        }
        let desired = (u32::from(conn.willing_to_read(draining)) * EVENT_READ)
            | (u32::from(conn.pending_out() > 0) * EVENT_WRITE);
        if desired != conn.interest {
            if self.epoll.modify(conn.stream.as_raw_fd(), token, desired).is_err() {
                self.conns.remove(&token);
                return;
            }
            conn.interest = desired;
        }
    }

    /// Enters graceful drain: stop accepting and reading, answer what is
    /// buffered, flush, close. [`run`](Self::run) returns once the last
    /// connection is gone.
    fn begin_drain<H: LineHandler>(&mut self, handler: &H) {
        self.draining = true;
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            self.settle(token, handler);
        }
    }

    /// Closes connections idle past the deadline, each with a typed
    /// error first. Throttled to a fraction of the timeout so a large
    /// idle fleet is not rescanned every tick.
    fn reap_idle<H: LineHandler>(&mut self, handler: &H) {
        let Some(timeout) = self.config.idle_timeout else { return };
        if self.draining {
            return;
        }
        let cadence = (timeout / 4).clamp(Duration::from_millis(25), Duration::from_secs(1));
        let now = Instant::now();
        if now.duration_since(self.last_reap) < cadence {
            return;
        }
        self.last_reap = now;
        for conn in self.conns.values_mut() {
            // A dispatched explore is work, not idleness; a closing
            // connection is already on its way out.
            if conn.awaiting_worker || conn.closing {
                continue;
            }
            if now.duration_since(conn.last_activity) >= timeout {
                conn.refuse(
                    ErrorKind::Protocol,
                    format!(
                        "idle timeout: no request completed in {} ms; closing",
                        timeout.as_millis()
                    ),
                );
                let _ = conn.flush_out();
            }
        }
        // Flushed refusals close immediately; unflushed ones arm
        // EPOLLOUT through the normal settle path.
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            if self.conns.get(&token).is_some_and(|c| c.closing) {
                self.settle(token, handler);
            }
        }
    }
}

/// Nonblocking read loop for one readable connection: fill the line
/// buffer, hand complete lines to the dispatcher, stop at `WouldBlock`
/// or whenever the state machine stops wanting input. `false` means the
/// connection died.
fn read_some<H: LineHandler>(
    conn: &mut Conn,
    token: u64,
    draining: bool,
    rate_cap: Option<u32>,
    handler: &H,
) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if !conn.willing_to_read(draining) {
            return true;
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                return true;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.inbuf.extend(&chunk[..n]);
                process_lines(conn, token, rate_cap, handler);
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == IoErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Admits one request line against the per-second rate cap;
/// `Some` is the typed `busy` refusal to queue instead. The window
/// is fixed, not sliding: it resets a second after its first
/// admitted line, and `retry_after_ms` is the window's remaining
/// lifetime.
///
/// A free function over the two rate fields, not a `Conn` method: the
/// caller holds a borrow of `conn.inbuf` (the in-place request line)
/// while admitting, and disjoint field borrows keep that legal.
fn admit_line(
    rate_window: &mut Instant,
    rate_count: &mut u32,
    cap: Option<u32>,
) -> Option<Response> {
    let cap = cap?;
    let now = Instant::now();
    let elapsed = now.duration_since(*rate_window);
    if elapsed >= Duration::from_secs(1) {
        *rate_window = now;
        *rate_count = 0;
    }
    if *rate_count >= cap {
        let remaining = Duration::from_secs(1).saturating_sub(elapsed);
        return Some(Response::Busy {
            inflight: u64::from(*rate_count),
            max_inflight: u64::from(cap),
            retry_after_ms: (remaining.as_millis() as u64).max(1),
        });
    }
    *rate_count += 1;
    None
}

/// What one framing step decided, computed while the in-place line
/// slice (borrowed from `conn.inbuf`) is alive; the mutations it calls
/// for run after the borrow ends.
enum LineStep {
    /// No complete line buffered (the caller still refuses a partial
    /// line that has already outgrown [`MAX_LINE_BYTES`]).
    Starved,
    /// Blank line: skip it.
    Skip,
    /// A completed line past [`MAX_LINE_BYTES`]: refuse and close.
    Oversized,
    /// Queue this reply (a handler answer or a rate-cap `busy`).
    Reply(Response),
    /// The request went to the worker pool; park the connection.
    Dispatched,
}

/// Serves buffered complete lines until the connection parks (dispatch
/// in flight), closes, caps its output, or runs out of lines.
///
/// Lines are decoded in place from the connection's [`LineBuffer`] —
/// a borrowed slice, no per-request copy. The borrow is confined to
/// the `LineStep` computation; `conn` is only mutated afterwards.
fn process_lines<H: LineHandler>(
    conn: &mut Conn,
    token: u64,
    rate_cap: Option<u32>,
    handler: &H,
) {
    while !conn.awaiting_worker && !conn.closing && conn.pending_out() <= OUT_SOFT_CAP {
        let step = match conn.inbuf.next_line() {
            None => LineStep::Starved,
            // A completed line past the limit must be refused like a
            // partial one — parsing it would let a newline smuggled at
            // the end of a flood bypass the cap.
            Some(line) if line.len() > MAX_LINE_BYTES => LineStep::Oversized,
            Some(line) => {
                let text = String::from_utf8_lossy(line);
                let text = text.trim();
                if text.is_empty() {
                    LineStep::Skip
                } else if let Some(busy) =
                    // The rate cap is enforced here, in the connection's
                    // own state machine: an over-limit line costs one
                    // queued `busy` reply and no dispatch, and the
                    // connection keeps serving — unlike the
                    // oversized-line refusals, which close.
                    admit_line(
                        &mut conn.rate_window,
                        &mut conn.rate_count,
                        rate_cap,
                    )
                {
                    LineStep::Reply(busy)
                } else {
                    match handler.handle_line(token, text) {
                        LineOutcome::Reply(response) => LineStep::Reply(response),
                        LineOutcome::Dispatched => LineStep::Dispatched,
                    }
                }
            }
        };
        match step {
            LineStep::Starved => {
                if conn.inbuf.len() > MAX_LINE_BYTES {
                    conn.refuse(
                        ErrorKind::Protocol,
                        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    );
                }
                return;
            }
            LineStep::Skip => {}
            LineStep::Oversized => {
                conn.refuse(
                    ErrorKind::Protocol,
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                return;
            }
            LineStep::Reply(response) => conn.push_response(&response),
            LineStep::Dispatched => conn.awaiting_worker = true,
        }
    }
}
