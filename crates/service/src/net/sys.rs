//! Raw `epoll(7)` and `eventfd(2)` bindings with safe RAII wrappers.
//!
//! The approved dependency list has no `libc` or async runtime, so this
//! module talks to the three epoll syscall wrappers and `eventfd`
//! directly, in the same spirit as the CLI's bare `signal(2)` FFI. It is
//! the only file in the crate allowed to use `unsafe`; everything above
//! it works with the safe [`Epoll`] / [`EventFd`] types.
//!
//! Level-triggered semantics only: the reactor re-arms interest with
//! `EPOLL_CTL_MOD` instead of juggling edge-triggered starvation cases,
//! and deliberately deregisters `EPOLLIN` while a connection is not
//! willing to read (otherwise a ready-but-unread socket would spin the
//! event loop at 100% CPU).
#![allow(unsafe_code)]

use std::ffi::{c_int, c_uint, c_void};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable (`EPOLLIN`).
pub(crate) const EVENT_READ: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub(crate) const EVENT_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never registered.
pub(crate) const EVENT_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`); always reported, never registered.
pub(crate) const EVENT_HANGUP: u32 = 0x010;

const EPOLL_CLOEXEC: c_int = 0o200_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o200_0000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, kernel layout. x86 and x86-64 declare the
/// struct packed in the kernel UAPI headers (`EPOLL_PACKED`); other
/// architectures use natural alignment. Getting this wrong corrupts the
/// `data` word on one side or the other, so mirror the kernel exactly.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Bitmask of `EVENT_*` flags.
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each readiness.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// Starts watching `fd` for `events`, tagging readiness with `token`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Replaces the watched event set for an already-added `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Stops watching `fd`. Closing the fd deregisters it implicitly;
    /// this exists for fds that outlive their registration.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        // SAFETY: `event` is a valid, live EpollEvent for the duration of
        // the call (the kernel copies it; DEL ignores it entirely).
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &raw mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until readiness or `timeout`, filling `events` from the
    /// front. Returns the number of records written; an interrupted wait
    /// (`EINTR`) is reported as zero records, not an error.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout: Duration,
    ) -> io::Result<usize> {
        let millis = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
        let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: the pointer/length pair describes the caller's slice,
        // which the kernel fills with at most `capacity` records.
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, millis) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(usize::try_from(rc).unwrap_or(0))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is an fd this struct owns exclusively.
        unsafe {
            close(self.fd);
        }
    }
}

/// An owned nonblocking eventfd: a one-word doorbell that worker threads
/// ring ([`signal`](EventFd::signal)) to wake the reactor's `epoll_wait`.
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub(crate) fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; negative return is an error.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The raw fd, for epoll registration.
    pub(crate) fn raw(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Thread-safe; an `EAGAIN` (counter already
    /// saturated — the reactor is certainly awake) is deliberately
    /// ignored, any other failure is moot because the reactor also
    /// re-checks its queues on its idle tick.
    pub(crate) fn signal(&self) {
        let value: u64 = 1;
        // SAFETY: writes of exactly 8 bytes from a valid u64 are the
        // documented eventfd contract.
        unsafe {
            write(self.fd, (&raw const value).cast::<c_void>(), 8);
        }
    }

    /// Clears the doorbell so the next `epoll_wait` blocks again.
    pub(crate) fn drain(&self) {
        let mut value: u64 = 0;
        // SAFETY: reads of exactly 8 bytes into a valid u64 are the
        // documented eventfd contract; EAGAIN (already clear) is fine.
        unsafe {
            read(self.fd, (&raw mut value).cast::<c_void>(), 8);
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` is an fd this struct owns exclusively.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().expect("epoll");
        let doorbell = EventFd::new().expect("eventfd");
        epoll.add(doorbell.raw(), 7, EVENT_READ).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];

        // Nothing rung: the wait times out empty.
        let n = epoll.wait(&mut events, Duration::from_millis(10)).expect("wait");
        assert_eq!(n, 0);

        doorbell.signal();
        let n = epoll.wait(&mut events, Duration::from_millis(1000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert_ne!({ events[0].events } & EVENT_READ, 0);

        // Drained: level-triggered readiness goes away.
        doorbell.drain();
        let n = epoll.wait(&mut events, Duration::from_millis(10)).expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let epoll = Epoll::new().expect("epoll");
        epoll.add(listener.as_raw_fd(), 1, EVENT_READ).expect("add listener");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll.wait(&mut events, Duration::from_millis(10)).expect("wait");
        assert_eq!(n, 0, "no pending connection yet");

        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let n = epoll.wait(&mut events, Duration::from_millis(1000)).expect("wait");
        assert_eq!(n, 1, "pending connection must be reported");
        assert_eq!({ events[0].data }, 1);

        let (server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        epoll.add(server_side.as_raw_fd(), 2, EVENT_READ).expect("add conn");
        client.write_all(b"hello").expect("write");
        let n = epoll.wait(&mut events, Duration::from_millis(1000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 2);

        epoll.delete(server_side.as_raw_fd()).expect("delete");
        let n = epoll.wait(&mut events, Duration::from_millis(10)).expect("wait");
        assert_eq!(n, 0, "deleted fd must not report");
    }
}
