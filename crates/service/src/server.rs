//! The TCP server: an epoll reactor for all I/O, a worker pool for all
//! search CPU.
//!
//! Architecture (one box per thread — note there is exactly *one* I/O
//! thread no matter how many clients are connected):
//!
//! ```text
//!        reactor thread (run)                      worker pool
//!   ┌───────────────────────────────┐        ┌─────────────────────┐
//!   │ epoll over listener + every   │ explore│ N threads drain     │
//!   │ connection + eventfd doorbell;├───────▶│ exploration jobs;   │
//!   │ nonblocking accept, NDJSON    │        │ completions go back │
//!   │ framing, cheap requests       │◀───────┤ through a queue +   │
//!   │ answered inline, replies      │ eventfd│ eventfd wakeup      │
//!   │ queued with EPOLLOUT re-arm   │        └─────────────────────┘
//!   └───────────────────────────────┘
//! ```
//!
//! * **Scaling** — an idle connection costs a hash-map entry and an
//!   epoll registration, not a thread and 10 wakeups/second. The old
//!   thread-per-connection loop lives on only in `chop router`.
//! * **Backpressure** — an `explore` is admitted only while fewer than
//!   `max_inflight` explorations are queued or running; past that the
//!   client gets a typed [`Response::Busy`] immediately. A client that
//!   stops *reading* gets per-connection backpressure instead: its
//!   output queue caps, its reads pause, and its memory stays bounded.
//! * **Panic isolation** — every request is handled under
//!   `catch_unwind`, twice for explorations (once around the dispatch,
//!   once inside the worker job), so one poisoned request produces one
//!   `internal` error response and the server keeps serving.
//! * **Graceful drain** — a `shutdown` request flips a shared flag; the
//!   reactor stops accepting and reading, answers what is buffered
//!   (waiting out dispatched explorations), flushes and closes every
//!   connection, and [`Server::run`] returns `Ok(())` (the CLI maps
//!   that to exit 0). There is no in-process SIGINT hook (that would
//!   need signal-handler state here); embedders wire one to
//!   [`Server::shutdown_handle`].

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chop_core::prelude::{
    load_snapshot, recommended_shards, write_snapshot, PredictionCache, SnapshotLoaded,
    DEFAULT_CACHE_CAPACITY,
};

use crate::manager::{RecoveryReport, SessionManager};
use crate::net::reactor::{LineHandler, LineOutcome, Reactor, ReactorConfig};
use crate::pool::{Admission, Completions, WorkerPool};
use crate::protocol::{ErrorKind, Request, Response, ServiceError};
use crate::replication::Replicator;

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads running explorations.
    pub workers: usize,
    /// Maximum explorations queued or running before `busy` replies.
    pub max_inflight: usize,
    /// Default per-exploration thread count (a request's `jobs` field
    /// overrides it).
    pub jobs: usize,
    /// Directory for the write-ahead session journal. `None` keeps every
    /// session purely in memory (the pre-journal behavior).
    pub state_dir: Option<PathBuf>,
    /// Journal records tolerated before a compaction snapshot rewrites
    /// the log down to the live sessions. 0 disables compaction.
    pub snapshot_every: usize,
    /// Run as a warm standby: refuse direct mutations, accept state over
    /// the replication stream until promoted.
    pub standby: bool,
    /// Ship every committed mutation to the standby at this `host:port`
    /// address (the primary half of a replicated pair). Legacy one-way
    /// spelling of [`peer`](Self::peer); `peer` wins when both are set.
    pub replicate_to: Option<String>,
    /// The symmetric replication peer at this `host:port`: ship to it
    /// while primary, park (and accept its stream) while standby —
    /// combined with `standby` for the initial role, this is what makes
    /// a restarted fenced primary rejoin as a standby automatically.
    pub peer: Option<String>,
    /// Concurrent connections accepted before new ones are refused with
    /// a typed error (the reactor happily holds tens of thousands; this
    /// caps fd usage).
    pub max_connections: usize,
    /// Idle connections are closed — typed error first — after this
    /// many milliseconds without a completed request. 0 disables
    /// reaping.
    pub idle_timeout_ms: u64,
    /// Request lines admitted per connection per second; lines past the
    /// cap are answered with a typed `busy` reply (its `retry_after_ms`
    /// is the window's remaining lifetime) and the connection stays
    /// open. 0 disables the cap.
    pub max_requests_per_sec: u32,
    /// Lock stripes in the shared prediction cache (rounded up to a
    /// power of two). 0 sizes the stripe automatically from the worker
    /// and jobs counts. Shard count never affects exploration results.
    pub cache_shards: usize,
    /// Path of the prediction-cache snapshot file: loaded at startup
    /// (warm-starting the cache) and rewritten on graceful drain and
    /// every [`cache_snapshot_every`](ServeConfig::cache_snapshot_every)
    /// insertions. `None` keeps the cache purely in memory.
    pub cache_snapshot: Option<PathBuf>,
    /// Cache insertions between periodic snapshot rewrites. 0 disables
    /// the periodic cadence (the graceful-drain write still happens).
    pub cache_snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_inflight: 64,
            jobs: 1,
            state_dir: None,
            snapshot_every: 1024,
            standby: false,
            replicate_to: None,
            peer: None,
            max_connections: 4096,
            idle_timeout_ms: 600_000,
            max_requests_per_sec: 0,
            cache_shards: 0,
            cache_snapshot: None,
            cache_snapshot_every: 256,
        }
    }
}

/// A bound, not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
    recovery: Option<RecoveryReport>,
    cache_warmed: Option<SnapshotLoaded>,
    /// Chaos-only "power cord": when set, the reactor severs every
    /// connection and returns immediately — no drain, no journal
    /// ceremony — simulating `kill -9` inside one test process.
    #[cfg(feature = "fault-inject")]
    kill: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener. Pass port 0 to let the OS pick one (read it
    /// back with [`local_addr`](Server::local_addr)).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        // Size the lock stripe to the most threads that can be in the
        // cache at once: `workers` concurrent explores, each running
        // `jobs` prediction threads.
        let shards = if config.cache_shards > 0 {
            config.cache_shards
        } else {
            recommended_shards(config.workers.max(1) * config.jobs.max(1))
        };
        let cache = Arc::new(PredictionCache::with_config(DEFAULT_CACHE_CAPACITY, shards));
        // Warm-start before journal replay arms: replayed sessions share
        // this cache, so their first explores hit the restored entries.
        let cache_warmed = match &config.cache_snapshot {
            None => None,
            Some(path) => Some(load_snapshot(path, &cache)?),
        };
        let (manager, recovery) = match &config.state_dir {
            None => (SessionManager::new_with_cache(config.jobs, cache), None),
            Some(dir) => {
                let (manager, report) = SessionManager::recover_with_cache(
                    config.jobs,
                    dir,
                    config.snapshot_every,
                    cache,
                )?;
                (manager, Some(report))
            }
        };
        // A journaled role_change (recovery replayed it above) outranks
        // the configured starting role: a node that crashed fenced must
        // come back fenced, whatever its command line says.
        if config.standby && manager.epoch() == 0 && !manager.is_fenced() {
            manager.mark_standby();
        }
        let listener = TcpListener::bind(addr)?;
        // The advertised address rides on outgoing replication traffic
        // so a refusing peer can dial us back (resync after fencing).
        if let Ok(local) = listener.local_addr() {
            manager.set_advertised(local.to_string());
        }
        Ok(Self {
            listener,
            manager: Arc::new(manager),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            recovery,
            cache_warmed,
            #[cfg(feature = "fault-inject")]
            kill: Arc::new(AtomicBool::new(false)),
        })
    }

    /// What journal recovery restored at bind time; `None` without a
    /// `state_dir`.
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// What the cache snapshot restored at bind time; `None` without a
    /// `cache_snapshot` path.
    #[must_use]
    pub fn cache_warm_report(&self) -> Option<SnapshotLoaded> {
        self.cache_warmed
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The session manager (shared with every connection).
    #[must_use]
    pub fn manager(&self) -> Arc<SessionManager> {
        Arc::clone(&self.manager)
    }

    /// The drain flag: storing `true` makes [`run`](Server::run) stop
    /// accepting, drain and return. The wire `shutdown` request sets the
    /// same flag; this handle exists for embedders (e.g. a signal hook).
    /// The reactor re-checks it at least every poll interval.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The chaos kill switch (chaos tests only): storing `true` makes
    /// [`run`](Server::run) sever every live connection and return
    /// without draining — the in-process equivalent of `kill -9`.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn kill_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill)
    }

    /// Serves until a `shutdown` request (or the
    /// [`shutdown_handle`](Server::shutdown_handle)) drains the server.
    ///
    /// # Errors
    ///
    /// Only fatal listener/epoll errors; per-connection and per-request
    /// failures are answered on the wire, never returned here.
    pub fn run(self) -> std::io::Result<()> {
        let mut replicator = self
            .config
            .peer
            .as_ref()
            .or(self.config.replicate_to.as_ref())
            .map(|addr| Replicator::start(Arc::clone(&self.manager), addr.clone()));
        let pool = Arc::new(WorkerPool::new(self.config.workers));
        let completions = Arc::new(Completions::new()?);
        let dispatch = Dispatch {
            manager: Arc::clone(&self.manager),
            pool: Arc::clone(&pool),
            completions: Arc::clone(&completions),
            admission: Arc::new(Admission::new(self.config.max_inflight)),
            shutdown: Arc::clone(&self.shutdown),
        };
        let idle_timeout = (self.config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(self.config.idle_timeout_ms));
        let reactor = Reactor::new(
            self.listener,
            completions,
            Arc::clone(&self.shutdown),
            #[cfg(feature = "fault-inject")]
            Some(Arc::clone(&self.kill)),
            #[cfg(not(feature = "fault-inject"))]
            None,
            ReactorConfig {
                max_connections: self.config.max_connections,
                idle_timeout,
                max_requests_per_sec: (self.config.max_requests_per_sec > 0)
                    .then_some(self.config.max_requests_per_sec),
            },
        )?;
        // Periodic cache snapshots: a sidecar thread re-persists the
        // prediction cache whenever enough insertions accumulated, so
        // even an ungraceful death warm-starts from a recent snapshot.
        let snapshot_stop = Arc::new(AtomicBool::new(false));
        let snapshot_thread = self.config.cache_snapshot.clone().map(|path| {
            let cache = self.manager.shared_cache();
            let stop = Arc::clone(&snapshot_stop);
            let every = self.config.cache_snapshot_every;
            std::thread::spawn(move || {
                let mut persisted = cache.insertions();
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(100));
                    if every > 0 && cache.insertions().saturating_sub(persisted) >= every {
                        match write_snapshot(&path, &cache) {
                            // Re-read after the write: inserts that raced
                            // the export are re-persisted next round.
                            Ok(_) => persisted = cache.insertions(),
                            Err(e) => {
                                eprintln!("chop-service: cache snapshot failed: {e}");
                            }
                        }
                    }
                }
            })
        });
        let stop_snapshots = |final_write: bool| {
            snapshot_stop.store(true, Ordering::SeqCst);
            if let Some(thread) = snapshot_thread {
                let _ = thread.join();
            }
            if final_write {
                if let Some(path) = &self.config.cache_snapshot {
                    if let Err(e) = write_snapshot(path, &self.manager.shared_cache()) {
                        eprintln!("chop-service: final cache snapshot failed: {e}");
                    }
                }
            }
        };
        let result = reactor.run(&dispatch);
        if let Some(replicator) = replicator.as_mut() {
            replicator.stop();
        }
        #[cfg(feature = "fault-inject")]
        if self.kill.load(Ordering::SeqCst) {
            // Simulated kill -9: abandon queued work instead of
            // draining the pool, exactly like the process dying — and
            // skip the drain-time snapshot (the periodic one on disk is
            // what a restart warm-starts from).
            stop_snapshots(false);
            return result;
        }
        drop(dispatch);
        if let Ok(pool) = Arc::try_unwrap(pool) {
            pool.shutdown();
        }
        // Graceful drain: persist the cache exactly once more, after the
        // pool finished every in-flight explore.
        stop_snapshots(true);
        result
    }
}

/// Request semantics on top of the reactor: decode, route, reply.
/// Everything here must return promptly — the reactor thread is every
/// connection's I/O thread — so exploration goes to the pool and hands
/// its reply back through the completion queue.
struct Dispatch {
    manager: Arc<SessionManager>,
    pool: Arc<WorkerPool>,
    completions: Arc<Completions>,
    admission: Arc<Admission>,
    shutdown: Arc<AtomicBool>,
}

impl LineHandler for Dispatch {
    fn handle_line(&self, conn: u64, line: &str) -> LineOutcome {
        match catch_unwind(AssertUnwindSafe(|| self.route(conn, line))) {
            Ok(outcome) => outcome,
            Err(payload) => LineOutcome::Reply(Response::Error(ServiceError::new(
                ErrorKind::Internal,
                format!("request handler panicked: {}", panic_message(&payload)),
            ))),
        }
    }
}

impl Dispatch {
    /// Decodes and dispatches: `shutdown` flips the drain flag,
    /// `explore` goes through admission control and the worker pool,
    /// everything else is answered inline by the manager.
    fn route(&self, conn: u64, line: &str) -> LineOutcome {
        let (request, req_id) = match Request::decode_tagged(line) {
            Ok(decoded) => decoded,
            Err(e) => return LineOutcome::Reply(Response::Error(e)),
        };
        match request {
            Request::Shutdown => {
                self.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                LineOutcome::Reply(Response::ShuttingDown)
            }
            Request::Explore { session, params } => {
                let Some(token) = self.admission.try_acquire() else {
                    return LineOutcome::Reply(self.admission.busy_reply());
                };
                let manager = Arc::clone(&self.manager);
                let completions = Arc::clone(&self.completions);
                let job = Box::new(move || {
                    let _token = token;
                    let result =
                        catch_unwind(AssertUnwindSafe(|| manager.explore(&session, &params)));
                    let response = match result {
                        Ok(Ok(run)) => Response::Explored { session, run },
                        Ok(Err(e)) => Response::Error(e),
                        Err(payload) => Response::Error(ServiceError::new(
                            ErrorKind::Internal,
                            format!("exploration panicked: {}", panic_message(&payload)),
                        )),
                    };
                    completions.push(conn, response);
                });
                if self.pool.execute(job).is_err() {
                    return LineOutcome::Reply(Response::Error(ServiceError::new(
                        ErrorKind::Internal,
                        "server is shutting down",
                    )));
                }
                LineOutcome::Dispatched
            }
            // Optimize is CPU-bound like explore, so it shares the pool
            // and the admission window. The full request is re-dispatched
            // through the manager inside the job: that is where standby
            // refusal, `req_id` dedup and journaling of the accepted
            // trace live.
            request @ Request::Optimize { .. } => {
                let Some(token) = self.admission.try_acquire() else {
                    return LineOutcome::Reply(self.admission.busy_reply());
                };
                let manager = Arc::clone(&self.manager);
                let completions = Arc::clone(&self.completions);
                let job = Box::new(move || {
                    let _token = token;
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        manager.dispatch_tagged(&request, req_id.as_deref())
                    }));
                    let response = result.unwrap_or_else(|payload| {
                        Response::Error(ServiceError::new(
                            ErrorKind::Internal,
                            format!("optimization panicked: {}", panic_message(&payload)),
                        ))
                    });
                    completions.push(conn, response);
                });
                if self.pool.execute(job).is_err() {
                    return LineOutcome::Reply(Response::Error(ServiceError::new(
                        ErrorKind::Internal,
                        "server is shutting down",
                    )));
                }
                LineOutcome::Dispatched
            }
            other => {
                LineOutcome::Reply(self.manager.dispatch_tagged(&other, req_id.as_deref()))
            }
        }
    }
}

/// Best-effort panic payload extraction.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::MAX_LINE_BYTES;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn roundtrip(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &Request,
    ) -> Response {
        let mut line = req.encode();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::decode(reply.trim()).unwrap()
    }

    #[test]
    fn ping_shutdown_drains_cleanly() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert!(matches!(
            roundtrip(&mut stream, &mut reader, &Request::Ping),
            Response::Pong { version: crate::protocol::PROTOCOL_VERSION, .. }
        ));
        // A malformed line gets a typed error, not a dropped connection.
        stream.write_all(b"this is not json\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(matches!(
            Response::decode(reply.trim()).unwrap(),
            Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
        ));
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &Request::Shutdown),
            Response::ShuttingDown
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_line_gets_protocol_error_then_close() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Stream just past the limit with no newline: the server must
        // answer with a typed protocol error and close, not buffer on.
        let blob = vec![b'x'; MAX_LINE_BYTES + 1];
        stream.write_all(&blob).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(matches!(
            Response::decode(reply.trim()).unwrap(),
            Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
        ));
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0, "connection must be closed");
        // The server itself keeps serving: shut it down over a fresh
        // connection.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &Request::Shutdown),
            Response::ShuttingDown
        );
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn zero_max_inflight_reports_busy() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig { workers: 1, max_inflight: 0, ..ServeConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let explore = Request::Explore {
            session: "any".into(),
            params: crate::protocol::ExploreParams::default(),
        };
        assert_eq!(
            roundtrip(&mut stream, &mut reader, &explore),
            Response::Busy { inflight: 0, max_inflight: 0, retry_after_ms: 50 }
        );
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn truncated_request_gets_protocol_error_not_silent_close() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 1, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        {
            // Send half a request, then half-close the write side: the
            // server must answer with a typed protocol error, not vanish.
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            writer.write_all(b"{\"v\":1,\"type\":\"pi").unwrap();
            writer.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let decoded = Response::decode(reply.trim()).unwrap();
            let Response::Error(e) = decoded else { panic!("{decoded:?}") };
            assert_eq!(e.kind, ErrorKind::Protocol);
            assert!(e.message.contains("truncated"), "{}", e.message);
        }
        // An oversized line that *does* end in a newline is refused the
        // same way, never parsed.
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut blob = vec![b' '; MAX_LINE_BYTES + 1];
            *blob.last_mut().unwrap() = b'\n';
            writer.write_all(&blob).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(matches!(
                Response::decode(reply.trim()).unwrap(),
                Response::Error(ServiceError { kind: ErrorKind::Protocol, .. })
            ));
            reply.clear();
            assert_eq!(reader.read_line(&mut reply).unwrap(), 0);
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig { workers: 2, ..ServeConfig::default() })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // A burst of pings written as one syscall must come back as
        // exactly that many pongs, in order, on one connection.
        let mut burst = String::new();
        for _ in 0..64 {
            burst.push_str(&Request::Ping.encode());
            burst.push('\n');
        }
        stream.write_all(burst.as_bytes()).unwrap();
        for i in 0..64 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(
                matches!(Response::decode(reply.trim()).unwrap(), Response::Pong { .. }),
                "reply {i} was not a pong: {reply:?}"
            );
        }
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn request_rate_cap_answers_busy_and_keeps_the_connection() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig { workers: 1, max_requests_per_sec: 4, ..ServeConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // A burst of 8 pings in one write: the first 4 are served, the
        // rest get a typed busy whose retry_after_ms is the window's
        // remaining lifetime — and the connection stays open.
        let mut burst = String::new();
        for _ in 0..8 {
            burst.push_str(&Request::Ping.encode());
            burst.push('\n');
        }
        stream.write_all(burst.as_bytes()).unwrap();
        let (mut pongs, mut busys) = (0, 0);
        for _ in 0..8 {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            match Response::decode(reply.trim()).unwrap() {
                Response::Pong { .. } => pongs += 1,
                Response::Busy { max_inflight, retry_after_ms, .. } => {
                    assert_eq!(max_inflight, 4);
                    assert!(retry_after_ms >= 1, "retry_after_ms must be positive");
                    assert!(retry_after_ms <= 1_000, "window is one second");
                    busys += 1;
                }
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        assert_eq!((pongs, busys), (4, 4));
        // Once the window rolls over, the same connection serves again.
        std::thread::sleep(Duration::from_millis(1_100));
        assert!(matches!(
            roundtrip(&mut stream, &mut reader, &Request::Ping),
            Response::Pong { .. }
        ));
        roundtrip(&mut stream, &mut reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn connection_limit_refuses_with_typed_error() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig { workers: 1, max_connections: 2, ..ServeConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        let mut first = TcpStream::connect(addr).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut second = TcpStream::connect(addr).unwrap();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        // Pings prove both slots are genuinely registered.
        roundtrip(&mut first, &mut first_reader, &Request::Ping);
        roundtrip(&mut second, &mut second_reader, &Request::Ping);
        // The third connection gets one typed error, then EOF.
        let third = TcpStream::connect(addr).unwrap();
        let mut third_reader = BufReader::new(third);
        let mut reply = String::new();
        third_reader.read_line(&mut reply).unwrap();
        let decoded = Response::decode(reply.trim()).unwrap();
        let Response::Error(e) = decoded else { panic!("{decoded:?}") };
        assert!(e.message.contains("connection limit"), "{}", e.message);
        reply.clear();
        assert_eq!(third_reader.read_line(&mut reply).unwrap(), 0);
        // Freeing a slot re-admits new connections.
        drop(first);
        drop(first_reader);
        std::thread::sleep(crate::net::POLL_INTERVAL * 2);
        let mut fourth = TcpStream::connect(addr).unwrap();
        let mut fourth_reader = BufReader::new(fourth.try_clone().unwrap());
        roundtrip(&mut fourth, &mut fourth_reader, &Request::Ping);
        roundtrip(&mut fourth, &mut fourth_reader, &Request::Shutdown);
        handle.join().unwrap().unwrap();
    }
}
